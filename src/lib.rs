//! `ptq` — facade crate for the ICPP'19 retry-free / arbitrary-n GPU
//! concurrent queue reproduction.
//!
//! Re-exports the workspace's public API under one roof:
//!
//! * [`queue`] — the paper's contribution: device-side queue variants for
//!   the SIMT simulator and host-side real-thread implementations,
//! * [`simt`] — the deterministic SIMT GPU simulator substrate,
//! * [`graph`] — CSR graphs, calibrated dataset generators, file IO,
//! * [`bfs`] — the persistent-thread BFS driver application and the
//!   Rodinia/CHAI-style baselines.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use gpu_queue as queue;
pub use pt_bfs as bfs;
pub use ptq_graph as graph;
pub use simt;
