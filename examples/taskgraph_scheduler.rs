//! Beyond BFS: scheduling an arbitrary task DAG with the RF/AN queue.
//!
//! The paper closes with "Although we use the proposed queue in a
//! persistent thread task scheduler, it can be used for other purposes on
//! GPUs with little change". This example writes a *custom* persistent
//! kernel against the public `simt` + `gpu-queue` API: a dependency-
//! counting DAG scheduler (the classic Tzeng-style irregular workload).
//! Each task holds a dependency counter; completing a task decrements its
//! dependents' counters; counters reaching zero enqueue the dependent as
//! ready.
//!
//! ```text
//! cargo run --release --example taskgraph_scheduler [tasks]
//! ```

use ptq::graph::rng::SplitMix64;
use ptq::queue::device::{make_wave_queue, LanePhase, QueueLayout, WaveQueue};
use ptq::queue::Variant;
use simt::{Buffer, Engine, GpuConfig, Launch, WaveCtx, WaveKernel, WaveStatus};

/// A random layered DAG in CSR form: `succ_offsets`/`succ` list each
/// task's dependents; `dep_count[t]` is its in-degree.
struct TaskDag {
    succ_offsets: Vec<u32>,
    succ: Vec<u32>,
    dep_count: Vec<u32>,
}

fn random_dag(tasks: usize, seed: u64) -> TaskDag {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Each task depends on up to 3 earlier tasks (guaranteeing acyclicity).
    for t in 1..tasks as u32 {
        let deps = rng.range_u32_inclusive(0, 3.min(t));
        for _ in 0..deps {
            let d = rng.range_u32(0, t);
            edges.push((d, t));
        }
    }
    let mut dep_count = vec![0u32; tasks];
    for &(_, t) in &edges {
        dep_count[t as usize] += 1;
    }
    let mut offsets = vec![0u32; tasks + 1];
    for &(d, _) in &edges {
        offsets[d as usize + 1] += 1;
    }
    for i in 0..tasks {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut succ = vec![0u32; edges.len()];
    for &(d, t) in &edges {
        succ[cursor[d as usize] as usize] = t;
        cursor[d as usize] += 1;
    }
    TaskDag {
        succ_offsets: offsets,
        succ,
        dep_count,
    }
}

/// The custom persistent kernel: one wavefront of a DAG scheduler.
struct DagKernel {
    queue: Box<dyn WaveQueue>,
    lanes: Vec<LanePhase>,
    offsets: Buffer,
    succ: Buffer,
    deps: Buffer,
    done_flags: Buffer,
    pending: Buffer,
    outbox: Vec<u32>,
    completed: u32,
}

impl WaveKernel for DagKernel {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        for lane in self.lanes.iter_mut() {
            if *lane == LanePhase::Idle {
                *lane = LanePhase::Hungry;
            }
        }
        self.queue.acquire(ctx, &mut self.lanes);
        for lane in self.lanes.iter_mut() {
            if let LanePhase::Ready(task) = *lane {
                // "Execute" the task: mark it done, then clear dependents.
                ctx.global_write_lane(self.done_flags, task as usize, 1);
                let start = ctx.global_read_lane(self.offsets, task as usize);
                let end = ctx.global_read_lane(self.offsets, task as usize + 1);
                for e in start..end {
                    let dependent = ctx.global_read_lane(self.succ, e as usize);
                    let old = ctx.atomic_sub(self.deps, dependent as usize, 1);
                    if old == 1 {
                        // Final dependency cleared: dependent is ready.
                        self.outbox.push(dependent);
                    }
                }
                self.completed += 1;
                *lane = LanePhase::Idle;
            }
        }
        if !self.outbox.is_empty() {
            let accepted = self.queue.enqueue(ctx, &self.outbox);
            if accepted > 0 {
                ctx.atomic_add(self.pending, 0, accepted as u32);
                self.outbox.drain(..accepted);
            }
        }
        if self.completed > 0 && self.outbox.is_empty() {
            ctx.atomic_sub(self.pending, 0, self.completed);
            self.completed = 0;
        }
        if ctx.global_read(self.pending, 0) == 0 && self.outbox.is_empty() {
            WaveStatus::Done
        } else {
            WaveStatus::Active
        }
    }
}

fn main() {
    let tasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let dag = random_dag(tasks, 0xDA6);
    let roots: Vec<u32> = (0..tasks as u32)
        .filter(|&t| dag.dep_count[t as usize] == 0)
        .collect();
    println!(
        "task DAG: {} tasks, {} dependency edges, {} roots",
        tasks,
        dag.succ.len(),
        roots.len()
    );

    let gpu = GpuConfig::spectre();
    let mut engine = Engine::new(gpu);
    let mem = engine.memory_mut();
    mem.alloc_init("offsets", &dag.succ_offsets);
    mem.alloc_init("succ", &dag.succ);
    let deps = mem.alloc_init("deps", &dag.dep_count);
    let done_flags = mem.alloc("done", tasks);
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, roots.len() as u32);
    let layout = QueueLayout::setup(mem, "queue", (tasks + 64) as u32);
    layout.host_seed(mem, &roots);

    let offsets = mem.buffer("offsets");
    let succ = mem.buffer("succ");
    let report = engine
        .run(Launch::workgroups(32), |info| DagKernel {
            queue: make_wave_queue(Variant::RfAn, layout),
            lanes: vec![LanePhase::Idle; info.wave_size],
            offsets,
            succ,
            deps,
            done_flags,
            pending,
            outbox: Vec::new(),
            completed: 0,
        })
        .expect("scheduler completes");

    // Verify: every task ran, every dependency counter drained.
    let done = engine.memory().read_slice(done_flags);
    let executed = done.iter().filter(|&&d| d == 1).count();
    let leftover: u32 = engine.memory().read_slice(deps).iter().sum();
    assert_eq!(executed, tasks, "every task must execute exactly once");
    assert_eq!(leftover, 0, "all dependencies must clear");
    println!(
        "scheduled {} tasks in {:.5} simulated seconds ({} work cycles, {} atomics, 0 retries: {})",
        executed,
        report.seconds,
        report.metrics.work_cycles,
        report.metrics.global_atomics,
        report.metrics.total_retries() == 0
    );
}
