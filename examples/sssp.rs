//! Single-source shortest paths: the scheduler beyond BFS.
//!
//! A label-correcting SSSP re-enqueues vertices whenever a shorter path is
//! found — re-activation is the *norm*, making it a harsher task-scheduler
//! workload than BFS. The run validates against sequential Dijkstra.
//!
//! ```text
//! cargo run --release --example sssp [scale]
//! ```

use ptq::bfs::run_sssp;
use ptq::graph::{random_weights, validate_distances, Dataset};
use ptq::queue::Variant;
use simt::GpuConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let dataset = Dataset::RoadNY;
    let graph = dataset.build(scale);
    let weights = random_weights(&graph, 100, 0xABCD);
    println!(
        "SSSP over {} (scaled {:.0}%): {} vertices, {} weighted edges\n",
        dataset.spec().name,
        scale * 100.0,
        graph.num_vertices(),
        graph.num_edges()
    );

    let gpu = GpuConfig::fiji();
    for variant in Variant::ALL {
        let run = run_sssp(&gpu, &graph, &weights, dataset.source(), variant, 224)
            .expect("simulation succeeds");
        validate_distances(&graph, &weights, dataset.source(), &run.values)
            .expect("distances match Dijkstra exactly");
        let reenqueues = run
            .metrics
            .global_atomics
            .saturating_sub(graph.num_edges() as u64);
        println!(
            "{:>6}: {:.6}s | {} atomics (~{} scheduling ops) | {} retries",
            variant.label(),
            run.seconds,
            run.metrics.global_atomics,
            reenqueues,
            run.metrics.total_retries()
        );
    }
    println!("\nEvery variant converges to exact Dijkstra distances; the RF/AN");
    println!("design schedules the (many) re-activations without a single retry.");
}
