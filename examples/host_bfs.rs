//! Real-thread BFS on actual CPU hardware using the host queues.
//!
//! The same algorithm as the simulated experiments, but measured in wall
//! clock on OS threads: workers pull vertices from a shared queue, claim
//! children with `fetch_min`, and push discoveries back.
//!
//! ```text
//! cargo run --release --example host_bfs [threads] [vertices]
//! ```

use ptq::bfs::host::{host_bfs, HostVariant};
use ptq::graph::gen::synthetic_tree;
use ptq::graph::validate_levels;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let vertices: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let graph = synthetic_tree(vertices, 4);
    println!(
        "BFS over a {}-vertex fanout-4 tree with {} worker threads\n",
        vertices, threads
    );
    println!(
        "{:>6} | {:>10} | {:>12} | {:>12} | {:>12}",
        "queue", "time", "afa ops", "cas attempts", "retries"
    );
    for variant in HostVariant::ALL {
        let result = host_bfs(&graph, 0, threads, variant);
        validate_levels(&graph, 0, &result.levels).expect("exact BFS levels");
        println!(
            "{:>6} | {:>9.1?} | {:>12} | {:>12} | {:>12}",
            variant.label(),
            result.duration,
            result.stats.afa_ops,
            result.stats.cas_attempts,
            result.stats.total_retries()
        );
    }
    println!("\nAll four produce identical, validated BFS levels; the stats show");
    println!("where each design spends its synchronization budget.");
}
