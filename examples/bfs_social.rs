//! Social-media BFS: heavy-tailed fanout and the arbitrary-n property.
//!
//! Social graphs have hub vertices with thousands of out-edges. When a hub
//! is expanded, its wavefront discovers whole batches of new tasks at once
//! — the case the arbitrary-n property targets: the proxy thread enqueues
//! the entire batch for the price of a single fetch-add.
//!
//! ```text
//! cargo run --release --example bfs_social [scale]
//! ```

use ptq::bfs::{run_bfs, PtConfig};
use ptq::graph::{validate_levels, Dataset};
use ptq::queue::Variant;
use simt::GpuConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    for dataset in [Dataset::GplusCombined, Dataset::SocLiveJournal1] {
        let graph = dataset.build(scale);
        let stats = graph.degree_stats();
        println!(
            "\n=== {} (scaled {:.1}%) ===",
            dataset.spec().name,
            scale * 100.0
        );
        println!(
            "{} vertices, {} edges | degree avg {:.1}, max {}, std {:.1} (heavy tail)",
            graph.num_vertices(),
            graph.num_edges(),
            stats.avg,
            stats.max,
            stats.std
        );
        let profile = ptq::graph::level_profile(&graph, dataset.source());
        println!(
            "BFS depth only {} levels — parallelism ramps up immediately (Figure 3b/3c)",
            profile.num_levels()
        );

        let gpu = GpuConfig::fiji();
        for variant in Variant::ALL {
            let run = run_bfs(&gpu, &graph, dataset.source(), &PtConfig::new(variant, 224))
                .expect("simulation succeeds");
            validate_levels(&graph, dataset.source(), &run.values).expect("exact levels");
            let atomics_per_vertex = run.metrics.global_atomics as f64 / run.reached as f64;
            println!(
                "{:>6}: {:.5}s | {:.1} atomics/vertex | {} retries",
                variant.label(),
                run.seconds,
                atomics_per_vertex,
                run.metrics.total_retries()
            );
        }
    }
    println!("\nBatching pays: compare atomics/vertex between BASE (per-token CAS)");
    println!("and the arbitrary-n designs (one atomic per wavefront per operation).");
}
