//! Quickstart: the retry-free / arbitrary-n queue in five minutes.
//!
//! Shows both halves of the library:
//! 1. the **host queue** — a real concurrent data structure on OS threads,
//! 2. the **simulated GPU** — the paper's BFS experiment in miniature.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ptq::bfs::{run_bfs, PtConfig};
use ptq::graph::gen::synthetic_tree;
use ptq::queue::host::{RfAnQueue, SlotTicket};
use ptq::queue::Variant;
use simt::GpuConfig;

fn main() {
    host_queue_demo();
    simulated_gpu_demo();
}

/// Part 1: the host-side RF/AN queue. One fetch-add reserves any number
/// of slots; consumers poll privately owned slots — no CAS, no retries.
fn host_queue_demo() {
    println!("== host queue ==");
    let queue = RfAnQueue::new(1024);

    // A producer publishes a batch of task tokens with ONE atomic.
    queue.enqueue_batch(&[10, 20, 30, 40]).expect("capacity ok");

    // A consumer reserves four slots with ONE atomic (arbitrary-n), then
    // polls them — the data is already there, so every poll hits.
    let tickets = queue.reserve(4);
    let tokens: Vec<u32> = tickets
        .map(|slot| queue.try_take(SlotTicket(slot)).expect("data arrived"))
        .collect();
    println!("consumed: {tokens:?}");

    // Reserving *ahead of data* is legal — that is the whole point: the
    // queue-empty exception is refactored into a sentinel poll.
    let early = queue.reserve(1).start;
    assert_eq!(queue.try_take(SlotTicket(early)), None, "data not arrived");
    queue.enqueue_batch(&[99]).unwrap();
    assert_eq!(queue.try_take(SlotTicket(early)), Some(99));
    println!("late-arriving token delivered, zero retries");

    let stats = queue.stats();
    println!(
        "atomics: {} fetch-adds, {} CAS, {} queue-empty exceptions\n",
        stats.afa_ops, stats.cas_attempts, stats.empty_retries
    );
}

/// Part 2: the simulated-GPU BFS from the paper, comparing the three
/// queue designs on a saturating workload.
fn simulated_gpu_demo() {
    println!("== simulated GPU (Spectre APU, 2,048 persistent threads) ==");
    let gpu = GpuConfig::spectre();
    let graph = synthetic_tree(100_000, 4);
    println!(
        "graph: {} vertices, fanout 4 (the paper's synthetic saturating dataset)",
        graph.num_vertices()
    );
    for variant in Variant::ALL {
        let run =
            run_bfs(&gpu, &graph, 0, &PtConfig::new(variant, 32)).expect("simulation succeeds");
        println!(
            "{:>6}: {:.5}s simulated | atomics {:>9} | CAS failures {:>9} | empty retries {:>7}",
            variant.label(),
            run.seconds,
            run.metrics.global_atomics,
            run.metrics.cas_failures,
            run.metrics.queue_empty_retries,
        );
    }
    println!("\nRF/AN: fewest atomics, zero retries, fastest — the paper's headline.");
}
