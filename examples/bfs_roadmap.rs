//! Roadmap BFS: the paper's low-parallelism regime (Table 3, rows NY/LKS/USA).
//!
//! Road networks are deep and narrow: most of the time there are fewer
//! ready vertices than persistent threads, so the dominant overhead is not
//! atomic contention but *queue-empty handling* — exactly where the RF/AN
//! design's sentinel poll beats exception-retry designs.
//!
//! ```text
//! cargo run --release --example bfs_roadmap [scale]
//! ```

use ptq::bfs::{run_bfs, PtConfig};
use ptq::graph::{validate_levels, Dataset};
use ptq::queue::Variant;
use simt::GpuConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let dataset = Dataset::RoadNY;
    let graph = dataset.build(scale);
    let stats = graph.degree_stats();
    println!(
        "{} (scaled {:.0}%): {} vertices, {} edges, degree avg {:.2} / max {}",
        dataset.spec().name,
        scale * 100.0,
        graph.num_vertices(),
        graph.num_edges(),
        stats.avg,
        stats.max
    );
    let profile = ptq::graph::level_profile(&graph, dataset.source());
    println!(
        "BFS depth {} levels, peak width {} — deep and narrow, as Figure 3d shows\n",
        profile.num_levels(),
        profile.peak()
    );

    for (gpu, wgs) in [(GpuConfig::fiji(), 224usize), (GpuConfig::spectre(), 32)] {
        println!(
            "--- {} ({} workgroups, {} threads) ---",
            gpu.name,
            wgs,
            wgs * 64
        );
        for variant in Variant::ALL {
            let run = run_bfs(&gpu, &graph, dataset.source(), &PtConfig::new(variant, wgs))
                .expect("simulation succeeds");
            validate_levels(&graph, dataset.source(), &run.values).expect("exact BFS levels");
            println!(
                "{:>6}: {:.6}s | empty-retries {:>9} | CAS failures {:>9}",
                variant.label(),
                run.seconds,
                run.metrics.queue_empty_retries,
                run.metrics.cas_failures
            );
        }
        println!();
    }
    println!("note how RF/AN reports zero retries of either kind: hungry threads");
    println!("monitor private slots instead of re-raising queue-empty exceptions.");
}
