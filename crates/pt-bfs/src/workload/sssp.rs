//! Label-correcting single-source shortest paths as a [`PtWorkload`].
//!
//! A Bellman-Ford worklist: relaxing an edge may re-activate an
//! already-settled vertex, so re-enqueues are the norm rather than a
//! rare race — SSSP stresses the queue harder than BFS and ships with a
//! larger default capacity factor. Exactness is validated against
//! sequential Dijkstra.

use super::{Claim, PtWorkload, TokenSink, WorkBuffers, UNVISITED};
use ptq_graph::{dijkstra, Csr};
use simt::{Buffer, DeviceMemory, WaveCtx};
use std::sync::Arc;

/// Single-source shortest paths over non-negative `u32` edge weights.
/// The value word is the tentative distance, claimed with an atomic-min;
/// adjacency and weights are parallel arrays read per edge.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// Source vertex of the traversal.
    pub source: u32,
    /// One weight per CSR edge, shared across wavefront clones.
    weights: Arc<Vec<u32>>,
    /// Device handle of the uploaded weights (set by [`PtWorkload::bind`]).
    weights_buf: Option<Buffer>,
}

impl Sssp {
    /// SSSP from `source` over `weights` (one per CSR edge — checked at
    /// bind time against the graph the runner was handed).
    pub fn new(source: u32, weights: Vec<u32>) -> Self {
        Sssp {
            source,
            weights: Arc::new(weights),
            weights_buf: None,
        }
    }

    /// The edge weights this workload carries.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }
}

impl PtWorkload for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn claim(&self) -> Claim {
        Claim::Min
    }

    fn value_buffer_name(&self) -> &'static str {
        "dist"
    }

    fn initial_values(&self, num_vertices: usize) -> Vec<u32> {
        assert!(
            (self.source as usize) < num_vertices,
            "source vertex out of range"
        );
        let mut values = vec![UNVISITED; num_vertices];
        values[self.source as usize] = 0;
        values
    }

    fn seeds(&self, num_vertices: usize) -> Vec<u32> {
        assert!(
            (self.source as usize) < num_vertices,
            "source vertex out of range"
        );
        vec![self.source]
    }

    fn bind(&mut self, mem: &mut DeviceMemory) {
        self.weights_buf = Some(mem.alloc_init("weights", &self.weights));
    }

    fn expand(
        &self,
        ctx: &mut WaveCtx<'_>,
        buffers: &WorkBuffers,
        value: u32,
        start: u32,
        stop: u32,
        plan: Option<&[u32]>,
        _scratch: &mut Vec<u32>,
        sink: &mut TokenSink<'_>,
    ) {
        let weights = self.weights_buf.expect("bind() uploads the weights");
        let len = (stop - start) as usize;
        // Adjacency and weights are parallel arrays: two coalesced
        // chunk reads.
        ctx.charge_coalesced_access(buffers.edges, start as usize, len);
        ctx.charge_coalesced_access(weights, start as usize, len);
        let mut edge = start;
        while edge < stop {
            // The adjacency word can come from the plan cache (validated
            // per word, identical faulting); the weight read stays live.
            let child = match plan {
                Some(cached) => ctx.peek_cached(
                    buffers.edges,
                    edge as usize,
                    cached[(edge - start) as usize],
                ),
                None => ctx.peek(buffers.edges, edge as usize),
            };
            let weight = ctx.peek(weights, edge as usize);
            sink.offer(ctx, child, value.saturating_add(weight));
            edge += 1;
        }
    }

    fn reference(&self, graph: &Csr) -> Vec<u32> {
        assert_eq!(self.weights.len(), graph.num_edges(), "one weight per edge");
        dijkstra(graph, &self.weights, self.source)
    }

    fn default_capacity_factor(&self) -> f64 {
        4.0
    }
}
