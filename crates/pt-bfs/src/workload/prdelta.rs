//! Delta-stepping-style PageRank push as a [`PtWorkload`] — the first
//! max-directed workload on the core.
//!
//! The classic PageRank-delta push accumulates residuals with a
//! fetch-add, which is order-*dependent* under integer truncation: two
//! schedules can round differently and the differential suites could
//! not compare runs byte-for-byte. This workload keeps the
//! delta-stepping shape (token = vertex whose residual cleared the
//! threshold) but makes the update confluent: the per-vertex word holds
//! the **best single-path contribution** from the seed, claimed with an
//! atomic-max. A dequeued vertex `v` of degree `deg` offers every child
//! `(value[v] / 2) / deg` — residual halved (damping 0.5), split across
//! the out-edges — and offers below `threshold` are dropped. Monotone
//! system, unique least fixed point, exact under every schedule (see
//! `ptq_graph::propagate::decay_fixpoint`).

use super::{Claim, PtWorkload, TokenSink, WorkBuffers};
use ptq_graph::{decay_fixpoint, Csr};
use simt::WaveCtx;

/// Best-contribution PageRank-delta from a single seed. The value word
/// is the contribution, claimed with an atomic-max; the offer for every
/// child of a token is derived once from the token's residual and
/// degree in [`PtWorkload::lane_value`].
#[derive(Clone, Copy, Debug)]
pub struct PrDelta {
    /// Seed vertex (the personalization vertex of the push).
    pub source: u32,
    /// Seed residual. Larger values deepen the propagation (each hop
    /// halves and divides by degree).
    pub init: u32,
    /// Delta cutoff: offers below this are dropped.
    pub threshold: u32,
}

impl PrDelta {
    /// PageRank-delta push from `source` with the default residual
    /// budget (`2^20`) and cutoff (`8`).
    pub fn new(source: u32) -> Self {
        Self::with_budget(source, 1 << 20, 8)
    }

    /// PageRank-delta push with an explicit seed residual and cutoff.
    ///
    /// # Panics
    /// Panics unless `init >= threshold > 0` (a zero cutoff admits
    /// zero-valued offers, which can never improve anything).
    pub fn with_budget(source: u32, init: u32, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        assert!(init >= threshold, "seed residual below the cutoff");
        PrDelta {
            source,
            init,
            threshold,
        }
    }
}

impl PtWorkload for PrDelta {
    fn name(&self) -> &'static str {
        "pr-delta"
    }

    fn claim(&self) -> Claim {
        Claim::Max
    }

    fn value_buffer_name(&self) -> &'static str {
        "resid"
    }

    fn initial_values(&self, num_vertices: usize) -> Vec<u32> {
        assert!(
            (self.source as usize) < num_vertices,
            "source vertex out of range"
        );
        let mut values = vec![0u32; num_vertices];
        values[self.source as usize] = self.init;
        values
    }

    fn seeds(&self, num_vertices: usize) -> Vec<u32> {
        assert!(
            (self.source as usize) < num_vertices,
            "source vertex out of range"
        );
        vec![self.source]
    }

    /// The offer is identical for every out-edge of a token, so it is
    /// derived once at acquisition: residual halved, split by degree.
    fn lane_value(&self, raw: u32, edge_start: u32, edge_end: u32) -> u32 {
        let degree = edge_end - edge_start;
        (raw / 2).checked_div(degree).unwrap_or(0)
    }

    fn expand(
        &self,
        ctx: &mut WaveCtx<'_>,
        buffers: &WorkBuffers,
        value: u32,
        start: u32,
        stop: u32,
        plan: Option<&[u32]>,
        scratch: &mut Vec<u32>,
        sink: &mut TokenSink<'_>,
    ) {
        // Below the delta cutoff the token propagates nothing; the lane
        // walks its edge span without touching memory.
        if value < self.threshold {
            return;
        }
        ctx.charge_coalesced_access(buffers.edges, start as usize, (stop - start) as usize);
        match plan {
            Some(cached) => ctx.peek_run_cached(
                buffers.edges,
                start as usize,
                (stop - start) as usize,
                cached,
                scratch,
            ),
            None => ctx.peek_run(
                buffers.edges,
                start as usize,
                (stop - start) as usize,
                scratch,
            ),
        }
        for &child in scratch.iter() {
            sink.offer(ctx, child, value);
        }
    }

    fn reference(&self, graph: &Csr) -> Vec<u32> {
        decay_fixpoint(graph, self.source, self.init, self.threshold)
    }

    /// Reached = holds a positive contribution (the seed included).
    fn reached(&self, values: &[u32]) -> usize {
        values.iter().filter(|&&v| v != 0).count()
    }

    /// Each vertex re-enqueues at most once per strict improvement of a
    /// geometrically shrinking value: modest headroom suffices.
    fn default_capacity_factor(&self) -> f64 {
        4.0
    }
}
