//! Top-down BFS as a [`PtWorkload`] — the paper's evaluation driver,
//! now one workload among several on the generic core.

use super::{Claim, PtWorkload, TokenSink, WorkBuffers, UNVISITED};
use ptq_graph::{bfs_levels, Csr};
use simt::WaveCtx;

/// Breadth-first search from a single source. The value word is the
/// vertex's BFS level, claimed with an atomic-min; a chunk of out-edges
/// is read through the prevalidated run path and every child is offered
/// `level + 1`.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Source vertex of the traversal.
    pub source: u32,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: u32) -> Self {
        Bfs { source }
    }
}

impl PtWorkload for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn claim(&self) -> Claim {
        Claim::Min
    }

    fn value_buffer_name(&self) -> &'static str {
        "costs"
    }

    fn initial_values(&self, num_vertices: usize) -> Vec<u32> {
        assert!(
            (self.source as usize) < num_vertices,
            "source vertex out of range"
        );
        let mut values = vec![UNVISITED; num_vertices];
        values[self.source as usize] = 0;
        values
    }

    fn seeds(&self, num_vertices: usize) -> Vec<u32> {
        assert!(
            (self.source as usize) < num_vertices,
            "source vertex out of range"
        );
        vec![self.source]
    }

    fn expand(
        &self,
        ctx: &mut WaveCtx<'_>,
        buffers: &WorkBuffers,
        value: u32,
        start: u32,
        stop: u32,
        plan: Option<&[u32]>,
        scratch: &mut Vec<u32>,
        sink: &mut TokenSink<'_>,
    ) {
        // A lane's edge chunk is contiguous in CSR: one coalesced
        // transaction (usually a single line), read through the
        // prevalidated run path — one bounds check per chunk instead of
        // one per edge. A plan-cached chunk skips the arena read but
        // keeps the identical validation and charges.
        ctx.charge_coalesced_access(buffers.edges, start as usize, (stop - start) as usize);
        match plan {
            Some(cached) => ctx.peek_run_cached(
                buffers.edges,
                start as usize,
                (stop - start) as usize,
                cached,
                scratch,
            ),
            None => ctx.peek_run(
                buffers.edges,
                start as usize,
                (stop - start) as usize,
                scratch,
            ),
        }
        for &child in scratch.iter() {
            sink.offer(ctx, child, value + 1);
        }
    }

    fn reference(&self, graph: &Csr) -> Vec<u32> {
        bfs_levels(graph, self.source).levels
    }
}
