//! Multi-query batching: several compatible queries co-scheduled through
//! one persistent-thread launch over one shared CSR.
//!
//! A [`QueryBatch`] of `k` member queries widens the per-token state
//! arrays (values, on-queue bits, spill) from `n` to `k * n` slots and
//! packs `query_id * n + vertex` into every scheduler token. The generic
//! kernel strips the query tag with [`PtWorkload::token_row`] when it
//! reads the shared CSR and the [`TokenSink`] re-applies it to every
//! discovered child, so member workloads' `expand` implementations run
//! unchanged and completely batch-oblivious. Each member's claim lattice
//! is private — confluence therefore holds per member, and slice `i` of
//! the final value array is byte-identical to member `i`'s solo run.
//!
//! Members must be *execution-homogeneous*: same workload type, claim
//! direction, value buffer, auxiliary bindings (e.g. one shared SSSP
//! weight array), and `lane_value` derivation. Per-member identity may
//! enter only through [`PtWorkload::initial_values`], `seeds`, and
//! `reference` — which is exactly the shape of a multi-source frontier.
//! The serving layer guarantees this by batching only queries with the
//! same workload kind × dataset × scale.

use super::{Claim, PtWorkload, TokenSink, WorkBuffers};
use ptq_graph::Csr;
use simt::{DeviceMemory, WaveCtx};

/// `k` compatible queries fused into one launch (see module docs).
///
/// Execution hooks (claim, bind, expand, lane_value) delegate to a
/// prototype clone of the first member, so a batch binds shared
/// auxiliary buffers exactly once; identity hooks (initial values,
/// seeds, reference) concatenate the members' state, offsetting member
/// `i` by `i * num_vertices`.
#[derive(Clone)]
pub struct QueryBatch<W: PtWorkload> {
    members: Vec<W>,
    proto: W,
    num_vertices: usize,
}

impl<W: PtWorkload> QueryBatch<W> {
    /// Fuses `members` (at least one) over a graph of `num_vertices`
    /// vertices.
    ///
    /// # Panics
    /// If `members` is empty or members disagree on name, claim
    /// direction, or value buffer (execution homogeneity).
    pub fn new(members: Vec<W>, num_vertices: usize) -> Self {
        assert!(!members.is_empty(), "a batch needs at least one member");
        let proto = members[0].clone();
        for m in &members {
            assert_eq!(m.name(), proto.name(), "mixed workload kinds in batch");
            assert_eq!(m.claim(), proto.claim(), "mixed claim directions");
            assert_eq!(
                m.value_buffer_name(),
                proto.value_buffer_name(),
                "mixed value buffers"
            );
        }
        assert!(
            members.len() * num_vertices <= u32::MAX as usize,
            "batched token space must fit in u32"
        );
        QueryBatch {
            members,
            proto,
            num_vertices,
        }
    }

    /// Number of member queries.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff the batch has no members (unreachable post-construction;
    /// provided for clippy symmetry with [`QueryBatch::len`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member workloads.
    pub fn members(&self) -> &[W] {
        &self.members
    }

    /// Member `i`'s slice of a batched state array (e.g. the final
    /// values a run produced) — the array member `i`'s solo run would
    /// have produced.
    pub fn member_values<'a>(&self, values: &'a [u32], i: usize) -> &'a [u32] {
        &values[i * self.num_vertices..(i + 1) * self.num_vertices]
    }
}

impl<W: PtWorkload> PtWorkload for QueryBatch<W> {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn claim(&self) -> Claim {
        self.proto.claim()
    }

    fn value_buffer_name(&self) -> &'static str {
        self.proto.value_buffer_name()
    }

    fn initial_values(&self, num_vertices: usize) -> Vec<u32> {
        assert_eq!(
            num_vertices, self.num_vertices,
            "batch built for this graph"
        );
        let mut values = Vec::with_capacity(self.state_len(num_vertices));
        for m in &self.members {
            values.extend(m.initial_values(num_vertices));
        }
        values
    }

    fn seeds(&self, num_vertices: usize) -> Vec<u32> {
        assert_eq!(
            num_vertices, self.num_vertices,
            "batch built for this graph"
        );
        let mut seeds = Vec::new();
        for (i, m) in self.members.iter().enumerate() {
            let base = (i * num_vertices) as u32;
            seeds.extend(m.seeds(num_vertices).into_iter().map(|s| base + s));
        }
        seeds
    }

    fn state_len(&self, num_vertices: usize) -> usize {
        self.members.len() * num_vertices
    }

    fn token_row(&self, token: u32) -> u32 {
        token % self.num_vertices as u32
    }

    fn bind(&mut self, mem: &mut DeviceMemory) {
        // Shared auxiliary buffers are uploaded once via the prototype
        // (members carry identical copies by the homogeneity contract).
        self.proto.bind(mem);
    }

    fn lane_value(&self, raw: u32, edge_start: u32, edge_end: u32) -> u32 {
        self.proto.lane_value(raw, edge_start, edge_end)
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        ctx: &mut WaveCtx<'_>,
        buffers: &WorkBuffers,
        value: u32,
        start: u32,
        stop: u32,
        plan: Option<&[u32]>,
        scratch: &mut Vec<u32>,
        sink: &mut TokenSink<'_>,
    ) {
        // The sink's query-id base re-tags every offered child; the
        // member expansion itself is batch-oblivious.
        self.proto
            .expand(ctx, buffers, value, start, stop, plan, scratch, sink);
    }

    fn reference(&self, graph: &Csr) -> Vec<u32> {
        let mut reference = Vec::with_capacity(self.state_len(graph.num_vertices()));
        for m in &self.members {
            reference.extend(m.reference(graph));
        }
        reference
    }

    fn reached(&self, values: &[u32]) -> usize {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| m.reached(self.member_values(values, i)))
            .sum()
    }

    fn default_capacity_factor(&self) -> f64 {
        // The token space is `k` times wider; scale the queue with it.
        self.members.len() as f64 * self.proto.default_capacity_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Bfs;
    use super::*;
    use crate::UNVISITED;

    #[test]
    fn seeds_and_values_are_offset_per_member() {
        let batch = QueryBatch::new(vec![Bfs::new(1), Bfs::new(3)], 5);
        assert_eq!(batch.state_len(5), 10);
        assert_eq!(batch.seeds(5), vec![1, 5 + 3]);
        let init = batch.initial_values(5);
        assert_eq!(init.len(), 10);
        assert_eq!(init[1], 0);
        assert_eq!(init[5 + 3], 0);
        assert_eq!(init.iter().filter(|&&v| v == UNVISITED).count(), 8);
    }

    #[test]
    fn token_row_strips_the_query_tag() {
        let batch = QueryBatch::new(vec![Bfs::new(0), Bfs::new(1), Bfs::new(2)], 7);
        assert_eq!(batch.token_row(3), 3);
        assert_eq!(batch.token_row(7 + 3), 3);
        assert_eq!(batch.token_row(2 * 7 + 6), 6);
    }

    #[test]
    fn capacity_scales_with_membership() {
        let solo = Bfs::new(0).default_capacity_factor();
        let batch = QueryBatch::new(vec![Bfs::new(0); 4], 10);
        assert_eq!(batch.default_capacity_factor(), 4.0 * solo);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_batch_rejected() {
        let _ = QueryBatch::<Bfs>::new(vec![], 10);
    }
}
