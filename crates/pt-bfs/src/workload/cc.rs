//! Connected components by min-label propagation as a [`PtWorkload`].
//!
//! Every vertex starts labelled with its own id and *every* vertex seeds
//! the queue — the all-frontier shape the paper's arbitrary-n enqueue
//! was designed for (a wavefront's first work cycle already offers the
//! queue hundreds of tokens). A dequeued vertex offers its current label
//! to every neighbour; the atomic-min claim keeps the smaller label. On
//! an undirected graph the fixed point labels every vertex with the
//! smallest vertex id in its component.

use super::{Claim, PtWorkload, TokenSink, WorkBuffers};
use ptq_graph::{min_label_fixpoint, Csr};
use simt::WaveCtx;

/// Min-label propagation. The value word is the component label,
/// claimed with an atomic-min; the candidate offered to every child is
/// the token's own current label.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl PtWorkload for ConnectedComponents {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn claim(&self) -> Claim {
        Claim::Min
    }

    fn value_buffer_name(&self) -> &'static str {
        "labels"
    }

    fn initial_values(&self, num_vertices: usize) -> Vec<u32> {
        (0..num_vertices as u32).collect()
    }

    fn seeds(&self, num_vertices: usize) -> Vec<u32> {
        (0..num_vertices as u32).collect()
    }

    fn expand(
        &self,
        ctx: &mut WaveCtx<'_>,
        buffers: &WorkBuffers,
        value: u32,
        start: u32,
        stop: u32,
        plan: Option<&[u32]>,
        scratch: &mut Vec<u32>,
        sink: &mut TokenSink<'_>,
    ) {
        ctx.charge_coalesced_access(buffers.edges, start as usize, (stop - start) as usize);
        match plan {
            Some(cached) => ctx.peek_run_cached(
                buffers.edges,
                start as usize,
                (stop - start) as usize,
                cached,
                scratch,
            ),
            None => ctx.peek_run(
                buffers.edges,
                start as usize,
                (stop - start) as usize,
                scratch,
            ),
        }
        for &child in scratch.iter() {
            sink.offer(ctx, child, value);
        }
    }

    fn reference(&self, graph: &Csr) -> Vec<u32> {
        min_label_fixpoint(graph)
    }

    /// Every vertex carries a label; the traversal touches all of them.
    fn reached(&self, values: &[u32]) -> usize {
        values.len()
    }

    /// All `n` vertices are seeded up front and label improvements
    /// re-enqueue freely, so the queue needs room for well over `n`
    /// lifetime enqueues (the queue is non-wrapping).
    fn default_capacity_factor(&self) -> f64 {
        8.0
    }
}
