//! The workload layer: what makes the persistent-thread core generic.
//!
//! The paper's queue is a *general* scheduler for irregular workloads —
//! BFS is merely its evaluation driver. This module carves the
//! workload-specific 10% out of the kernel into the [`PtWorkload`]
//! trait, so the other 90% — variant dispatch across all five device
//! queues, capacity regrow, spill-fence epochs, checkpoint/resume,
//! audit enforcement — lives once in the generic
//! [`PtKernel`](crate::kernel::PtKernel) / [`run_workload`] machinery
//! and every workload inherits it.
//!
//! A workload owns exactly:
//!
//! * a **claim direction** ([`Claim`]): whether the per-vertex value
//!   word is claimed with an atomic-min (BFS levels, SSSP distances,
//!   component labels) or an atomic-max (best-contribution
//!   PageRank-delta),
//! * the **initial state**: per-vertex values and the seed tokens,
//! * the **expansion step**: how a lane walks one chunk of a token's
//!   out-edges and what candidate value it offers each child through
//!   the [`TokenSink`],
//! * a **sequential reference oracle** computing the exact value array
//!   every run must reproduce.
//!
//! Every workload here is *confluent*: the claim is a directed atomic
//! on a totally ordered value word, so the traversal converges to the
//! same least fixed point under any execution schedule, any queue
//! variant, and any fault/recovery interleaving — which is what lets
//! the differential and chaos suites compare runs byte-for-byte.
//!
//! [`run_workload`]: crate::runner::run_workload

mod batch;
mod bfs;
mod cc;
mod prdelta;
mod sssp;

pub use batch::QueryBatch;
pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use prdelta::PrDelta;
pub use sssp::Sssp;

use crate::kernel::SpillFence;
use ptq_graph::Csr;
use simt::{Buffer, DeviceMemory, WaveCtx};

pub(crate) use crate::UNVISITED;

/// Direction of the per-vertex claim atomic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Claim {
    /// Values improve downward; claimed with `atomic_min` (BFS levels,
    /// SSSP distances, CC labels).
    Min,
    /// Values improve upward; claimed with `atomic_max`
    /// (best-contribution PageRank-delta).
    Max,
}

/// Device buffer handles shared by every persistent-thread workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkBuffers {
    /// CSR row offsets (`n + 1` words) — the paper's `Nodes`.
    pub nodes: Buffer,
    /// CSR adjacency — the paper's `Edges`.
    pub edges: Buffer,
    /// Per-vertex claimed value word — the paper's `Costs`, generalized:
    /// BFS levels, SSSP distances, CC labels, or PR-delta contributions.
    pub values: Buffer,
    /// Per-vertex on-queue bit (1 while the vertex sits in the queue).
    pub inqueue: Buffer,
    /// One-word outstanding-task counter for termination detection.
    pub pending: Buffer,
}

/// The emission half of a work cycle, handed to [`PtWorkload::expand`]:
/// claims a child's value word in the workload's [`Claim`] direction and
/// routes each *winning* claim to the wavefront outbox (or, past an
/// epoch fence, to the spill buffer).
///
/// Offers are linearized by the claim atomic itself: exactly one of the
/// concurrent offers for a child observes the improving transition, and
/// only the offer that then flips the on-queue bit 0→1 emits a token —
/// so a child is scheduled at most once per improvement, under any
/// interleaving.
pub struct TokenSink<'a> {
    pub(crate) claim: Claim,
    pub(crate) values: Buffer,
    pub(crate) inqueue: Buffer,
    pub(crate) fence: Option<SpillFence>,
    pub(crate) outbox: &'a mut Vec<u32>,
    /// Query-id tag of the token being expanded: `token - token_row(token)`
    /// (see [`PtWorkload::token_row`]). Offered children are raw CSR rows;
    /// the sink re-tags them with the same query id before touching
    /// per-query state, so `expand` implementations stay batch-oblivious.
    /// Zero for every solo (non-batched) workload.
    pub(crate) base: u32,
}

impl TokenSink<'_> {
    /// Offers `candidate` as `child`'s new value. Claims the value word
    /// with the workload's directed atomic; on a strict improvement,
    /// claims the on-queue bit and emits the token (outbox or spill).
    /// `child` is a CSR row; in a batched launch the parent token's
    /// query-id tag carries over to the emitted token.
    pub fn offer(&mut self, ctx: &mut WaveCtx<'_>, child: u32, candidate: u32) {
        let token = self.base + child;
        let old = match self.claim {
            Claim::Min => ctx.atomic_min(self.values, token as usize, candidate),
            Claim::Max => ctx.atomic_max(self.values, token as usize, candidate),
        };
        let improved = match self.claim {
            Claim::Min => old > candidate,
            Claim::Max => old < candidate,
        };
        if !improved {
            return;
        }
        // Improving discovery: schedule it unless it is already sitting
        // in the queue.
        let was = ctx.atomic_exchange(self.inqueue, token as usize, 1);
        if was != 0 {
            return;
        }
        match self.fence {
            // Beyond the epoch fence (min-directed workloads only: the
            // fence is a ceiling on the monotonically growing claim
            // value): park the claimed token in the spill buffer for the
            // next launch to seed from.
            Some(f) if self.claim == Claim::Min && candidate > f.depth => {
                let at = ctx.atomic_add(f.spill, 0, 1);
                ctx.global_write_lane(f.spill, 1 + at as usize, token);
            }
            _ => self.outbox.push(token),
        }
    }
}

/// One irregular workload runnable on the persistent-thread core.
///
/// Implementations are cloned once per wavefront (and once per epoch by
/// the recoverable runner), so they must be cheap to clone — share large
/// payloads (e.g. edge weights) behind an `Arc`. `Send` because kernels
/// are planned on engine worker threads (see `simt::WaveKernel`).
pub trait PtWorkload: Clone + Send {
    /// Short display name (experiment tables, error messages).
    fn name(&self) -> &'static str;

    /// Direction of the value-word claim atomic.
    fn claim(&self) -> Claim;

    /// Device buffer name for the value array ("costs" for BFS, "dist"
    /// for SSSP, …). Kept workload-specific so fault plans that poison
    /// buffers by name, and memory-map dumps, stay meaningful.
    fn value_buffer_name(&self) -> &'static str;

    /// Initial per-vertex values (the bottom of the value lattice, with
    /// seeds pre-claimed).
    ///
    /// # Panics
    /// May panic if the workload's seed vertices are out of range.
    fn initial_values(&self, num_vertices: usize) -> Vec<u32>;

    /// Tokens seeding the scheduler queue (each must also have its
    /// on-queue bit set and be counted in `pending` — the runner does
    /// both).
    fn seeds(&self, num_vertices: usize) -> Vec<u32>;

    /// Length of the per-token state arrays (values, on-queue bits,
    /// spill buffer) for a graph of `num_vertices` vertices. Solo
    /// workloads use one slot per vertex (the default); a
    /// [`QueryBatch`] of `k` co-scheduled queries uses `k` slots per
    /// vertex so every query keeps private claim state over the shared
    /// CSR.
    fn state_len(&self, num_vertices: usize) -> usize {
        num_vertices
    }

    /// Maps a queue token to the CSR row it expands. Solo workloads
    /// schedule vertices directly (identity, the default); a
    /// [`QueryBatch`] packs `query_id * num_vertices + vertex` into the
    /// token and strips the query tag here. Pure (no device ops) — the
    /// kernel uses it on the host side of the acquisition prolog.
    fn token_row(&self, token: u32) -> u32 {
        token
    }

    /// Allocates and uploads workload-private device buffers (e.g. SSSP
    /// edge weights). Called once per launch, after the CSR buffers and
    /// before the value array, so buffer flat addresses are stable.
    fn bind(&mut self, mem: &mut DeviceMemory) {
        let _ = mem;
    }

    /// Maps the raw value a lane loads in the acquisition prolog to the
    /// lane's working value for this token. Pure (no device ops). The
    /// default is the identity; PR-delta derives its per-edge offer from
    /// the raw residual and the vertex degree here.
    fn lane_value(&self, raw: u32, edge_start: u32, edge_end: u32) -> u32 {
        let _ = (edge_start, edge_end);
        raw
    }

    /// Expands edges `start..stop` of a token whose lane value is
    /// `value`: read the adjacency slice and offer each child a
    /// candidate through `sink`. `scratch` is a reusable per-wavefront
    /// buffer for prevalidated chunk reads. `plan`, when present, holds
    /// the words `edges[start..stop]` copied out by the parallel plan
    /// phase (DESIGN.md §12); implementations should serve their
    /// adjacency reads from it through the validated cached accessors
    /// (`WaveCtx::peek_run_cached` / `WaveCtx::peek_cached`), which
    /// charge and fault exactly like the live reads — consuming or
    /// ignoring `plan` is byte-identical.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        ctx: &mut WaveCtx<'_>,
        buffers: &WorkBuffers,
        value: u32,
        start: u32,
        stop: u32,
        plan: Option<&[u32]>,
        scratch: &mut Vec<u32>,
        sink: &mut TokenSink<'_>,
    );

    /// Sequential reference oracle: the exact value array every run must
    /// produce.
    fn reference(&self, graph: &Csr) -> Vec<u32>;

    /// Checks a run's value array against [`PtWorkload::reference`].
    /// Returns the first discrepancy as `Err((vertex, expected, actual))`.
    fn validate(&self, graph: &Csr, candidate: &[u32]) -> Result<(), (u32, u32, u32)> {
        let reference = self.reference(graph);
        if candidate.len() != reference.len() {
            return Err((0, reference.len() as u32, candidate.len() as u32));
        }
        for (v, (&want, &got)) in reference.iter().zip(candidate).enumerate() {
            if want != got {
                return Err((v as u32, want, got));
            }
        }
        Ok(())
    }

    /// Vertices the run reached, given the final value array.
    fn reached(&self, values: &[u32]) -> usize {
        values.iter().filter(|&&v| v != UNVISITED).count()
    }

    /// Default queue capacity as a multiple of the vertex count (the
    /// runner's starting point before queue-full regrow). Workloads with
    /// heavy re-enqueue traffic or all-vertex seeding want headroom.
    fn default_capacity_factor(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_directions_per_workload() {
        assert_eq!(Bfs::new(0).claim(), Claim::Min);
        assert_eq!(Sssp::new(0, vec![]).claim(), Claim::Min);
        assert_eq!(ConnectedComponents.claim(), Claim::Min);
        assert_eq!(PrDelta::new(0).claim(), Claim::Max);
    }

    #[test]
    fn value_buffer_names_are_distinct_and_stable() {
        // Fault plans poison buffers by name; these are load-bearing.
        assert_eq!(Bfs::new(0).value_buffer_name(), "costs");
        assert_eq!(Sssp::new(0, vec![]).value_buffer_name(), "dist");
        assert_eq!(ConnectedComponents.value_buffer_name(), "labels");
        assert_eq!(PrDelta::new(0).value_buffer_name(), "resid");
    }

    #[test]
    fn seeding_shapes() {
        assert_eq!(Bfs::new(3).seeds(10), vec![3]);
        assert_eq!(PrDelta::new(2).seeds(10), vec![2]);
        assert_eq!(ConnectedComponents.seeds(4), vec![0, 1, 2, 3]);
        let init = Bfs::new(3).initial_values(5);
        assert_eq!(init[3], 0);
        assert!(init
            .iter()
            .enumerate()
            .all(|(v, &x)| v == 3 || x == UNVISITED));
    }
}
