//! Checkpoint/resume recovery for persistent-thread runs, generic over
//! the workload.
//!
//! The paper's only recovery story is capacity regrow: "If more space can
//! be allocated, the user can retry the kernel with a larger queue." This
//! module generalizes that into a [`RecoveryPolicy`] — bounded attempts,
//! geometric capacity regrow (subsuming the ad-hoc doubling in
//! [`crate::run_workload`]), per-attempt backoff in simulated cycles, and
//! a per-epoch watchdog — and adds *checkpointing* so a failed launch
//! does not restart the traversal from scratch.
//!
//! # Value-fenced epochs
//!
//! A persistent kernel normally runs the whole traversal in one launch,
//! so there is no iteration-safe point to snapshot: an abort mid-launch
//! leaves tokens half-expanded (a lane clears the on-queue bit before
//! walking the adjacency list, so its unexpanded edges are unrecoverable
//! from device state). Instead, the recoverable runner *fences* each
//! launch at a claim value (see [`crate::kernel::SpillFence`]):
//! discoveries claimed past the fence are claimed as usual (value
//! atomic-min + on-queue bit) but parked in a spill buffer rather than
//! the scheduler queue. Each launch therefore terminates at a frontier
//! boundary — `pending == 0` with nothing half-expanded — and the host
//! snapshots a [`Checkpoint`]: the value array, the on-queue bits, and
//! the spilled frontier. The next epoch relaunches from that snapshot.
//!
//! The fence unit is whatever the workload's claim word measures: BFS
//! levels, SSSP distances (weights ≥ 1 keep each epoch's round count
//! bounded), component labels for min-label CC. Max-directed workloads
//! ([`crate::workload::Claim::Max`]) never spill — their claim values
//! only grow away from the fence — so they degenerate to one unfenced
//! launch per run and recover by scratch restart, exactly like
//! `checkpoint_levels == u32::MAX`.
//!
//! On an abort (queue-full, injected fault, watchdog) the epoch is
//! retried from the last checkpoint, so only the current epoch's rounds
//! are lost, not the whole run. Because every workload on the core is
//! label-correcting (a directed atomic claim converges to its unique
//! fixed point in any execution order), a recovered run produces values
//! **byte-identical** to an uninterrupted one — the integration tests pin
//! this for BFS and SSSP.
//!
//! Faults are transient: after an injected-fault abort the plan is pruned
//! with [`FaultPlan::expire_through`], so the retry makes progress.
//! The snapshotted frontier is validated through the *host* RF/AN queue
//! mirror ([`RfAnQueue::try_enqueue_batch`] / `try_reserve`) before each
//! relaunch, so a corrupt snapshot surfaces as a structured error instead
//! of poisoning a device launch.

use crate::kernel::PtKernel;
use crate::runner::{enforce_retry_free, queue_capacity, LaunchLayout, PhaseWalls, PtConfig, Run};
use crate::workload::{Bfs, PtWorkload, WorkBuffers};
use gpu_queue::host::{EnqueueError, RfAnQueue, SegmentedRfAnQueue};
use gpu_queue::Variant;
use ptq_graph::Csr;
use simt::{AbortReason, Engine, FaultPlan, GpuConfig, Launch, Metrics, Profile, SimError};

/// How the recoverable runner reacts to aborts.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Total relaunch attempts allowed across the run; the abort that
    /// exhausts the budget propagates as the run's error.
    pub max_attempts: u32,
    /// Multiplier applied to the capacity factor on a queue-full abort
    /// (the paper's doubling generalized).
    pub capacity_regrow: f64,
    /// Ceiling on the capacity factor (multiple of the vertex count).
    pub max_capacity_factor: f64,
    /// Simulated backoff cycles added per retry: attempt `k` waits
    /// `k * backoff_cycles` before relaunching (charged to the run's
    /// simulated seconds, recorded in the log).
    pub backoff_cycles: u64,
    /// Claim-value units per epoch — the checkpoint stride (BFS levels,
    /// SSSP distance, CC label range). Small strides bound lost work
    /// tightly; `u32::MAX` degenerates to one unfenced launch (recovery
    /// then restarts from scratch, like [`crate::run_workload`]).
    pub checkpoint_levels: u32,
    /// Per-epoch round budget. An epoch exceeding it aborts with
    /// [`AbortReason::Watchdog`] and retries with a doubled budget.
    /// `0` disables the watchdog (the launch-wide `max_rounds` of
    /// [`PtConfig`] still applies, but exceeding *that* is a hard
    /// non-termination error, not a recoverable abort).
    pub watchdog_rounds: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 8,
            capacity_regrow: 2.0,
            max_capacity_factor: 32.0,
            backoff_cycles: 1_000,
            checkpoint_levels: 4,
            watchdog_rounds: 0,
        }
    }
}

/// One logged relaunch: why the previous attempt died and what the
/// policy changed before retrying.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryAttempt {
    /// Epoch (checkpoint interval) in which the abort happened.
    pub epoch: u32,
    /// 1-based attempt number across the whole run.
    pub attempt: u32,
    /// Structured abort classification.
    pub reason: AbortReason,
    /// Rounds executed by the aborted launch — work thrown away.
    pub rounds_lost: u64,
    /// Simulated backoff charged before the relaunch.
    pub backoff_cycles: u64,
    /// Capacity factor the aborted launch ran with.
    pub capacity_factor: f64,
}

/// The recovery log a run's report carries: every abort/relaunch, plus
/// aggregate lost/replayed round accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryLog {
    /// Every abort the run recovered from, in order.
    pub attempts: Vec<RecoveryAttempt>,
    /// Checkpoints taken (resume points with a non-empty frontier).
    pub checkpoints: u32,
    /// Epochs (fenced launches) that completed successfully.
    pub epochs: u32,
    /// Rounds executed by aborted launches (discarded work).
    pub rounds_lost: u64,
    /// Rounds re-executed by the successful retries of epochs that had
    /// previously aborted — the cost of recovery. Checkpointing exists to
    /// make this small: a from-scratch restart replays the whole run.
    pub rounds_replayed: u64,
    /// Rounds of successful epochs (committed forward progress).
    pub rounds_committed: u64,
    /// Capacity factor the run finished with (grown on queue-full).
    pub final_capacity_factor: f64,
}

impl RecoveryLog {
    /// Number of aborts the run survived.
    pub fn aborts(&self) -> usize {
        self.attempts.len()
    }
}

/// A resumable snapshot taken at a frontier boundary (end of a fenced
/// epoch): nothing in it is half-expanded, so a relaunch seeded from it
/// is indistinguishable from a run that never stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Per-vertex value array (exact up to `depth` for min-claims,
    /// claimed upper bounds beyond it).
    pub values: Vec<u32>,
    /// Per-vertex on-queue bits (1 exactly for `frontier` members).
    pub inqueue: Vec<u32>,
    /// Spilled frontier: vertices claimed past the fence, to seed the
    /// next epoch's queue.
    pub frontier: Vec<u32>,
    /// Deepest claim value the completed epochs scheduled through the
    /// queue (BFS level, SSSP distance, …).
    pub depth: u32,
    /// Rounds committed by the epochs behind this snapshot.
    pub rounds_committed: u64,
}

impl Checkpoint {
    /// The pre-traversal snapshot of a BFS from `source`: only the
    /// source discovered, at level 0. Kept as the BFS-era constructor;
    /// [`Checkpoint::start_of`] covers any workload.
    pub fn initial(num_vertices: usize, source: u32) -> Self {
        Self::start_of(&Bfs::new(source), num_vertices)
    }

    /// The pre-traversal snapshot of `workload` over an `num_vertices`
    /// graph: the workload's initial values, its seeds as the frontier
    /// (with their on-queue bits set), depth 0.
    pub fn start_of<W: PtWorkload>(workload: &W, num_vertices: usize) -> Self {
        let values = workload.initial_values(num_vertices);
        let frontier = workload.seeds(num_vertices);
        // Tokens index per-token state: `num_vertices` slots solo,
        // `k * num_vertices` for a k-member QueryBatch.
        let mut inqueue = vec![0u32; workload.state_len(num_vertices)];
        for &seed in &frontier {
            inqueue[seed as usize] = 1;
        }
        Checkpoint {
            values,
            inqueue,
            frontier,
            depth: 0,
            rounds_committed: 0,
        }
    }
}

/// What one fenced launch hands back to the epoch loop.
struct EpochOutcome {
    metrics: Metrics,
    seconds: f64,
    per_cu_cycles: Vec<u64>,
    values: Vec<u32>,
    inqueue: Vec<u32>,
    spilled: Vec<u32>,
    profile: Profile,
}

/// Runs a recoverable persistent-thread traversal of `workload`: epochs
/// of `policy.checkpoint_levels` claim-value units, each checkpointed,
/// each retried from its checkpoint on abort under `policy`, with the
/// deterministic `plan` injecting faults.
///
/// The returned [`Run::recovery`] log records every abort survived. With
/// an empty plan and a fault-free workload the result's values are
/// byte-identical to [`crate::run_workload`]'s.
///
/// # Errors
/// Propagates the final abort when `policy.max_attempts` is exhausted,
/// and all non-recoverable errors (out-of-bounds, audit violations, hard
/// round-limit overruns) immediately.
///
/// # Panics
/// Panics if the workload's seeds are out of range or the policy's
/// checkpoint stride is zero.
pub fn run_recoverable<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    config: &PtConfig,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
) -> Result<Run, SimError> {
    resume_workload(
        gpu,
        graph,
        workload,
        config,
        policy,
        plan,
        Checkpoint::start_of(workload, graph.num_vertices()),
    )
}

/// Runs a recoverable persistent-thread BFS — [`run_recoverable`]
/// instantiated with [`Bfs`].
///
/// # Errors
/// See [`run_recoverable`].
pub fn run_bfs_recoverable(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    config: &PtConfig,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
) -> Result<Run, SimError> {
    run_recoverable(gpu, graph, &Bfs::new(source), config, policy, plan)
}

/// [`run_recoverable`] continued from an existing [`Checkpoint`] — the
/// relaunch path a host takes after deciding to resume rather than
/// restart (e.g. after a process-level failure with the snapshot
/// persisted).
///
/// # Errors
/// See [`run_recoverable`].
pub fn resume_workload<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    config: &PtConfig,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
    checkpoint: Checkpoint,
) -> Result<Run, SimError> {
    resume_workload_detailed(gpu, graph, workload, config, policy, plan, checkpoint)
        .map_err(|failure| failure.error)
}

/// Everything a supervisor needs to *continue* after a recoverable run
/// exhausted its in-run budget: the terminal error, the full
/// [`RecoveryLog`] (including the fatal attempt), the last good
/// [`Checkpoint`] to resume from, the [`FaultPlan`] with every fault
/// that already fired pruned away, and the simulated seconds the failed
/// run consumed. A serving layer retries by feeding `checkpoint` and
/// `remaining_plan` back into [`resume_workload_detailed`] — replaying
/// only the aborted epoch, not the whole run — or quarantines the query
/// with `log` as the evidence.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// The terminal error (the abort that exhausted `max_attempts`, or
    /// a non-recoverable simulator error).
    pub error: SimError,
    /// The recovery log up to and including the fatal attempt.
    pub log: RecoveryLog,
    /// The last committed snapshot — resume here, not from scratch.
    pub checkpoint: Checkpoint,
    /// The fault plan with everything that fired already pruned
    /// ([`FaultPlan::expire_through`]), so a resume makes progress.
    pub remaining_plan: FaultPlan,
    /// Simulated seconds consumed by the failed run (committed epochs
    /// plus aborted launches plus backoff).
    pub seconds: f64,
}

/// [`resume_workload`] returning structured failures: on error the
/// caller receives a [`RunFailure`] carrying the last good checkpoint,
/// the pruned fault plan, and the complete recovery log, instead of a
/// bare [`SimError`]. This is the entry point for supervisors that
/// implement their own retry budget above the policy's (e.g. a serving
/// layer quarantining poison queries).
///
/// A malformed checkpoint (value/inqueue arrays not matching the graph
/// order, or a frontier token colliding with the queue sentinel) is a
/// typed `corrupt checkpoint` [`SimError::AuditViolation`] — never a
/// panic — so callers can degrade it into a logged restart.
///
/// # Errors
/// Returns the [`RunFailure`] when `policy.max_attempts` is exhausted
/// and for all non-recoverable errors.
///
/// # Panics
/// Panics only if the policy's checkpoint stride is zero (a
/// configuration bug, not a runtime condition).
pub fn resume_workload_detailed<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    config: &PtConfig,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
    checkpoint: Checkpoint,
) -> Result<Run, Box<RunFailure>> {
    assert!(
        policy.checkpoint_levels > 0,
        "checkpoint stride must be positive"
    );
    let n = graph.num_vertices();
    let state_len = workload.state_len(n);
    let mut plan = plan.clone();
    if checkpoint.values.len() != state_len || checkpoint.inqueue.len() != state_len {
        // A snapshot from the wrong graph or workload shape (or a
        // truncated one) degrades into a typed error the caller can log
        // and retry from scratch.
        let error = SimError::AuditViolation(format!(
            "corrupt checkpoint: {} values / {} inqueue bits against {} state slots",
            checkpoint.values.len(),
            checkpoint.inqueue.len(),
            state_len
        ));
        return Err(Box::new(RunFailure {
            error,
            log: RecoveryLog::default(),
            checkpoint,
            remaining_plan: plan,
            seconds: 0.0,
        }));
    }

    let mut ckpt = checkpoint;
    let mut factor = config.capacity_factor;
    let mut watchdog = if policy.watchdog_rounds == 0 {
        config.max_rounds
    } else {
        policy.watchdog_rounds
    };
    let mut log = RecoveryLog::default();
    let mut metrics = Metrics::default();
    let mut seconds = 0.0f64;
    let mut per_cu_cycles: Vec<u64> = Vec::new();
    let mut profile = Profile::default();
    let mut phases = PhaseWalls::default();
    let mut attempts = 0u32;
    let mut epoch = 0u32;
    let mut epoch_had_abort = false;

    loop {
        let capacity = queue_capacity(n, factor);

        // Validate the snapshotted frontier through the host RF/AN mirror
        // before burning a device launch: corrupt tokens fail fast with a
        // structured error; an over-full frontier regrows capacity
        // host-side (no device attempt consumed).
        match mirror_check(config.variant, &ckpt.frontier, capacity) {
            Ok(()) => {}
            Err(EnqueueError::InvalidToken { token }) => {
                let error = SimError::AuditViolation(format!(
                    "corrupt checkpoint: frontier token {token:#x} collides with the dna sentinel"
                ));
                log.final_capacity_factor = factor;
                return Err(Box::new(RunFailure {
                    error,
                    log,
                    checkpoint: ckpt,
                    remaining_plan: plan,
                    seconds,
                }));
            }
            Err(EnqueueError::Full(full)) => {
                if factor < policy.max_capacity_factor {
                    factor = (factor * policy.capacity_regrow).min(policy.max_capacity_factor);
                    continue;
                }
                let error = SimError::KernelAbort {
                    reason: AbortReason::QueueFull {
                        requested: ckpt.frontier.len() as u64,
                        capacity: full.capacity as u32,
                    },
                    round: 0,
                };
                log.final_capacity_factor = factor;
                return Err(Box::new(RunFailure {
                    error,
                    log,
                    checkpoint: ckpt,
                    remaining_plan: plan,
                    seconds,
                }));
            }
        }

        let fence = ckpt.depth.saturating_add(policy.checkpoint_levels);
        let epoch_start = std::time::Instant::now();
        let outcome = run_epoch(
            gpu, graph, workload, config, &ckpt, fence, capacity, watchdog, &plan,
        );
        phases.sim_seconds += epoch_start.elapsed().as_secs_f64();
        match outcome {
            Ok(out) => {
                metrics.merge(&out.metrics);
                profile.merge(&out.profile);
                seconds += out.seconds;
                accumulate_cycles(&mut per_cu_cycles, &out.per_cu_cycles);
                log.rounds_committed += out.metrics.rounds;
                if epoch_had_abort {
                    log.rounds_replayed += out.metrics.rounds;
                    epoch_had_abort = false;
                }
                log.epochs += 1;
                let rounds_committed = ckpt.rounds_committed + out.metrics.rounds;
                ckpt = Checkpoint {
                    values: out.values,
                    inqueue: out.inqueue,
                    frontier: out.spilled,
                    depth: fence,
                    rounds_committed,
                };
                if ckpt.frontier.is_empty() {
                    log.final_capacity_factor = factor;
                    let reached = workload.reached(&ckpt.values);
                    return Ok(Run {
                        seconds,
                        metrics,
                        values: ckpt.values,
                        reached,
                        per_cu_cycles,
                        recovery: log,
                        profile,
                        phases,
                    });
                }
                log.checkpoints += 1;
                epoch += 1;
            }
            Err(e) => {
                let (reason, rounds_lost) = match &e {
                    SimError::KernelAbort { reason, round } => (*reason, *round),
                    // A watchdog-capped launch hitting its round budget is
                    // a recoverable supervisory abort; hitting the
                    // launch-wide limit is hard non-termination.
                    SimError::MaxRoundsExceeded { limit } if *limit < config.max_rounds => (
                        AbortReason::Watchdog {
                            budget: watchdog,
                            round: *limit,
                        },
                        *limit,
                    ),
                    _ => {
                        log.final_capacity_factor = factor;
                        return Err(Box::new(RunFailure {
                            error: e,
                            log,
                            checkpoint: ckpt,
                            remaining_plan: plan,
                            seconds,
                        }));
                    }
                };
                attempts += 1;
                if attempts > policy.max_attempts {
                    // Record the fatal abort itself so a quarantining
                    // caller holds the complete story, and prune the
                    // transient faults that fired so a later resume from
                    // this checkpoint makes progress.
                    log.attempts.push(RecoveryAttempt {
                        epoch,
                        attempt: attempts,
                        reason,
                        rounds_lost,
                        backoff_cycles: 0,
                        capacity_factor: factor,
                    });
                    log.rounds_lost += rounds_lost;
                    log.final_capacity_factor = factor;
                    if matches!(reason, AbortReason::InjectedFault { .. }) {
                        plan = plan.expire_through(rounds_lost);
                    }
                    return Err(Box::new(RunFailure {
                        error: e,
                        log,
                        checkpoint: ckpt,
                        remaining_plan: plan,
                        seconds,
                    }));
                }
                let backoff = policy.backoff_cycles.saturating_mul(attempts as u64);
                log.attempts.push(RecoveryAttempt {
                    epoch,
                    attempt: attempts,
                    reason,
                    rounds_lost,
                    backoff_cycles: backoff,
                    capacity_factor: factor,
                });
                log.rounds_lost += rounds_lost;
                seconds += gpu.cycles_to_seconds(backoff);
                epoch_had_abort = true;
                match reason {
                    AbortReason::QueueFull { .. } => {
                        factor = (factor * policy.capacity_regrow).min(policy.max_capacity_factor);
                    }
                    AbortReason::InjectedFault { .. } => {
                        // Transient fault: prune everything that fired so
                        // the retry makes progress.
                        plan = plan.expire_through(rounds_lost);
                    }
                    AbortReason::Watchdog { .. } => {
                        watchdog = watchdog.saturating_mul(2);
                    }
                }
            }
        }
    }
}

/// [`resume_workload`] instantiated with [`Bfs`] — the pre-refactor
/// entry point, kept for BFS callers.
///
/// # Errors
/// See [`run_recoverable`].
pub fn resume_bfs(
    gpu: &GpuConfig,
    graph: &Csr,
    config: &PtConfig,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
    checkpoint: Checkpoint,
) -> Result<Run, SimError> {
    // The source is implicit in the checkpoint; the workload instance
    // only contributes `reached` counting on the resumed run.
    let source = checkpoint.values.iter().position(|&v| v == 0).unwrap_or(0) as u32;
    resume_workload(
        gpu,
        graph,
        &Bfs::new(source),
        config,
        policy,
        plan,
        checkpoint,
    )
}

/// Replays the snapshotted frontier through a host mirror of the run's
/// queue family: `try_enqueue_batch` rejects sentinel collisions (and,
/// for the bounded mirror, over-capacity windows) without touching
/// state, and a reservation proves the published window is drainable by
/// a consumer. Segmented variants mirror through
/// [`SegmentedRfAnQueue`], whose only structural failure is a corrupt
/// token — no frontier is too large, so the host-side capacity-regrow
/// path is unreachable for them.
fn mirror_check(variant: Variant, frontier: &[u32], capacity: u32) -> Result<(), EnqueueError> {
    if variant.is_segmented() {
        let mirror = SegmentedRfAnQueue::new(((capacity as usize) / 8).max(32));
        mirror.try_enqueue_batch(frontier)?;
        let window = mirror.reserve(frontier.len() as u64);
        debug_assert_eq!(window.start, 0, "fresh mirror reserves from zero");
        return Ok(());
    }
    let mirror = RfAnQueue::new(capacity as usize);
    mirror.try_enqueue_batch(frontier)?;
    mirror
        .try_reserve(frontier.len())
        .map_err(EnqueueError::from)?;
    Ok(())
}

fn accumulate_cycles(total: &mut Vec<u64>, add: &[u64]) {
    if total.len() < add.len() {
        total.resize(add.len(), 0);
    }
    for (t, a) in total.iter_mut().zip(add) {
        *t += a;
    }
}

/// One fenced launch from `ckpt`: seed the queue with the frontier, run
/// the kernel with a [`crate::kernel::SpillFence`] at `fence`, and read
/// back the post-epoch snapshot.
#[allow(clippy::too_many_arguments)]
fn run_epoch<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    config: &PtConfig,
    ckpt: &Checkpoint,
    fence: u32,
    capacity: u32,
    watchdog: u64,
    plan: &FaultPlan,
) -> Result<EpochOutcome, SimError> {
    let n = graph.num_vertices();
    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    let mut workload = workload.clone();
    workload.bind(mem);
    let values = mem.alloc_init(workload.value_buffer_name(), &ckpt.values);
    let inqueue = mem.alloc_init("inqueue", &ckpt.inqueue);
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, ckpt.frontier.len() as u32);
    // Spill cursor + at most one entry per token (the on-queue bit
    // guarantees a token spills at most once per epoch).
    let spill = mem.alloc("spill", workload.state_len(n) + 1);
    let layout = LaunchLayout::setup(mem, config.variant, capacity, &ckpt.frontier);

    let buffers = WorkBuffers {
        nodes: mem.buffer("nodes"),
        edges: mem.buffer("edges"),
        values,
        inqueue,
        pending,
    };
    let mut launch = Launch::workgroups(config.workgroups)
        .with_cpu_collab(config.cpu_collab_groups)
        .with_max_rounds(watchdog.min(config.max_rounds))
        .with_engine_workers(config.engine_workers);
    if config.audit {
        launch = launch.with_audit();
    }
    let variant = config.variant;
    let chunk = config.chunk;
    let report = engine.run_with_faults(launch, plan, |info| {
        PtKernel::with_chunk(
            layout.make_queue(variant),
            workload.clone(),
            buffers,
            info.wave_size,
            chunk,
        )
        .with_fence(fence, spill)
    })?;
    if config.audit {
        enforce_retry_free(variant, &report.metrics)?;
    }

    let spill_count = engine.memory().read_u32(spill, 0) as usize;
    let spilled = engine.memory().read_slice(spill)[1..1 + spill_count].to_vec();
    Ok(EpochOutcome {
        metrics: report.metrics,
        seconds: report.seconds,
        per_cu_cycles: report.per_cu_cycles,
        values: engine.memory().read_slice(buffers.values).to_vec(),
        inqueue: engine.memory().read_slice(buffers.inqueue).to_vec(),
        spilled,
        profile: report.profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ConnectedComponents, PrDelta, Sssp};
    use crate::{run_bfs, run_workload};
    use gpu_queue::Variant;
    use ptq_graph::gen::synthetic_tree;
    use simt::GpuConfig;

    fn cfg(variant: Variant) -> PtConfig {
        PtConfig::new(variant, 3)
    }

    #[test]
    fn fault_free_epochs_match_single_launch_costs() {
        let g = synthetic_tree(700, 4);
        let plain = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg(Variant::RfAn)).unwrap();
        for stride in [1u32, 2, 3, u32::MAX] {
            let policy = RecoveryPolicy {
                checkpoint_levels: stride,
                ..RecoveryPolicy::default()
            };
            let run = run_bfs_recoverable(
                &GpuConfig::test_tiny(),
                &g,
                0,
                &cfg(Variant::RfAn),
                &policy,
                &FaultPlan::EMPTY,
            )
            .unwrap();
            assert_eq!(run.values, plain.values, "stride {stride}");
            assert_eq!(run.reached, plain.reached);
            assert!(run.recovery.attempts.is_empty());
            assert_eq!(run.recovery.rounds_lost, 0);
            assert_eq!(run.recovery.rounds_replayed, 0);
        }
    }

    #[test]
    fn unfenced_stride_is_one_epoch() {
        let g = synthetic_tree(300, 4);
        let policy = RecoveryPolicy {
            checkpoint_levels: u32::MAX,
            ..RecoveryPolicy::default()
        };
        let run = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &cfg(Variant::RfAn),
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        assert_eq!(run.recovery.epochs, 1);
        assert_eq!(run.recovery.checkpoints, 0);
    }

    #[test]
    fn wave_kill_is_survived_and_logged() {
        let g = synthetic_tree(700, 4);
        let plain = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg(Variant::RfAn)).unwrap();
        let plan = FaultPlan::new().kill_wave(3, 1);
        let policy = RecoveryPolicy {
            checkpoint_levels: 2,
            ..RecoveryPolicy::default()
        };
        let run = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &cfg(Variant::RfAn),
            &policy,
            &plan,
        )
        .unwrap();
        assert_eq!(run.values, plain.values, "recovered run must be exact");
        assert_eq!(run.recovery.aborts(), 1);
        let a = run.recovery.attempts[0];
        assert!(matches!(
            a.reason,
            AbortReason::InjectedFault {
                kind: simt::FaultKind::WaveKill,
                wave: 1,
                round: 3,
            }
        ));
        assert_eq!(a.rounds_lost, 3);
        assert!(run.recovery.rounds_replayed > 0);
    }

    #[test]
    fn queue_full_regrows_capacity_through_policy() {
        let g = synthetic_tree(800, 4);
        let mut config = cfg(Variant::RfAn);
        config.capacity_factor = 0.05; // ~64 slots: guaranteed overflow
        let policy = RecoveryPolicy {
            checkpoint_levels: u32::MAX,
            ..RecoveryPolicy::default()
        };
        let run = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &config,
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        assert_eq!(run.reached, 800);
        assert!(run.recovery.aborts() >= 1);
        assert!(run
            .recovery
            .attempts
            .iter()
            .all(|a| matches!(a.reason, AbortReason::QueueFull { .. })));
        assert!(run.recovery.final_capacity_factor > config.capacity_factor);
    }

    #[test]
    fn watchdog_abort_doubles_budget_and_recovers() {
        let g = synthetic_tree(600, 4);
        let policy = RecoveryPolicy {
            checkpoint_levels: u32::MAX,
            watchdog_rounds: 4, // far too small: must trip, then double
            ..RecoveryPolicy::default()
        };
        let run = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &cfg(Variant::RfAn),
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        assert_eq!(run.reached, 600);
        assert!(run.recovery.aborts() >= 1);
        assert!(run
            .recovery
            .attempts
            .iter()
            .all(|a| matches!(a.reason, AbortReason::Watchdog { .. })));
        // The carried context tracks the doubling budget: the first trip
        // reports the configured budget, each retry double it.
        let budgets: Vec<u64> = run
            .recovery
            .attempts
            .iter()
            .map(|a| match a.reason {
                AbortReason::Watchdog { budget, round } => {
                    assert_eq!(budget, round, "engine stops exactly at the budget");
                    budget
                }
                other => panic!("unexpected reason {other:?}"),
            })
            .collect();
        assert_eq!(budgets[0], 4);
        assert!(budgets.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn attempt_budget_exhaustion_propagates_the_abort() {
        let g = synthetic_tree(500, 4);
        // Kill a wave at round 1 of every launch; zero retries allowed.
        let plan = FaultPlan::new().kill_wave(1, 0);
        let policy = RecoveryPolicy {
            max_attempts: 0,
            ..RecoveryPolicy::default()
        };
        let err = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &cfg(Variant::RfAn),
            &policy,
            &plan,
        )
        .unwrap_err();
        assert!(matches!(
            err.abort_reason(),
            Some(AbortReason::InjectedFault { .. })
        ));
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_by_the_host_mirror() {
        let g = synthetic_tree(64, 4);
        let mut ckpt = Checkpoint::initial(64, 0);
        ckpt.frontier = vec![u32::MAX]; // dna sentinel collision
        let err = resume_bfs(
            &GpuConfig::test_tiny(),
            &g,
            &cfg(Variant::RfAn),
            &RecoveryPolicy::default(),
            &FaultPlan::EMPTY,
            ckpt,
        )
        .unwrap_err();
        assert!(
            matches!(&err, SimError::AuditViolation(msg) if msg.contains("corrupt checkpoint")),
            "{err:?}"
        );
    }

    #[test]
    fn malformed_checkpoint_shape_is_a_typed_error_not_a_panic() {
        let g = synthetic_tree(64, 4);
        let mut ckpt = Checkpoint::initial(64, 0);
        ckpt.values.truncate(10); // snapshot from the wrong graph
        let err = resume_bfs(
            &GpuConfig::test_tiny(),
            &g,
            &cfg(Variant::RfAn),
            &RecoveryPolicy::default(),
            &FaultPlan::EMPTY,
            ckpt,
        )
        .unwrap_err();
        assert!(
            matches!(&err, SimError::AuditViolation(msg) if msg.contains("corrupt checkpoint")),
            "{err:?}"
        );
    }

    #[test]
    fn detailed_failure_resumes_into_a_shorter_replay() {
        let g = synthetic_tree(700, 4);
        let plain = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg(Variant::RfAn)).unwrap();
        // Zero in-run retries: the first injected fault is terminal and
        // must surface as a structured failure, not a bare error.
        let plan = FaultPlan::new().kill_wave(3, 1);
        let policy = RecoveryPolicy {
            max_attempts: 0,
            checkpoint_levels: 2,
            ..RecoveryPolicy::default()
        };
        let failure = resume_workload_detailed(
            &GpuConfig::test_tiny(),
            &g,
            &Bfs::new(0),
            &cfg(Variant::RfAn),
            &policy,
            &plan,
            Checkpoint::start_of(&Bfs::new(0), 700),
        )
        .unwrap_err();
        assert!(matches!(
            failure.error.abort_reason(),
            Some(AbortReason::InjectedFault { .. })
        ));
        // The fatal attempt is logged, the fired fault is pruned, and
        // the checkpoint is resumable.
        assert_eq!(failure.log.aborts(), 1);
        assert!(failure.remaining_plan.is_empty());
        let resumed = resume_workload_detailed(
            &GpuConfig::test_tiny(),
            &g,
            &Bfs::new(0),
            &cfg(Variant::RfAn),
            &policy,
            &failure.remaining_plan,
            failure.checkpoint.clone(),
        )
        .unwrap();
        assert_eq!(resumed.values, plain.values, "resume converges exactly");
        // A resume from the failure's checkpoint replays at most the
        // aborted epoch; a scratch restart under the same fencing redoes
        // every committed epoch as well.
        let scratch = resume_workload_detailed(
            &GpuConfig::test_tiny(),
            &g,
            &Bfs::new(0),
            &cfg(Variant::RfAn),
            &policy,
            &FaultPlan::EMPTY,
            Checkpoint::start_of(&Bfs::new(0), 700),
        )
        .unwrap();
        assert!(resumed.metrics.rounds <= scratch.metrics.rounds);
        if failure.checkpoint.rounds_committed > 0 {
            assert!(
                resumed.metrics.rounds < scratch.metrics.rounds,
                "resume must not redo committed epochs"
            );
        }
    }

    #[test]
    fn resume_from_initial_checkpoint_equals_full_run() {
        let g = synthetic_tree(400, 4);
        let policy = RecoveryPolicy {
            checkpoint_levels: 2,
            ..RecoveryPolicy::default()
        };
        let a = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &cfg(Variant::An),
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        let b = resume_bfs(
            &GpuConfig::test_tiny(),
            &g,
            &cfg(Variant::An),
            &policy,
            &FaultPlan::EMPTY,
            Checkpoint::initial(400, 0),
        )
        .unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.seconds, b.seconds);
    }

    #[test]
    fn segmented_recovers_wave_kill_without_queue_full() {
        // The segmented variant rides the same checkpoint/resume loop,
        // but its abort vocabulary has no queue-full entry: every
        // recovery attempt in the log must be the injected fault.
        let g = synthetic_tree(700, 4);
        let plain = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg(Variant::SegRfAn)).unwrap();
        let plan = FaultPlan::new().kill_wave(3, 1);
        let policy = RecoveryPolicy {
            checkpoint_levels: 2,
            ..RecoveryPolicy::default()
        };
        let run = run_bfs_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &cfg(Variant::SegRfAn),
            &policy,
            &plan,
        )
        .unwrap();
        assert_eq!(run.values, plain.values, "recovered run must be exact");
        assert!(run.recovery.aborts() >= 1);
        assert!(
            run.recovery
                .attempts
                .iter()
                .all(|a| !matches!(a.reason, AbortReason::QueueFull { .. })),
            "queue-full is unreachable on segmented variants: {:?}",
            run.recovery.attempts
        );
        assert_eq!(
            run.recovery.final_capacity_factor,
            cfg(Variant::SegRfAn).capacity_factor,
            "no capacity regrow ever triggers"
        );
    }

    #[test]
    fn segmented_mirror_still_rejects_corrupt_checkpoints() {
        let g = synthetic_tree(64, 4);
        let mut ckpt = Checkpoint::initial(64, 0);
        ckpt.frontier = vec![u32::MAX]; // dna sentinel collision
        let err = resume_bfs(
            &GpuConfig::test_tiny(),
            &g,
            &cfg(Variant::SegRfAn),
            &RecoveryPolicy::default(),
            &FaultPlan::EMPTY,
            ckpt,
        )
        .unwrap_err();
        assert!(
            matches!(&err, SimError::AuditViolation(msg) if msg.contains("corrupt checkpoint")),
            "{err:?}"
        );
    }

    #[test]
    fn generic_checkpoint_start_matches_bfs_initial() {
        let bfs = Checkpoint::initial(128, 5);
        let generic = Checkpoint::start_of(&Bfs::new(5), 128);
        assert_eq!(bfs, generic);
    }

    #[test]
    fn sssp_recovers_wave_kill_to_exact_distances() {
        let g = synthetic_tree(500, 4);
        let weights: Vec<u32> = (0..g.num_edges()).map(|i| 1 + (i as u32 % 7)).collect();
        let sssp = Sssp::new(0, weights);
        let config = PtConfig::for_workload(&sssp, Variant::RfAn, 3);
        let plain = run_workload(&GpuConfig::test_tiny(), &g, &sssp, &config).unwrap();
        let policy = RecoveryPolicy {
            checkpoint_levels: 8, // distance units per epoch
            ..RecoveryPolicy::default()
        };
        let plan = FaultPlan::new().kill_wave(3, 0);
        let run =
            run_recoverable(&GpuConfig::test_tiny(), &g, &sssp, &config, &policy, &plan).unwrap();
        assert_eq!(run.values, plain.values, "recovered SSSP must be exact");
        assert!(run.recovery.aborts() >= 1);
    }

    #[test]
    fn cc_epochs_fence_on_label_values() {
        let g = synthetic_tree(300, 4);
        let cc = ConnectedComponents;
        let config = PtConfig::for_workload(&cc, Variant::RfAn, 3);
        let policy = RecoveryPolicy {
            checkpoint_levels: 64, // label units per epoch
            max_capacity_factor: 128.0,
            ..RecoveryPolicy::default()
        };
        let run = run_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            &cc,
            &config,
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        cc.validate(&g, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("vertex {v}: label {got} != {want}"));
    }

    #[test]
    fn max_claim_workload_degenerates_to_unfenced_epochs() {
        // PR-delta claims with atomic-max: values grow away from the
        // fence, nothing ever spills, so every run is a single epoch
        // regardless of stride — and still exact.
        let g = synthetic_tree(300, 4);
        let pr = PrDelta::new(0);
        let config = PtConfig::for_workload(&pr, Variant::RfAn, 3);
        let policy = RecoveryPolicy {
            checkpoint_levels: 2,
            ..RecoveryPolicy::default()
        };
        let run = run_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            &pr,
            &config,
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        assert_eq!(run.recovery.epochs, 1);
        assert_eq!(run.recovery.checkpoints, 0);
        pr.validate(&g, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("vertex {v}: {got} != {want}"));
    }
}
