//! Host-side orchestration of a persistent-thread BFS run.
//!
//! Mirrors what the paper's OpenCL host program does: allocate and
//! initialize device buffers (graph in CSR form, cost array, the
//! scheduler queue painted with sentinels, the outstanding-task counter),
//! seed the source vertex, launch the persistent kernel once, then read
//! back the costs and validate them against the sequential reference.

use crate::kernel::{BfsBuffers, PersistentBfsKernel, CHUNK};
use crate::recovery::{RecoveryAttempt, RecoveryLog};
use crate::UNVISITED;
use gpu_queue::device::{make_wave_queue, QueueLayout};
use gpu_queue::Variant;
use ptq_graph::Csr;
use simt::{Engine, GpuConfig, Launch, Metrics, SimError};

/// Parameters of one BFS run.
#[derive(Clone, Debug)]
pub struct BfsConfig {
    /// Which queue design schedules the tasks.
    pub variant: Variant,
    /// Number of workgroups to launch (the paper's sweep axis).
    pub workgroups: usize,
    /// Edges per lane per work cycle (paper default: 4).
    pub chunk: u32,
    /// Queue capacity as a multiple of the vertex count. 1.0 suffices for
    /// pure first-discovery; the label-correcting re-enqueues of an
    /// asynchronous traversal need a little headroom.
    pub capacity_factor: f64,
    /// Collaborating CPU groups (0 except for the CHAI baseline).
    pub cpu_collab_groups: usize,
    /// Safety cap on simulation rounds.
    pub max_rounds: u64,
    /// Audit mode: assert the per-wavefront atomic budgets declared by
    /// the queue variants (`simt::audit`) inside the run, and the
    /// run-level retry-free claims afterwards. On by default — auditing
    /// is pure bookkeeping with no effect on metrics or timing.
    pub audit: bool,
}

impl BfsConfig {
    /// The paper's standard configuration for `variant` at `workgroups`.
    pub fn new(variant: Variant, workgroups: usize) -> Self {
        BfsConfig {
            variant,
            workgroups,
            chunk: CHUNK,
            capacity_factor: 2.0,
            cpu_collab_groups: 0,
            max_rounds: 50_000_000,
            audit: true,
        }
    }
}

/// Result of a completed, validated BFS run.
#[derive(Clone, Debug)]
pub struct BfsRun {
    /// Simulated kernel time in seconds.
    pub seconds: f64,
    /// Simulator counters (atomics, CAS failures, retries, rounds, …).
    pub metrics: Metrics,
    /// Final per-vertex costs (exact BFS levels).
    pub costs: Vec<u32>,
    /// Vertices reached.
    pub reached: usize,
    /// Final cycle count of every compute unit (regression goldens pin
    /// these to prove engine fast paths are cycle-exact per CU, not just
    /// in aggregate).
    pub per_cu_cycles: Vec<u64>,
    /// Recovery log: every abort the run survived (capacity regrows here;
    /// injected faults and watchdog trips under
    /// [`crate::recovery::run_bfs_recoverable`]). Empty `attempts` for a
    /// first-try success.
    pub recovery: RecoveryLog,
}

/// Runs a persistent-thread BFS over `graph` from `source` on `gpu`,
/// applying the paper's queue-full recovery: "If more space can be
/// allocated, the user can retry the kernel with a larger queue." The
/// capacity doubles on each queue-full abort, up to 16× the configured
/// factor.
///
/// ```
/// use pt_bfs::{run_bfs, BfsConfig};
/// use gpu_queue::Variant;
/// use ptq_graph::gen::synthetic_tree;
/// use simt::GpuConfig;
///
/// let graph = synthetic_tree(500, 4);
/// let run = run_bfs(&GpuConfig::test_tiny(), &graph, 0,
///                   &BfsConfig::new(Variant::RfAn, 2)).unwrap();
/// assert_eq!(run.reached, 500);
/// assert_eq!(run.metrics.total_retries(), 0); // retry-free
/// ```
///
/// # Errors
/// Propagates simulator faults (round-limit overruns, or queue-full even
/// at the maximum capacity).
///
/// # Panics
/// Panics if `source` is out of range.
pub fn run_bfs(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    config: &BfsConfig,
) -> Result<BfsRun, SimError> {
    let mut factor = config.capacity_factor;
    let mut log = RecoveryLog::default();
    loop {
        let mut attempt = config.clone();
        attempt.capacity_factor = factor;
        match run_bfs_once(gpu, graph, source, &attempt) {
            Err(SimError::KernelAbort { reason, round })
                if reason.is_queue_full() && factor < 16.0 * config.capacity_factor =>
            {
                log.attempts.push(RecoveryAttempt {
                    epoch: 0,
                    attempt: log.attempts.len() as u32 + 1,
                    reason,
                    rounds_lost: round,
                    backoff_cycles: 0,
                    capacity_factor: factor,
                });
                log.rounds_lost += round;
                factor *= 2.0;
            }
            Ok(mut run) => {
                log.epochs = 1;
                log.rounds_committed = run.metrics.rounds;
                if !log.attempts.is_empty() {
                    log.rounds_replayed = run.metrics.rounds;
                }
                log.final_capacity_factor = factor;
                run.recovery = log;
                return Ok(run);
            }
            other => return other,
        }
    }
}

/// Run-level enforcement of the paper's central claim: a successful run
/// scheduled by a retry-free variant must report zero CAS attempts, zero
/// CAS failures, and zero queue-empty retries. Complements the
/// per-wavefront scopes (`simt::audit`) that already validated each
/// queue op inside the run.
pub(crate) fn enforce_retry_free(variant: Variant, metrics: &Metrics) -> Result<(), SimError> {
    if !variant.is_retry_free() {
        return Ok(());
    }
    simt::audit::check_retry_free(metrics)
        .map_err(|msg| SimError::AuditViolation(format!("{} run: {msg}", variant.label())))
}

fn run_bfs_once(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    config: &BfsConfig,
) -> Result<BfsRun, SimError> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");

    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    let costs = mem.alloc("costs", n);
    mem.fill(costs, UNVISITED);
    mem.write_u32(costs, source as usize, 0);
    let inqueue = mem.alloc("inqueue", n);
    mem.write_u32(inqueue, source as usize, 1);
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, 1);

    let capacity = ((n as f64 * config.capacity_factor) as usize)
        .max(64)
        .min(u32::MAX as usize) as u32;
    let layout = QueueLayout::setup(mem, "workqueue", capacity);
    layout.host_seed(mem, &[source]);

    let buffers = BfsBuffers {
        nodes: mem.buffer("nodes"),
        edges: mem.buffer("edges"),
        costs,
        inqueue,
        pending,
    };

    let mut launch = Launch::workgroups(config.workgroups)
        .with_cpu_collab(config.cpu_collab_groups)
        .with_max_rounds(config.max_rounds);
    if config.audit {
        launch = launch.with_audit();
    }
    let variant = config.variant;
    let chunk = config.chunk;
    let report = engine.run(launch, |info| {
        PersistentBfsKernel::with_chunk(
            make_wave_queue(variant, layout),
            buffers,
            info.wave_size,
            chunk,
        )
    })?;
    if config.audit {
        enforce_retry_free(variant, &report.metrics)?;
    }

    let costs = engine.memory().read_slice(buffers.costs).to_vec();
    let reached = costs.iter().filter(|&&c| c != UNVISITED).count();
    Ok(BfsRun {
        seconds: report.seconds,
        metrics: report.metrics,
        costs,
        reached,
        per_cu_cycles: report.per_cu_cycles,
        recovery: RecoveryLog::default(),
    })
}

/// Runs a persistent-thread BFS scheduled by the *distributed,
/// work-stealing* variant of the retry-free queue (one queue per compute
/// unit; see [`gpu_queue::device::StealingWaveQueue`]). An ablation
/// against the paper's single shared queue: less hot-word pressure,
/// more load imbalance.
///
/// # Errors
/// Propagates simulator faults; queue-full is recovered by doubling the
/// per-CU capacity, as in [`run_bfs`].
pub fn run_bfs_stealing(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    workgroups: usize,
) -> Result<BfsRun, SimError> {
    use gpu_queue::device::{StealingLayout, StealingWaveQueue};

    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut factor = 2.0f64;
    let mut log = RecoveryLog::default();
    loop {
        let mut engine = Engine::new(gpu.clone());
        let mem = engine.memory_mut();
        mem.alloc_init("nodes", graph.row_offsets());
        mem.alloc_init("edges", graph.adjacency());
        let costs = mem.alloc("costs", n);
        mem.fill(costs, UNVISITED);
        mem.write_u32(costs, source as usize, 0);
        let inqueue = mem.alloc("inqueue", n);
        mem.write_u32(inqueue, source as usize, 1);
        let pending = mem.alloc("pending", 1);
        mem.write_u32(pending, 0, 1);
        // A hub can land an outsized share on one CU: per-CU capacity is
        // provisioned at `factor * n`, doubled on queue-full.
        let capacity = ((n as f64 * factor) as usize).clamp(64, 1 << 24) as u32;
        let layout = StealingLayout::setup(mem, "dqueue", gpu.num_cus, capacity);
        layout.host_seed(mem, &[source]);
        let buffers = BfsBuffers {
            nodes: mem.buffer("nodes"),
            edges: mem.buffer("edges"),
            costs,
            inqueue,
            pending,
        };
        let result = engine.run(Launch::workgroups(workgroups).with_audit(), |info| {
            PersistentBfsKernel::new(
                Box::new(StealingWaveQueue::new(&layout, info.cu)),
                buffers,
                info.wave_size,
            )
        });
        match result {
            Err(SimError::KernelAbort { reason, round })
                if reason.is_queue_full() && factor < 16.0 =>
            {
                log.attempts.push(RecoveryAttempt {
                    epoch: 0,
                    attempt: log.attempts.len() as u32 + 1,
                    reason,
                    rounds_lost: round,
                    backoff_cycles: 0,
                    capacity_factor: factor,
                });
                log.rounds_lost += round;
                factor *= 2.0;
            }
            Err(e) => return Err(e),
            Ok(report) => {
                // Locally retry-free: never a CAS. (Failed steal scans DO
                // count queue-empty retries — the documented trade-off —
                // so only the CAS half of the claim is enforced here.)
                if report.metrics.cas_attempts != 0 || report.metrics.cas_failures != 0 {
                    return Err(SimError::AuditViolation(format!(
                        "stealing run: {} CAS attempts, {} failures (expected none)",
                        report.metrics.cas_attempts, report.metrics.cas_failures
                    )));
                }
                let costs = engine.memory().read_slice(buffers.costs).to_vec();
                let reached = costs.iter().filter(|&&c| c != UNVISITED).count();
                log.epochs = 1;
                log.rounds_committed = report.metrics.rounds;
                if !log.attempts.is_empty() {
                    log.rounds_replayed = report.metrics.rounds;
                }
                log.final_capacity_factor = factor;
                return Ok(BfsRun {
                    seconds: report.seconds,
                    metrics: report.metrics,
                    costs,
                    reached,
                    per_cu_cycles: report.per_cu_cycles,
                    recovery: log,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_graph::gen::{
        erdos_renyi, roadmap, social, synthetic_tree, RoadmapParams, SocialParams,
    };
    use ptq_graph::{bfs_levels, validate_levels};
    use simt::GpuConfig;

    fn check_all_variants(graph: &Csr, source: u32, wgs: usize) {
        let reference = bfs_levels(graph, source);
        for variant in Variant::ALL {
            let run = run_bfs(
                &GpuConfig::test_tiny(),
                graph,
                source,
                &BfsConfig::new(variant, wgs),
            )
            .unwrap_or_else(|e| panic!("{variant:?} failed: {e}"));
            assert_eq!(
                run.reached, reference.reached,
                "{variant:?} reached mismatch"
            );
            validate_levels(graph, source, &run.costs).unwrap_or_else(|(v, want, got)| {
                panic!("{variant:?}: vertex {v} expected level {want}, got {got}")
            });
        }
    }

    #[test]
    fn tree_bfs_exact_for_all_variants() {
        let g = synthetic_tree(400, 4);
        check_all_variants(&g, 0, 3);
    }

    #[test]
    fn roadmap_bfs_exact_for_all_variants() {
        let g = roadmap(RoadmapParams {
            rows: 16,
            cols: 16,
            keep_prob: 0.4,
            seed: 3,
        });
        check_all_variants(&g, 0, 2);
    }

    #[test]
    fn social_bfs_exact_for_all_variants() {
        let g = social(SocialParams {
            vertices: 600,
            avg_degree: 8.0,
            alpha: 1.8,
            max_degree: 100,
            seed: 5,
        });
        check_all_variants(&g, 0, 4);
    }

    #[test]
    fn random_multigraph_with_self_loops() {
        let g = erdos_renyi(300, 1200, 9);
        check_all_variants(&g, 7, 2);
    }

    #[test]
    fn single_vertex_graph() {
        let g = synthetic_tree(1, 4);
        check_all_variants(&g, 0, 1);
    }

    #[test]
    fn disconnected_graph_terminates() {
        // Source's component has 2 vertices; 98 unreachable.
        let mut b = ptq_graph::CsrBuilder::new(100);
        b.add_undirected_edge(0, 1);
        for i in 2..99 {
            b.add_undirected_edge(i, i + 1);
        }
        let g = b.build();
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &BfsConfig::new(Variant::RfAn, 2),
        )
        .unwrap();
        assert_eq!(run.reached, 2);
    }

    #[test]
    fn rfan_run_reports_zero_retries() {
        let g = synthetic_tree(500, 4);
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &BfsConfig::new(Variant::RfAn, 4),
        )
        .unwrap();
        assert_eq!(run.metrics.cas_failures, 0);
        assert_eq!(run.metrics.queue_empty_retries, 0);
    }

    #[test]
    fn retry_free_variants_pin_zero_retry_counters() {
        // The central claim, pinned as a regression over full audited
        // BFS runs: both retry-free variants issue NO CAS at all (not
        // merely zero failures) and never raise the queue-empty
        // exception. The AuditMode scopes already assert this per
        // wavefront op; this pins the run-level aggregate.
        let g = social(SocialParams {
            vertices: 800,
            avg_degree: 8.0,
            alpha: 1.8,
            max_degree: 120,
            seed: 11,
        });
        for variant in [Variant::RfAn, Variant::RfOnly] {
            let run = run_bfs(&GpuConfig::test_tiny(), &g, 0, &BfsConfig::new(variant, 4))
                .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            assert_eq!(run.metrics.total_retries(), 0, "{variant:?}");
            assert_eq!(run.metrics.cas_attempts, 0, "{variant:?}");
            assert_eq!(run.metrics.queue_empty_retries, 0, "{variant:?}");
        }
    }

    #[test]
    fn audit_mode_never_perturbs_results_or_metrics() {
        // Auditing is pure bookkeeping: byte-identical costs and metrics
        // with it on or off.
        let g = synthetic_tree(600, 4);
        for variant in Variant::ALL {
            let audited =
                run_bfs(&GpuConfig::test_tiny(), &g, 0, &BfsConfig::new(variant, 3)).unwrap();
            let mut plain_cfg = BfsConfig::new(variant, 3);
            plain_cfg.audit = false;
            let plain = run_bfs(&GpuConfig::test_tiny(), &g, 0, &plain_cfg).unwrap();
            assert_eq!(audited.metrics, plain.metrics, "{variant:?}");
            assert_eq!(audited.costs, plain.costs, "{variant:?}");
            assert_eq!(audited.seconds, plain.seconds, "{variant:?}");
        }
    }

    #[test]
    fn base_run_reports_retry_overhead() {
        let g = synthetic_tree(500, 4);
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &BfsConfig::new(Variant::Base, 4),
        )
        .unwrap();
        assert!(run.metrics.total_retries() > 0);
    }

    #[test]
    fn variant_ordering_on_saturating_workload() {
        // The headline result at miniature scale: RF/AN strictly fastest.
        let g = synthetic_tree(2_000, 4);
        let mut secs = std::collections::HashMap::new();
        for v in Variant::ALL {
            let run = run_bfs(&GpuConfig::test_tiny(), &g, 0, &BfsConfig::new(v, 4)).unwrap();
            secs.insert(v, run.seconds);
        }
        assert!(secs[&Variant::RfAn] < secs[&Variant::An]);
        assert!(secs[&Variant::RfAn] < secs[&Variant::Base]);
    }

    #[test]
    fn deterministic_runs() {
        let g = synthetic_tree(300, 4);
        let cfg = BfsConfig::new(Variant::An, 3);
        let a = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg).unwrap();
        let b = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.costs, b.costs);
    }

    #[test]
    fn stealing_scheduler_is_exact_on_all_dataset_shapes() {
        for g in [
            synthetic_tree(600, 4),
            roadmap(RoadmapParams {
                rows: 14,
                cols: 14,
                keep_prob: 0.4,
                seed: 6,
            }),
            erdos_renyi(400, 1600, 3),
        ] {
            let run = run_bfs_stealing(&GpuConfig::test_tiny(), &g, 0, 4).unwrap();
            validate_levels(&g, 0, &run.costs).unwrap_or_else(|(v, want, got)| {
                panic!("stealing: vertex {v} level {got} != {want}")
            });
        }
    }

    #[test]
    fn stealing_is_retry_free_locally() {
        let g = synthetic_tree(2_000, 4);
        let run = run_bfs_stealing(&GpuConfig::test_tiny(), &g, 0, 4).unwrap();
        assert_eq!(run.metrics.cas_attempts, 0, "stealing queues never CAS");
        // Failed steal scans count as queue-empty retries, which is the
        // documented trade-off (may be zero on a saturating tree).
    }

    #[test]
    fn cpu_collab_groups_participate() {
        let g = synthetic_tree(300, 4);
        let mut cfg = BfsConfig::new(Variant::Base, 1);
        cfg.cpu_collab_groups = 2;
        let run = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg).unwrap();
        assert_eq!(run.reached, 300);
    }
}
