//! Host-side orchestration of a persistent-thread run, generic over the
//! workload.
//!
//! Mirrors what the paper's OpenCL host program does: allocate and
//! initialize device buffers (graph in CSR form, the workload's value
//! array, the scheduler queue painted with sentinels, the
//! outstanding-task counter), seed the workload's initial tokens, launch
//! the persistent kernel once, then read back the values. BFS keeps its
//! historical entry points ([`run_bfs`], [`run_bfs_stealing`]) as thin
//! wrappers over the generic [`run_workload`] / [`run_workload_stealing`].

use crate::kernel::{PtKernel, CHUNK};
use crate::recovery::{RecoveryAttempt, RecoveryLog};
use crate::workload::{Bfs, PtWorkload, WorkBuffers};
use gpu_queue::device::{
    make_wave_queue, QueueLayout, SegmentedLayout, SegmentedWaveQueue, WaveQueue,
};
use gpu_queue::Variant;
use ptq_graph::Csr;
use simt::{DeviceMemory, Engine, GpuConfig, Launch, Metrics, Profile, SimError};
use std::time::Instant;

/// Parameters of one persistent-thread run (workload-neutral).
#[derive(Clone, Debug)]
pub struct PtConfig {
    /// Which queue design schedules the tasks.
    pub variant: Variant,
    /// Number of workgroups to launch (the paper's sweep axis).
    pub workgroups: usize,
    /// Edges per lane per work cycle (paper default: 4).
    pub chunk: u32,
    /// Queue capacity as a multiple of the vertex count. The queue is
    /// non-wrapping, so this bounds *lifetime* enqueues: first-discovery
    /// traffic fits in 1.0, label-correcting re-enqueues and all-vertex
    /// seeding need headroom (see
    /// [`PtWorkload::default_capacity_factor`]).
    pub capacity_factor: f64,
    /// Collaborating CPU groups (0 except for the CHAI baseline).
    pub cpu_collab_groups: usize,
    /// Safety cap on simulation rounds.
    pub max_rounds: u64,
    /// Audit mode: assert the per-wavefront atomic budgets declared by
    /// the queue variants (`simt::audit`) inside the run, and the
    /// run-level retry-free claims afterwards. On by default — auditing
    /// is pure bookkeeping with no effect on metrics or timing.
    pub audit: bool,
    /// Host worker threads for the engine's intra-round plan phase
    /// (DESIGN.md §12). Results are byte-identical at any value; `<= 1`
    /// (the default) runs the historical fully-serial round loop.
    pub engine_workers: usize,
}

impl PtConfig {
    /// The paper's standard configuration for `variant` at `workgroups`.
    pub fn new(variant: Variant, workgroups: usize) -> Self {
        PtConfig {
            variant,
            workgroups,
            chunk: CHUNK,
            capacity_factor: 2.0,
            cpu_collab_groups: 0,
            max_rounds: 50_000_000,
            audit: true,
            engine_workers: 1,
        }
    }

    /// [`PtConfig::new`] with the capacity factor a workload asks for.
    pub fn for_workload<W: PtWorkload>(workload: &W, variant: Variant, workgroups: usize) -> Self {
        let mut config = Self::new(variant, workgroups);
        config.capacity_factor = workload.default_capacity_factor();
        config
    }
}

/// Sizes the scheduler queue for `n` vertices at `factor`. The queue is
/// non-wrapping, so the capacity bounds *lifetime* enqueues, and at
/// giant scale `n * factor` can exceed the `u32` index space — the
/// product is therefore computed in `f64` (whose cast to `usize`
/// saturates rather than wraps) and clamped into `[64, u32::MAX]`.
/// Every queue-capacity computation in this crate goes through here so
/// the overflow audit lives in exactly one place.
pub fn queue_capacity(n: usize, factor: f64) -> u32 {
    ((n as f64 * factor) as usize)
        .max(64)
        .min(u32::MAX as usize) as u32
}

/// The scheduler-queue allocation of one launch: a recycled-segment
/// arena for segmented variants, one bounded ring for everything else.
/// Replaces the former pair of `Option`s whose exactly-one-is-`Some`
/// invariant leaned on an `expect` inside the launch closure — the enum
/// makes the invariant structural, so no fallible unwrap survives on the
/// launch path.
#[derive(Clone, Copy, Debug)]
pub(crate) enum LaunchLayout {
    /// Segmented arena (queue-full statically unreachable).
    Segmented(SegmentedLayout),
    /// One bounded non-wrapping ring.
    Bounded(QueueLayout),
}

impl LaunchLayout {
    /// Allocates the queue for `variant` at `capacity` and seeds it with
    /// the initial frontier.
    pub(crate) fn setup(
        mem: &mut DeviceMemory,
        variant: Variant,
        capacity: u32,
        seeds: &[u32],
    ) -> Self {
        if variant.is_segmented() {
            let layout = SegmentedLayout::for_capacity(mem, "workqueue", capacity);
            layout.host_seed(mem, seeds);
            LaunchLayout::Segmented(layout)
        } else {
            let layout = QueueLayout::setup(mem, "workqueue", capacity);
            layout.host_seed(mem, seeds);
            LaunchLayout::Bounded(layout)
        }
    }

    /// Builds the wave-facing queue for a kernel instance.
    pub(crate) fn make_queue(self, variant: Variant) -> Box<dyn WaveQueue> {
        match self {
            LaunchLayout::Segmented(seg) => Box::new(SegmentedWaveQueue::new(seg)),
            LaunchLayout::Bounded(bounded) => make_wave_queue(variant, bounded),
        }
    }
}

/// Host wall-clock seconds per runner phase. Diagnostics only: host wall
/// time is nondeterministic and never enters a golden table or any
/// simulated quantity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseWalls {
    /// Device-buffer allocation, graph upload, and queue seeding.
    pub setup_seconds: f64,
    /// Simulated-engine execution (the persistent-kernel launch).
    pub sim_seconds: f64,
    /// Value readback and reached-counting.
    pub readback_seconds: f64,
}

impl PhaseWalls {
    /// Sum of all phases.
    pub fn total_seconds(&self) -> f64 {
        self.setup_seconds + self.sim_seconds + self.readback_seconds
    }

    /// Accumulates another run's phase walls (multi-launch drivers).
    pub fn merge(&mut self, other: &PhaseWalls) {
        self.setup_seconds += other.setup_seconds;
        self.sim_seconds += other.sim_seconds;
        self.readback_seconds += other.readback_seconds;
    }
}

/// Result of a completed persistent-thread run.
#[derive(Clone, Debug)]
pub struct Run {
    /// Simulated kernel time in seconds.
    pub seconds: f64,
    /// Simulator counters (atomics, CAS failures, retries, rounds, …).
    pub metrics: Metrics,
    /// Final per-vertex values: exact BFS levels, SSSP distances,
    /// component labels, or PR-delta contributions.
    pub values: Vec<u32>,
    /// Vertices reached (workload-defined; see [`PtWorkload::reached`]).
    pub reached: usize,
    /// Final cycle count of every compute unit (regression goldens pin
    /// these to prove engine fast paths are cycle-exact per CU, not just
    /// in aggregate).
    pub per_cu_cycles: Vec<u64>,
    /// Recovery log: every abort the run survived (capacity regrows
    /// here; injected faults and watchdog trips under
    /// [`crate::recovery::run_recoverable`]). Empty `attempts` for a
    /// first-try success.
    pub recovery: RecoveryLog,
    /// Host-side engine execution profile (arena recycling, park replay,
    /// table footprints). Never part of any golden: performance work may
    /// change these freely without perturbing simulated quantities.
    pub profile: Profile,
    /// Host wall time per runner phase (same caveat as `profile`).
    pub phases: PhaseWalls,
}

/// Runs `workload` under the persistent-thread model over `graph` on
/// `gpu`, applying the paper's queue-full recovery: "If more space can
/// be allocated, the user can retry the kernel with a larger queue." The
/// capacity doubles on each queue-full abort, up to 16× the configured
/// factor.
///
/// ```
/// use pt_bfs::workload::ConnectedComponents;
/// use pt_bfs::{run_workload, PtConfig};
/// use gpu_queue::Variant;
/// use ptq_graph::gen::synthetic_tree;
/// use simt::GpuConfig;
///
/// let graph = synthetic_tree(300, 4);
/// let cc = ConnectedComponents;
/// let config = PtConfig::for_workload(&cc, Variant::RfAn, 2);
/// let run = run_workload(&GpuConfig::test_tiny(), &graph, &cc, &config).unwrap();
/// assert_eq!(run.metrics.total_retries(), 0); // retry-free
/// ```
///
/// # Errors
/// Propagates simulator faults (round-limit overruns, or queue-full even
/// at the maximum capacity).
///
/// # Panics
/// Panics if the workload's seed vertices are out of range.
pub fn run_workload<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    config: &PtConfig,
) -> Result<Run, SimError> {
    if config.variant.is_segmented() {
        // No queue-full condition exists to recover from: overflow is a
        // segment append, so the capacity-regrow loop disappears and the
        // recovery log records a clean single-attempt run.
        let mut run = run_workload_once(gpu, graph, workload, config)?;
        run.recovery = RecoveryLog {
            epochs: 1,
            rounds_committed: run.metrics.rounds,
            final_capacity_factor: config.capacity_factor,
            ..RecoveryLog::default()
        };
        return Ok(run);
    }
    let mut factor = config.capacity_factor;
    let mut log = RecoveryLog::default();
    loop {
        let mut attempt = config.clone();
        attempt.capacity_factor = factor;
        match run_workload_once(gpu, graph, workload, &attempt) {
            Err(SimError::KernelAbort { reason, round })
                if reason.is_queue_full() && factor < 16.0 * config.capacity_factor =>
            {
                log.attempts.push(RecoveryAttempt {
                    epoch: 0,
                    attempt: log.attempts.len() as u32 + 1,
                    reason,
                    rounds_lost: round,
                    backoff_cycles: 0,
                    capacity_factor: factor,
                });
                log.rounds_lost += round;
                factor *= 2.0;
            }
            Ok(mut run) => {
                log.epochs = 1;
                log.rounds_committed = run.metrics.rounds;
                if !log.attempts.is_empty() {
                    log.rounds_replayed = run.metrics.rounds;
                }
                log.final_capacity_factor = factor;
                run.recovery = log;
                return Ok(run);
            }
            other => return other,
        }
    }
}

/// Runs a persistent-thread BFS over `graph` from `source` on `gpu` —
/// [`run_workload`] instantiated with [`Bfs`].
///
/// ```
/// use pt_bfs::{run_bfs, PtConfig};
/// use gpu_queue::Variant;
/// use ptq_graph::gen::synthetic_tree;
/// use simt::GpuConfig;
///
/// let graph = synthetic_tree(500, 4);
/// let run = run_bfs(&GpuConfig::test_tiny(), &graph, 0,
///                   &PtConfig::new(Variant::RfAn, 2)).unwrap();
/// assert_eq!(run.reached, 500);
/// assert_eq!(run.metrics.total_retries(), 0); // retry-free
/// ```
///
/// # Errors
/// Propagates simulator faults (round-limit overruns, or queue-full even
/// at the maximum capacity).
///
/// # Panics
/// Panics if `source` is out of range.
pub fn run_bfs(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    config: &PtConfig,
) -> Result<Run, SimError> {
    run_workload(gpu, graph, &Bfs::new(source), config)
}

/// Runs several independent workload instances *co-resident* on one
/// simulated device: each entry gets its own kernel grid, scheduler
/// queue, and device buffers (namespaced per launch), and the engine
/// interleaves their waves on the shared compute units under the same
/// deterministic round loop a solo run uses. Each returned [`Run`] is
/// the per-launch view: its own metrics, values, and makespan (the
/// cycle its last wave retired), so per-query latency under contention
/// falls straight out.
///
/// Contention is modeled, isolation is preserved: launches share CU
/// issue slots, the bandwidth floor, and hot-word serialization, but
/// never touch each other's state — values for each entry are
/// byte-identical to that entry's solo run (confluence; see
/// DESIGN.md §15).
///
/// Single attempt, no capacity-regrow loop: each entry's queue is sized
/// from the larger of `config.capacity_factor` and the workload's own
/// default factor (use segmented variants to make queue-full
/// structurally impossible — the serving layer does).
///
/// # Errors
/// Propagates simulator faults; queue-full aborts the whole co-resident
/// launch group.
///
/// # Panics
/// Panics if `entries` is empty, if any workload's seeds are out of
/// range, or if `config.cpu_collab_groups != 0` (CPU collaboration is a
/// solo-baseline feature).
pub fn run_workloads_coresident<W: PtWorkload>(
    gpu: &GpuConfig,
    entries: &[(&Csr, W)],
    config: &PtConfig,
) -> Result<Vec<Run>, SimError> {
    assert!(!entries.is_empty(), "co-resident launch group is non-empty");
    assert_eq!(
        config.cpu_collab_groups, 0,
        "CPU collaboration is a solo-baseline feature"
    );

    let setup_start = Instant::now();
    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    let mut per_launch = Vec::with_capacity(entries.len());
    for (l, (graph, workload)) in entries.iter().enumerate() {
        // Namespace this launch's allocations so co-resident launches
        // can each bind their own "nodes"/"edges"/aux buffers in the
        // one shared arena. Lookups are unprefixed: handles are taken
        // here, inside the launch's namespace.
        mem.set_alloc_prefix(&format!("q{l}:"));
        let n = graph.num_vertices();
        let seeds = workload.seeds(n);
        let nodes = mem.alloc_init("nodes", graph.row_offsets());
        let edges = mem.alloc_init("edges", graph.adjacency());
        let mut bound = workload.clone();
        bound.bind(mem);
        let values = mem.alloc_init(bound.value_buffer_name(), &bound.initial_values(n));
        let inqueue = mem.alloc("inqueue", bound.state_len(n));
        for &seed in &seeds {
            mem.write_u32(inqueue, seed as usize, 1);
        }
        let pending = mem.alloc("pending", 1);
        mem.write_u32(pending, 0, seeds.len() as u32);
        let capacity = queue_capacity(
            n,
            config.capacity_factor.max(bound.default_capacity_factor()),
        );
        let layout = LaunchLayout::setup(mem, config.variant, capacity, &seeds);
        let buffers = WorkBuffers {
            nodes,
            edges,
            values,
            inqueue,
            pending,
        };
        per_launch.push((layout, bound, buffers));
    }
    mem.set_alloc_prefix("");

    let mut template = Launch::workgroups(config.workgroups)
        .with_max_rounds(config.max_rounds)
        .with_engine_workers(config.engine_workers);
    if config.audit {
        template = template.with_audit();
    }
    let variant = config.variant;
    let chunk = config.chunk;
    let wgs = vec![config.workgroups; entries.len()];
    let setup_seconds = setup_start.elapsed().as_secs_f64();

    let sim_start = Instant::now();
    let reports = engine.run_coresident(template, &wgs, |l, info| {
        let (layout, bound, buffers) = &per_launch[l];
        PtKernel::with_chunk(
            layout.make_queue(variant),
            bound.clone(),
            *buffers,
            info.wave_size,
            chunk,
        )
    })?;
    let sim_seconds = sim_start.elapsed().as_secs_f64();

    let readback_start = Instant::now();
    let mut runs = Vec::with_capacity(entries.len());
    for (report, (_, bound, buffers)) in reports.into_iter().zip(&per_launch) {
        if config.audit {
            enforce_retry_free(variant, &report.metrics)?;
        }
        let values = engine.memory().read_slice(buffers.values).to_vec();
        let reached = bound.reached(&values);
        runs.push(Run {
            seconds: report.seconds,
            metrics: report.metrics,
            values,
            reached,
            per_cu_cycles: report.per_cu_cycles,
            recovery: RecoveryLog {
                epochs: 1,
                rounds_committed: report.metrics.rounds,
                final_capacity_factor: config.capacity_factor,
                ..RecoveryLog::default()
            },
            profile: report.profile,
            // Setup and readback walls are shared across the group;
            // attributed to every member (diagnostics only, never a
            // golden quantity).
            phases: PhaseWalls {
                setup_seconds,
                sim_seconds,
                readback_seconds: readback_start.elapsed().as_secs_f64(),
            },
        });
    }
    Ok(runs)
}

/// Run-level enforcement of the paper's central claim: a successful run
/// scheduled by a retry-free variant must report zero CAS attempts, zero
/// CAS failures, and zero queue-empty retries. Complements the
/// per-wavefront scopes (`simt::audit`) that already validated each
/// queue op inside the run.
pub(crate) fn enforce_retry_free(variant: Variant, metrics: &Metrics) -> Result<(), SimError> {
    if !variant.is_retry_free() {
        return Ok(());
    }
    simt::audit::check_retry_free(metrics)
        .map_err(|msg| SimError::AuditViolation(format!("{} run: {msg}", variant.label())))
}

fn run_workload_once<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    config: &PtConfig,
) -> Result<Run, SimError> {
    let n = graph.num_vertices();
    let seeds = workload.seeds(n);

    let setup_start = Instant::now();
    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    let mut workload = workload.clone();
    workload.bind(mem);
    // Per-token state spans `state_len` slots (`n` solo, `k * n` for a
    // k-member batch); seeds are tokens, so they index this state
    // directly.
    let values = mem.alloc_init(workload.value_buffer_name(), &workload.initial_values(n));
    let inqueue = mem.alloc("inqueue", workload.state_len(n));
    for &seed in &seeds {
        mem.write_u32(inqueue, seed as usize, 1);
    }
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, seeds.len() as u32);

    let capacity = queue_capacity(n, config.capacity_factor);
    // Segmented variants swap the one bounded ring for a recycled-segment
    // arena sized from the same nominal capacity; everything else about
    // the launch is identical.
    let layout = LaunchLayout::setup(mem, config.variant, capacity, &seeds);

    let buffers = WorkBuffers {
        nodes: mem.buffer("nodes"),
        edges: mem.buffer("edges"),
        values,
        inqueue,
        pending,
    };

    let mut launch = Launch::workgroups(config.workgroups)
        .with_cpu_collab(config.cpu_collab_groups)
        .with_max_rounds(config.max_rounds)
        .with_engine_workers(config.engine_workers);
    if config.audit {
        launch = launch.with_audit();
    }
    let variant = config.variant;
    let chunk = config.chunk;
    let setup_seconds = setup_start.elapsed().as_secs_f64();

    let sim_start = Instant::now();
    let report = engine.run(launch, |info| {
        PtKernel::with_chunk(
            layout.make_queue(variant),
            workload.clone(),
            buffers,
            info.wave_size,
            chunk,
        )
    })?;
    if config.audit {
        enforce_retry_free(variant, &report.metrics)?;
    }
    let sim_seconds = sim_start.elapsed().as_secs_f64();

    let readback_start = Instant::now();
    let values = engine.memory().read_slice(buffers.values).to_vec();
    let reached = workload.reached(&values);
    let readback_seconds = readback_start.elapsed().as_secs_f64();
    Ok(Run {
        seconds: report.seconds,
        metrics: report.metrics,
        values,
        reached,
        per_cu_cycles: report.per_cu_cycles,
        recovery: RecoveryLog::default(),
        profile: report.profile,
        phases: PhaseWalls {
            setup_seconds,
            sim_seconds,
            readback_seconds,
        },
    })
}

/// Runs `workload` scheduled by the *distributed, work-stealing* variant
/// of the retry-free queue (one queue per compute unit; see
/// [`gpu_queue::device::StealingWaveQueue`]). An ablation against the
/// paper's single shared queue: less hot-word pressure, more load
/// imbalance.
///
/// # Errors
/// Propagates simulator faults; queue-full is recovered by doubling the
/// per-CU capacity, as in [`run_workload`].
pub fn run_workload_stealing<W: PtWorkload>(
    gpu: &GpuConfig,
    graph: &Csr,
    workload: &W,
    workgroups: usize,
) -> Result<Run, SimError> {
    use gpu_queue::device::{StealingLayout, StealingWaveQueue};

    let n = graph.num_vertices();
    let seeds = workload.seeds(n);
    let mut factor = workload.default_capacity_factor();
    let mut log = RecoveryLog::default();
    loop {
        let setup_start = Instant::now();
        let mut engine = Engine::new(gpu.clone());
        let mem = engine.memory_mut();
        mem.alloc_init("nodes", graph.row_offsets());
        mem.alloc_init("edges", graph.adjacency());
        let mut bound = workload.clone();
        bound.bind(mem);
        let values = mem.alloc_init(bound.value_buffer_name(), &bound.initial_values(n));
        let inqueue = mem.alloc("inqueue", bound.state_len(n));
        for &seed in &seeds {
            mem.write_u32(inqueue, seed as usize, 1);
        }
        let pending = mem.alloc("pending", 1);
        mem.write_u32(pending, 0, seeds.len() as u32);
        // A hub can land an outsized share on one CU: per-CU capacity is
        // provisioned at `factor * n` (capped well below the shared
        // queue's limit — `num_cus` arrays of this size coexist), doubled
        // on queue-full.
        let capacity = queue_capacity(n, factor).min(1 << 24);
        let layout = StealingLayout::setup(mem, "dqueue", gpu.num_cus, capacity);
        layout.host_seed(mem, &seeds);
        let buffers = WorkBuffers {
            nodes: mem.buffer("nodes"),
            edges: mem.buffer("edges"),
            values,
            inqueue,
            pending,
        };
        let setup_seconds = setup_start.elapsed().as_secs_f64();
        let sim_start = Instant::now();
        let result = engine.run(Launch::workgroups(workgroups).with_audit(), |info| {
            PtKernel::new(
                Box::new(StealingWaveQueue::new(&layout, info.cu)),
                bound.clone(),
                buffers,
                info.wave_size,
            )
        });
        match result {
            Err(SimError::KernelAbort { reason, round })
                if reason.is_queue_full() && factor < 16.0 * workload.default_capacity_factor() =>
            {
                log.attempts.push(RecoveryAttempt {
                    epoch: 0,
                    attempt: log.attempts.len() as u32 + 1,
                    reason,
                    rounds_lost: round,
                    backoff_cycles: 0,
                    capacity_factor: factor,
                });
                log.rounds_lost += round;
                factor *= 2.0;
            }
            Err(e) => return Err(e),
            Ok(report) => {
                // Locally retry-free: never a CAS. (Failed steal scans DO
                // count queue-empty retries — the documented trade-off —
                // so only the CAS half of the claim is enforced here.)
                if report.metrics.cas_attempts != 0 || report.metrics.cas_failures != 0 {
                    return Err(SimError::AuditViolation(format!(
                        "stealing run: {} CAS attempts, {} failures (expected none)",
                        report.metrics.cas_attempts, report.metrics.cas_failures
                    )));
                }
                let sim_seconds = sim_start.elapsed().as_secs_f64();
                let readback_start = Instant::now();
                let values = engine.memory().read_slice(buffers.values).to_vec();
                let reached = bound.reached(&values);
                let readback_seconds = readback_start.elapsed().as_secs_f64();
                log.epochs = 1;
                log.rounds_committed = report.metrics.rounds;
                if !log.attempts.is_empty() {
                    log.rounds_replayed = report.metrics.rounds;
                }
                log.final_capacity_factor = factor;
                return Ok(Run {
                    seconds: report.seconds,
                    metrics: report.metrics,
                    values,
                    reached,
                    per_cu_cycles: report.per_cu_cycles,
                    recovery: log,
                    profile: report.profile,
                    phases: PhaseWalls {
                        setup_seconds,
                        sim_seconds,
                        readback_seconds,
                    },
                });
            }
        }
    }
}

/// [`run_workload_stealing`] instantiated with [`Bfs`].
///
/// # Errors
/// Propagates simulator faults; queue-full is recovered by doubling the
/// per-CU capacity, as in [`run_bfs`].
pub fn run_bfs_stealing(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    workgroups: usize,
) -> Result<Run, SimError> {
    run_workload_stealing(gpu, graph, &Bfs::new(source), workgroups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ConnectedComponents, PrDelta};
    use ptq_graph::gen::{
        erdos_renyi, roadmap, social, synthetic_tree, RoadmapParams, SocialParams,
    };
    use ptq_graph::{bfs_levels, validate_levels};
    use simt::GpuConfig;

    fn check_all_variants(graph: &Csr, source: u32, wgs: usize) {
        let reference = bfs_levels(graph, source);
        for variant in Variant::ALL {
            let run = run_bfs(
                &GpuConfig::test_tiny(),
                graph,
                source,
                &PtConfig::new(variant, wgs),
            )
            .unwrap_or_else(|e| panic!("{variant:?} failed: {e}"));
            assert_eq!(
                run.reached, reference.reached,
                "{variant:?} reached mismatch"
            );
            validate_levels(graph, source, &run.values).unwrap_or_else(|(v, want, got)| {
                panic!("{variant:?}: vertex {v} expected level {want}, got {got}")
            });
        }
    }

    #[test]
    fn tree_bfs_exact_for_all_variants() {
        let g = synthetic_tree(400, 4);
        check_all_variants(&g, 0, 3);
    }

    #[test]
    fn roadmap_bfs_exact_for_all_variants() {
        let g = roadmap(RoadmapParams {
            rows: 16,
            cols: 16,
            keep_prob: 0.4,
            seed: 3,
        });
        check_all_variants(&g, 0, 2);
    }

    #[test]
    fn social_bfs_exact_for_all_variants() {
        let g = social(SocialParams {
            vertices: 600,
            avg_degree: 8.0,
            alpha: 1.8,
            max_degree: 100,
            seed: 5,
        });
        check_all_variants(&g, 0, 4);
    }

    #[test]
    fn random_multigraph_with_self_loops() {
        let g = erdos_renyi(300, 1200, 9);
        check_all_variants(&g, 7, 2);
    }

    #[test]
    fn single_vertex_graph() {
        let g = synthetic_tree(1, 4);
        check_all_variants(&g, 0, 1);
    }

    #[test]
    fn disconnected_graph_terminates() {
        // Source's component has 2 vertices; 98 unreachable.
        let mut b = ptq_graph::CsrBuilder::new(100);
        b.add_undirected_edge(0, 1);
        for i in 2..99 {
            b.add_undirected_edge(i, i + 1);
        }
        let g = b.build();
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &PtConfig::new(Variant::RfAn, 2),
        )
        .unwrap();
        assert_eq!(run.reached, 2);
    }

    #[test]
    fn rfan_run_reports_zero_retries() {
        let g = synthetic_tree(500, 4);
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &PtConfig::new(Variant::RfAn, 4),
        )
        .unwrap();
        assert_eq!(run.metrics.cas_failures, 0);
        assert_eq!(run.metrics.queue_empty_retries, 0);
    }

    #[test]
    fn retry_free_variants_pin_zero_retry_counters() {
        // The central claim, pinned as a regression over full audited
        // BFS runs: both retry-free variants issue NO CAS at all (not
        // merely zero failures) and never raise the queue-empty
        // exception. The AuditMode scopes already assert this per
        // wavefront op; this pins the run-level aggregate.
        let g = social(SocialParams {
            vertices: 800,
            avg_degree: 8.0,
            alpha: 1.8,
            max_degree: 120,
            seed: 11,
        });
        for variant in [Variant::RfAn, Variant::RfOnly] {
            let run = run_bfs(&GpuConfig::test_tiny(), &g, 0, &PtConfig::new(variant, 4))
                .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            assert_eq!(run.metrics.total_retries(), 0, "{variant:?}");
            assert_eq!(run.metrics.cas_attempts, 0, "{variant:?}");
            assert_eq!(run.metrics.queue_empty_retries, 0, "{variant:?}");
        }
    }

    #[test]
    fn audit_mode_never_perturbs_results_or_metrics() {
        // Auditing is pure bookkeeping: byte-identical values and metrics
        // with it on or off.
        let g = synthetic_tree(600, 4);
        for variant in Variant::ALL {
            let audited =
                run_bfs(&GpuConfig::test_tiny(), &g, 0, &PtConfig::new(variant, 3)).unwrap();
            let mut plain_cfg = PtConfig::new(variant, 3);
            plain_cfg.audit = false;
            let plain = run_bfs(&GpuConfig::test_tiny(), &g, 0, &plain_cfg).unwrap();
            assert_eq!(audited.metrics, plain.metrics, "{variant:?}");
            assert_eq!(audited.values, plain.values, "{variant:?}");
            assert_eq!(audited.seconds, plain.seconds, "{variant:?}");
        }
    }

    #[test]
    fn base_run_reports_retry_overhead() {
        let g = synthetic_tree(500, 4);
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &PtConfig::new(Variant::Base, 4),
        )
        .unwrap();
        assert!(run.metrics.total_retries() > 0);
    }

    #[test]
    fn variant_ordering_on_saturating_workload() {
        // The headline result at miniature scale: RF/AN strictly fastest.
        let g = synthetic_tree(2_000, 4);
        let mut secs = std::collections::HashMap::new();
        for v in Variant::ALL {
            let run = run_bfs(&GpuConfig::test_tiny(), &g, 0, &PtConfig::new(v, 4)).unwrap();
            secs.insert(v, run.seconds);
        }
        assert!(secs[&Variant::RfAn] < secs[&Variant::An]);
        assert!(secs[&Variant::RfAn] < secs[&Variant::Base]);
    }

    #[test]
    fn deterministic_runs() {
        let g = synthetic_tree(300, 4);
        let cfg = PtConfig::new(Variant::An, 3);
        let a = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg).unwrap();
        let b = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn stealing_scheduler_is_exact_on_all_dataset_shapes() {
        for g in [
            synthetic_tree(600, 4),
            roadmap(RoadmapParams {
                rows: 14,
                cols: 14,
                keep_prob: 0.4,
                seed: 6,
            }),
            erdos_renyi(400, 1600, 3),
        ] {
            let run = run_bfs_stealing(&GpuConfig::test_tiny(), &g, 0, 4).unwrap();
            validate_levels(&g, 0, &run.values).unwrap_or_else(|(v, want, got)| {
                panic!("stealing: vertex {v} level {got} != {want}")
            });
        }
    }

    #[test]
    fn stealing_is_retry_free_locally() {
        let g = synthetic_tree(2_000, 4);
        let run = run_bfs_stealing(&GpuConfig::test_tiny(), &g, 0, 4).unwrap();
        assert_eq!(run.metrics.cas_attempts, 0, "stealing queues never CAS");
        // Failed steal scans count as queue-empty retries, which is the
        // documented trade-off (may be zero on a saturating tree).
    }

    #[test]
    fn cpu_collab_groups_participate() {
        let g = synthetic_tree(300, 4);
        let mut cfg = PtConfig::new(Variant::Base, 1);
        cfg.cpu_collab_groups = 2;
        let run = run_bfs(&GpuConfig::test_tiny(), &g, 0, &cfg).unwrap();
        assert_eq!(run.reached, 300);
    }

    #[test]
    fn connected_components_exact_on_disconnected_graph() {
        let mut b = ptq_graph::CsrBuilder::new(120);
        for i in 0..39 {
            b.add_undirected_edge(i, i + 1); // chain component {0..=39}
        }
        for i in 50..79 {
            b.add_undirected_edge(i, i + 1); // chain component {50..=79}
        }
        let g = b.build(); // plus 41 singletons
        let cc = ConnectedComponents;
        for variant in Variant::ALL {
            let config = PtConfig::for_workload(&cc, variant, 3);
            let run = run_workload(&GpuConfig::test_tiny(), &g, &cc, &config)
                .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            cc.validate(&g, &run.values)
                .unwrap_or_else(|(v, want, got)| {
                    panic!("{variant:?}: vertex {v} label {got} != {want}")
                });
            assert_eq!(run.reached, 120, "every vertex carries a label");
        }
    }

    #[test]
    fn prdelta_exact_and_thresholded() {
        let g = social(SocialParams {
            vertices: 500,
            avg_degree: 6.0,
            alpha: 1.9,
            max_degree: 80,
            seed: 21,
        });
        let pr = PrDelta::new(0);
        for variant in Variant::ALL {
            let config = PtConfig::for_workload(&pr, variant, 3);
            let run = run_workload(&GpuConfig::test_tiny(), &g, &pr, &config)
                .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            pr.validate(&g, &run.values)
                .unwrap_or_else(|(v, want, got)| {
                    panic!("{variant:?}: vertex {v} contribution {got} != {want}")
                });
            assert!(run.reached >= 1, "{variant:?}: the seed itself counts");
        }
    }

    #[test]
    fn segmented_variant_bfs_exact_and_retry_free() {
        let g = social(SocialParams {
            vertices: 600,
            avg_degree: 8.0,
            alpha: 1.8,
            seed: 5,
            max_degree: 100,
        });
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &PtConfig::new(Variant::SegRfAn, 4),
        )
        .unwrap();
        validate_levels(&g, 0, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("vertex {v} level {got} != {want}"));
        assert_eq!(run.metrics.cas_attempts, 0);
        assert_eq!(run.metrics.total_retries(), 0);
        assert!(run.recovery.attempts.is_empty());
    }

    #[test]
    fn segmented_absorbs_what_bounded_queues_regrow_from() {
        // A capacity factor far below lifetime enqueues: the bounded
        // RF/AN queue needs capacity-regrow attempts; the segmented
        // variant recycles drained segments through its small arena —
        // zero recovery attempts, same exact levels. A chain keeps the
        // *live* frontier tiny while the *lifetime* token count (the
        // quantity that overflows bounded queues) spans every vertex —
        // exactly the regime the segmented design exists for.
        let mut b = ptq_graph::CsrBuilder::new(2_000);
        for i in 0..1_999 {
            b.add_undirected_edge(i, i + 1);
        }
        let g = b.build();
        let mut seg_cfg = PtConfig::new(Variant::SegRfAn, 3);
        seg_cfg.capacity_factor = 0.05;
        let seg = run_bfs(&GpuConfig::test_tiny(), &g, 0, &seg_cfg).unwrap();
        assert!(
            seg.recovery.attempts.is_empty(),
            "segmented runs never see queue-full: {:?}",
            seg.recovery.attempts
        );
        validate_levels(&g, 0, &seg.values)
            .unwrap_or_else(|(v, want, got)| panic!("vertex {v} level {got} != {want}"));

        // The bounded run starts undersized too, but high enough that
        // the paper's 16x regrow ceiling can still reach the lifetime
        // token count (0.05 would abort even after regrowing).
        let mut bounded_cfg = PtConfig::new(Variant::RfAn, 3);
        bounded_cfg.capacity_factor = 0.2;
        let bounded = run_bfs(&GpuConfig::test_tiny(), &g, 0, &bounded_cfg).unwrap();
        assert!(
            !bounded.recovery.attempts.is_empty(),
            "undersized bounded run should have regrown"
        );
        assert_eq!(seg.values, bounded.values, "same fixed point either way");
    }

    #[test]
    fn segmented_workloads_match_their_sequential_fixed_points() {
        let g = erdos_renyi(400, 1600, 3);
        let cc = ConnectedComponents;
        let config = PtConfig::for_workload(&cc, Variant::SegRfAn, 3);
        let run = run_workload(&GpuConfig::test_tiny(), &g, &cc, &config).unwrap();
        cc.validate(&g, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("cc: vertex {v} label {got} != {want}"));
        let pr = PrDelta::new(0);
        let config = PtConfig::for_workload(&pr, Variant::SegRfAn, 3);
        let run = run_workload(&GpuConfig::test_tiny(), &g, &pr, &config).unwrap();
        pr.validate(&g, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("pr: vertex {v} contribution {got} != {want}"));
    }

    #[test]
    fn queue_capacity_saturates_at_the_u32_boundary() {
        // Floor, ordinary sizing, and exactness just below the boundary.
        assert_eq!(queue_capacity(0, 2.0), 64);
        assert_eq!(queue_capacity(10, 1.0), 64);
        assert_eq!(queue_capacity(1_000, 2.0), 2_000);
        assert_eq!(queue_capacity(1_000, 1.25), 1_250);
        let near = (u32::MAX - 1) as usize;
        assert_eq!(queue_capacity(near, 1.0), u32::MAX - 1);
        // Products beyond the index space saturate instead of wrapping.
        assert_eq!(queue_capacity(u32::MAX as usize, 2.0), u32::MAX);
        assert_eq!(queue_capacity(usize::MAX, 1e9), u32::MAX);
    }

    #[test]
    fn runs_surface_profile_and_phase_walls() {
        let g = synthetic_tree(400, 4);
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &PtConfig::new(Variant::RfAn, 2),
        )
        .unwrap();
        assert!(run.profile.arena_words > 0);
        assert!(run.profile.meta_bytes > 0);
        assert!(run.phases.sim_seconds > 0.0);
        assert!(run.phases.total_seconds() >= run.phases.sim_seconds);

        let stealing = run_bfs_stealing(&GpuConfig::test_tiny(), &g, 0, 2).unwrap();
        assert!(stealing.profile.arena_words > 0);
        assert!(stealing.phases.sim_seconds > 0.0);
    }

    #[test]
    fn new_workloads_on_stealing_scheduler() {
        let g = synthetic_tree(400, 4);
        let cc = ConnectedComponents;
        let run = run_workload_stealing(&GpuConfig::test_tiny(), &g, &cc, 4).unwrap();
        cc.validate(&g, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("cc stealing: {v}: {got} != {want}"));
        let pr = PrDelta::new(0);
        let run = run_workload_stealing(&GpuConfig::test_tiny(), &g, &pr, 4).unwrap();
        pr.validate(&g, &run.values)
            .unwrap_or_else(|(v, want, got)| panic!("pr stealing: {v}: {got} != {want}"));
    }

    #[test]
    fn coresident_solo_group_matches_run_workload() {
        // One-launch co-residency must be the solo path, byte for byte.
        let g = synthetic_tree(400, 4);
        let config = PtConfig::new(Variant::RfAn, 3);
        let solo = run_workload(&GpuConfig::test_tiny(), &g, &Bfs::new(0), &config).unwrap();
        let mut group =
            run_workloads_coresident(&GpuConfig::test_tiny(), &[(&g, Bfs::new(0))], &config)
                .unwrap();
        let run = group.pop().unwrap();
        assert_eq!(run.seconds, solo.seconds);
        assert_eq!(run.metrics, solo.metrics);
        assert_eq!(run.values, solo.values);
        assert_eq!(run.per_cu_cycles, solo.per_cu_cycles);
    }

    #[test]
    fn coresident_pair_is_isolated_but_contended() {
        // Two queries over two different graphs share the device: each
        // still produces exactly its solo value array (isolation), and
        // neither finishes earlier than it would alone (contention).
        let g1 = synthetic_tree(300, 4);
        let g2 = social(SocialParams {
            vertices: 400,
            avg_degree: 6.0,
            alpha: 1.8,
            max_degree: 80,
            seed: 11,
        });
        let config = PtConfig::new(Variant::RfAn, 2);
        let gpu = GpuConfig::test_tiny();
        let runs =
            run_workloads_coresident(&gpu, &[(&g1, Bfs::new(0)), (&g2, Bfs::new(5))], &config)
                .unwrap();
        let solo1 = run_workload(&gpu, &g1, &Bfs::new(0), &config).unwrap();
        let solo2 = run_workload(&gpu, &g2, &Bfs::new(5), &config).unwrap();
        assert_eq!(runs[0].values, solo1.values);
        assert_eq!(runs[1].values, solo2.values);
        assert_eq!(runs[0].reached, solo1.reached);
        assert_eq!(runs[1].reached, solo2.reached);
        assert!(runs[0].seconds >= solo1.seconds);
        assert!(runs[1].seconds >= solo2.seconds);
        // Retry-free audits hold per launch under co-residency.
        assert_eq!(runs[0].metrics.total_retries(), 0);
        assert_eq!(runs[1].metrics.total_retries(), 0);
    }

    #[test]
    fn coresident_group_is_deterministic_across_engine_workers() {
        let g1 = synthetic_tree(250, 3);
        let g2 = synthetic_tree(350, 5);
        let mut baseline = None;
        for workers in [1, 4] {
            let mut config = PtConfig::new(Variant::SegRfAn, 2);
            config.engine_workers = workers;
            let runs = run_workloads_coresident(
                &GpuConfig::test_tiny(),
                &[(&g1, Bfs::new(0)), (&g2, Bfs::new(1))],
                &config,
            )
            .unwrap();
            let key: Vec<_> = runs
                .iter()
                .map(|r| (r.seconds.to_bits(), r.metrics, r.values.clone()))
                .collect();
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(b, &key, "engine_workers={workers} diverged"),
            }
        }
    }
}
