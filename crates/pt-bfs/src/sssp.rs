//! Second driver application: single-source shortest paths (SSSP).
//!
//! The paper positions its queue as a general persistent-thread task
//! scheduler, with BFS merely the evaluation driver. SSSP is the natural
//! next irregular workload: a label-correcting (Bellman-Ford worklist)
//! traversal where relaxing an edge may re-activate an already-settled
//! vertex. It stresses the queue harder than BFS — re-enqueues are the
//! norm, not a rare race — and still validates exactly (against
//! sequential Dijkstra).
//!
//! The kernel structure is identical to the BFS kernel (Algorithm 1 with
//! chunked uniform sub-tasks); only the claim operation changes: the cost
//! atomic-min carries a *distance* instead of a level.

use crate::kernel::CHUNK;
use crate::UNVISITED;
use gpu_queue::device::{make_wave_queue, LanePhase, QueueLayout, WaveQueue};
use gpu_queue::Variant;
use ptq_graph::Csr;
use simt::{Buffer, Engine, GpuConfig, Launch, Metrics, SimError, WaveCtx, WaveKernel, WaveStatus};

/// Device buffers for the SSSP kernel.
#[derive(Clone, Copy, Debug)]
struct SsspBuffers {
    nodes: Buffer,
    edges: Buffer,
    weights: Buffer,
    dist: Buffer,
    inqueue: Buffer,
    pending: Buffer,
}

#[derive(Clone, Copy, Debug)]
enum LaneWork {
    None,
    Node {
        dist: u32,
        next_edge: u32,
        end_edge: u32,
    },
}

/// One wavefront of the persistent SSSP kernel.
struct SsspKernel {
    queue: Box<dyn WaveQueue>,
    buffers: SsspBuffers,
    phases: Vec<LanePhase>,
    work: Vec<LaneWork>,
    outbox: Vec<u32>,
    completed: u32,
    chunk: u32,
}

impl WaveKernel for SsspKernel {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        let stalled = self.outbox.len() >= self.phases.len() * self.chunk as usize;
        if !stalled {
            for (phase, work) in self.phases.iter_mut().zip(&self.work) {
                if *phase == LanePhase::Idle && matches!(work, LaneWork::None) {
                    *phase = LanePhase::Hungry;
                }
            }
        }
        self.queue.acquire(ctx, &mut self.phases);

        for (phase, work) in self.phases.iter_mut().zip(self.work.iter_mut()) {
            if let LanePhase::Ready(vertex) = *phase {
                ctx.global_write_lane(self.buffers.inqueue, vertex as usize, 0);
                ctx.charge_coalesced_access(self.buffers.nodes, vertex as usize, 2);
                let start = ctx.peek(self.buffers.nodes, vertex as usize);
                let end = ctx.peek(self.buffers.nodes, vertex as usize + 1);
                let dist = ctx.global_read_lane(self.buffers.dist, vertex as usize);
                *work = LaneWork::Node {
                    dist,
                    next_edge: start,
                    end_edge: end,
                };
                *phase = LanePhase::Idle;
            }
        }

        if !stalled {
            for work in self.work.iter_mut() {
                if let LaneWork::Node {
                    dist,
                    next_edge,
                    end_edge,
                } = work
                {
                    let stop = (*next_edge + self.chunk).min(*end_edge);
                    let len = (stop - *next_edge) as usize;
                    // Adjacency and weights are parallel arrays: two
                    // coalesced chunk reads.
                    ctx.charge_coalesced_access(self.buffers.edges, *next_edge as usize, len);
                    ctx.charge_coalesced_access(self.buffers.weights, *next_edge as usize, len);
                    while *next_edge < stop {
                        let child = ctx.peek(self.buffers.edges, *next_edge as usize);
                        let weight = ctx.peek(self.buffers.weights, *next_edge as usize);
                        let candidate = dist.saturating_add(weight);
                        let old = ctx.atomic_min(self.buffers.dist, child as usize, candidate);
                        if old > candidate {
                            let was = ctx.atomic_exchange(self.buffers.inqueue, child as usize, 1);
                            if was == 0 {
                                self.outbox.push(child);
                            }
                        }
                        *next_edge += 1;
                    }
                    if *next_edge == *end_edge {
                        *work = LaneWork::None;
                        self.completed += 1;
                    }
                }
            }
        }

        if !self.outbox.is_empty() {
            let accepted = self.queue.enqueue(ctx, &self.outbox);
            if accepted > 0 {
                ctx.atomic_add(self.buffers.pending, 0, accepted as u32);
                self.outbox.drain(..accepted);
            }
        }
        if self.completed > 0 && self.outbox.is_empty() {
            ctx.atomic_sub(self.buffers.pending, 0, self.completed);
            self.completed = 0;
        }
        if ctx.global_read(self.buffers.pending, 0) == 0
            && self.outbox.is_empty()
            && self.completed == 0
        {
            WaveStatus::Done
        } else {
            WaveStatus::Active
        }
    }
}

/// Result of a completed SSSP run.
#[derive(Clone, Debug)]
pub struct SsspRun {
    /// Simulated kernel seconds.
    pub seconds: f64,
    /// Simulator counters.
    pub metrics: Metrics,
    /// Exact shortest distances.
    pub dist: Vec<u32>,
}

/// Runs persistent-thread SSSP over `(graph, weights)` from `source`.
/// Applies the same queue-full doubling recovery as the BFS runner.
///
/// # Errors
/// Propagates simulator faults.
///
/// # Panics
/// Panics on mismatched weight length or out-of-range source.
pub fn run_sssp(
    gpu: &GpuConfig,
    graph: &Csr,
    weights: &[u32],
    source: u32,
    variant: Variant,
    workgroups: usize,
) -> Result<SsspRun, SimError> {
    let mut factor = 4.0;
    loop {
        match run_sssp_once(gpu, graph, weights, source, variant, workgroups, factor) {
            Err(e) if e.is_queue_full() && factor < 64.0 => {
                factor *= 2.0;
            }
            other => return other,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sssp_once(
    gpu: &GpuConfig,
    graph: &Csr,
    weights: &[u32],
    source: u32,
    variant: Variant,
    workgroups: usize,
    capacity_factor: f64,
) -> Result<SsspRun, SimError> {
    let n = graph.num_vertices();
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    assert!((source as usize) < n, "source out of range");

    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    mem.alloc_init("weights", weights);
    let dist = mem.alloc("dist", n);
    mem.fill(dist, UNVISITED);
    mem.write_u32(dist, source as usize, 0);
    let inqueue = mem.alloc("inqueue", n);
    mem.write_u32(inqueue, source as usize, 1);
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, 1);
    let capacity = ((n as f64 * capacity_factor) as usize)
        .max(64)
        .min(u32::MAX as usize) as u32;
    let layout = QueueLayout::setup(mem, "workqueue", capacity);
    layout.host_seed(mem, &[source]);

    let buffers = SsspBuffers {
        nodes: mem.buffer("nodes"),
        edges: mem.buffer("edges"),
        weights: mem.buffer("weights"),
        dist,
        inqueue,
        pending,
    };
    let report = engine.run(Launch::workgroups(workgroups).with_audit(), |info| {
        SsspKernel {
            queue: make_wave_queue(variant, layout),
            buffers,
            phases: vec![LanePhase::Idle; info.wave_size],
            work: vec![LaneWork::None; info.wave_size],
            outbox: Vec::new(),
            completed: 0,
            chunk: CHUNK,
        }
    })?;
    crate::runner::enforce_retry_free(variant, &report.metrics)?;
    Ok(SsspRun {
        seconds: report.seconds,
        metrics: report.metrics,
        dist: engine.memory().read_slice(buffers.dist).to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_graph::gen::{erdos_renyi, roadmap, RoadmapParams};
    use ptq_graph::{random_weights, validate_distances};

    fn check_all_variants(graph: &Csr, weights: &[u32], source: u32, wgs: usize) {
        for variant in Variant::ALL {
            let run = run_sssp(
                &GpuConfig::test_tiny(),
                graph,
                weights,
                source,
                variant,
                wgs,
            )
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            validate_distances(graph, weights, source, &run.dist).unwrap_or_else(
                |(v, want, got)| panic!("{variant:?}: vertex {v} dist {got} != {want}"),
            );
        }
    }

    #[test]
    fn exact_distances_on_random_graph() {
        let g = erdos_renyi(300, 1500, 7);
        let w = random_weights(&g, 10, 7);
        check_all_variants(&g, &w, 0, 3);
    }

    #[test]
    fn exact_distances_on_roadmap() {
        let g = roadmap(RoadmapParams {
            rows: 15,
            cols: 15,
            keep_prob: 0.5,
            seed: 4,
        });
        let w = random_weights(&g, 100, 4);
        check_all_variants(&g, &w, 0, 2);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g = erdos_renyi(200, 800, 9);
        let w = vec![1u32; g.num_edges()];
        let run = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::RfAn, 2).unwrap();
        let bfs = ptq_graph::bfs_levels(&g, 0);
        assert_eq!(run.dist, bfs.levels);
    }

    #[test]
    fn rfan_sssp_never_retries() {
        let g = erdos_renyi(400, 2000, 11);
        let w = random_weights(&g, 8, 11);
        let run = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::RfAn, 4).unwrap();
        assert_eq!(run.metrics.cas_failures, 0);
        assert_eq!(run.metrics.queue_empty_retries, 0);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(150, 600, 13);
        let w = random_weights(&g, 5, 13);
        let a = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::An, 2).unwrap();
        let b = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::An, 2).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.dist, b.dist);
    }
}
