//! Second driver application: single-source shortest paths (SSSP).
//!
//! The paper positions its queue as a general persistent-thread task
//! scheduler, with BFS merely the evaluation driver. SSSP is the natural
//! next irregular workload: a label-correcting (Bellman-Ford worklist)
//! traversal where relaxing an edge may re-activate an already-settled
//! vertex. It stresses the queue harder than BFS — re-enqueues are the
//! norm, not a rare race — and still validates exactly (against
//! sequential Dijkstra).
//!
//! Since the workload refactor this module is a thin veneer: the kernel
//! is the shared [`crate::kernel::PtKernel`] instantiated with
//! [`crate::workload::Sssp`] (only the claim payload changes — the
//! atomic-min carries a *distance* instead of a level), and the entry
//! points below delegate to [`crate::run_workload`] /
//! [`crate::run_recoverable`] with SSSP's larger default capacity
//! factor.

use crate::recovery::RecoveryPolicy;
use crate::runner::{run_workload, PtConfig, Run};
use crate::workload::Sssp;
use gpu_queue::Variant;
use ptq_graph::Csr;
use simt::{FaultPlan, GpuConfig, SimError};

/// Pre-refactor name of the SSSP run report — now the workload-generic
/// Runs persistent-thread SSSP over `(graph, weights)` from `source`.
/// Applies the same queue-full doubling recovery as the BFS runner,
/// starting from SSSP's larger capacity factor (re-enqueues are the
/// norm).
///
/// # Errors
/// Propagates simulator faults.
///
/// # Panics
/// Panics on mismatched weight length or out-of-range source.
pub fn run_sssp(
    gpu: &GpuConfig,
    graph: &Csr,
    weights: &[u32],
    source: u32,
    variant: Variant,
    workgroups: usize,
) -> Result<Run, SimError> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    let workload = Sssp::new(source, weights.to_vec());
    let config = PtConfig::for_workload(&workload, variant, workgroups);
    run_workload(gpu, graph, &workload, &config)
}

/// Runs a *recoverable* persistent-thread SSSP: value-fenced epochs
/// checkpointed every `policy.checkpoint_levels` distance units, each
/// retried from its checkpoint on abort, with `plan` injecting faults.
/// Distances of a recovered run are byte-identical to [`run_sssp`]'s
/// (the chaos suite pins this).
///
/// # Errors
/// See [`crate::run_recoverable`].
///
/// # Panics
/// Panics on mismatched weight length or out-of-range source.
pub fn run_sssp_recoverable(
    gpu: &GpuConfig,
    graph: &Csr,
    weights: &[u32],
    source: u32,
    config: &PtConfig,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
) -> Result<Run, SimError> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    let workload = Sssp::new(source, weights.to_vec());
    crate::recovery::run_recoverable(gpu, graph, &workload, config, policy, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_graph::gen::{erdos_renyi, roadmap, RoadmapParams};
    use ptq_graph::{random_weights, validate_distances};

    fn check_all_variants(graph: &Csr, weights: &[u32], source: u32, wgs: usize) {
        for variant in Variant::ALL {
            let run = run_sssp(
                &GpuConfig::test_tiny(),
                graph,
                weights,
                source,
                variant,
                wgs,
            )
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            validate_distances(graph, weights, source, &run.values).unwrap_or_else(
                |(v, want, got)| panic!("{variant:?}: vertex {v} dist {got} != {want}"),
            );
        }
    }

    #[test]
    fn exact_distances_on_random_graph() {
        let g = erdos_renyi(300, 1500, 7);
        let w = random_weights(&g, 10, 7);
        check_all_variants(&g, &w, 0, 3);
    }

    #[test]
    fn exact_distances_on_roadmap() {
        let g = roadmap(RoadmapParams {
            rows: 15,
            cols: 15,
            keep_prob: 0.5,
            seed: 4,
        });
        let w = random_weights(&g, 100, 4);
        check_all_variants(&g, &w, 0, 2);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g = erdos_renyi(200, 800, 9);
        let w = vec![1u32; g.num_edges()];
        let run = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::RfAn, 2).unwrap();
        let bfs = ptq_graph::bfs_levels(&g, 0);
        assert_eq!(run.values, bfs.levels);
    }

    #[test]
    fn rfan_sssp_never_retries() {
        let g = erdos_renyi(400, 2000, 11);
        let w = random_weights(&g, 8, 11);
        let run = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::RfAn, 4).unwrap();
        assert_eq!(run.metrics.cas_failures, 0);
        assert_eq!(run.metrics.queue_empty_retries, 0);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(150, 600, 13);
        let w = random_weights(&g, 5, 13);
        let a = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::An, 2).unwrap();
        let b = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::An, 2).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn recoverable_sssp_matches_plain_distances() {
        let g = erdos_renyi(250, 1000, 5);
        let w = random_weights(&g, 6, 5);
        let plain = run_sssp(&GpuConfig::test_tiny(), &g, &w, 0, Variant::RfAn, 3).unwrap();
        let workload = Sssp::new(0, w.clone());
        let config = PtConfig::for_workload(&workload, Variant::RfAn, 3);
        let policy = RecoveryPolicy {
            checkpoint_levels: 5,
            ..RecoveryPolicy::default()
        };
        let run = run_sssp_recoverable(
            &GpuConfig::test_tiny(),
            &g,
            &w,
            0,
            &config,
            &policy,
            &FaultPlan::EMPTY,
        )
        .unwrap();
        assert_eq!(run.values, plain.values);
    }
}
