//! Real-thread CPU BFS built on the host queues.
//!
//! The same persistent-worker structure as the device kernel, with OS
//! threads in place of wavefronts: workers pull vertex tokens from a
//! shared queue, claim children with `AtomicU32::fetch_min` on the cost
//! array, and push discoveries back. Termination uses the same
//! outstanding-task counter as the device runner. This is what the
//! Criterion benchmarks measure on real hardware.

use crate::UNVISITED;
use gpu_queue::host::{AnQueue, BaseQueue, MutexQueue, RfAnQueue, SlotTicket, StatsSnapshot};
use ptq_graph::Csr;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// Which host queue drives the traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostVariant {
    /// Retry-free, arbitrary-n (the paper's design).
    RfAn,
    /// CAS with batching.
    An,
    /// Traditional per-token CAS.
    Base,
    /// Blocking strawman.
    Mutex,
}

impl HostVariant {
    /// All variants, for sweeps.
    pub const ALL: [HostVariant; 4] = [
        HostVariant::RfAn,
        HostVariant::An,
        HostVariant::Base,
        HostVariant::Mutex,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HostVariant::RfAn => "RF/AN",
            HostVariant::An => "AN",
            HostVariant::Base => "BASE",
            HostVariant::Mutex => "MUTEX",
        }
    }
}

/// Result of a host BFS run.
#[derive(Clone, Debug)]
pub struct HostBfsResult {
    /// Exact BFS levels.
    pub levels: Vec<u32>,
    /// Wall-clock time of the parallel section.
    pub duration: Duration,
    /// Queue operation counters.
    pub stats: StatsSnapshot,
    /// Vertices reached.
    pub reached: usize,
}

/// Tokens a worker reserves/pops per interaction with the queue.
const BATCH: usize = 8;

/// Runs a multi-threaded BFS over `graph` from `source` using `threads`
/// workers and the chosen queue design. Returns exact BFS levels.
///
/// # Panics
/// Panics if `source` is out of range, `threads == 0`, or the traversal
/// overflows its queue capacity (graph pathologically racy — capacity is
/// provisioned at 4·|V| + slack).
pub fn host_bfs(graph: &Csr, source: u32, threads: usize, variant: HostVariant) -> HostBfsResult {
    assert!(threads > 0, "need at least one worker");
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");

    let costs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    costs[source as usize].store(0, Ordering::Relaxed);
    let pending = AtomicI64::new(1);
    let capacity = 4 * n + threads * BATCH + 64;

    let start;
    let stats;
    match variant {
        HostVariant::RfAn => {
            let q = RfAnQueue::new(capacity);
            q.enqueue(source).expect("seed fits");
            start = Instant::now();
            run_workers(threads, || rfan_worker(&q, graph, &costs, &pending));
            stats = q.stats();
        }
        HostVariant::An => {
            let q = AnQueue::new(capacity);
            q.push_batch(&[source]).expect("seed fits");
            start = Instant::now();
            run_workers(threads, || an_worker(&q, graph, &costs, &pending));
            stats = q.stats();
        }
        HostVariant::Base => {
            let q = BaseQueue::new(capacity);
            q.push(source).expect("seed fits");
            start = Instant::now();
            run_workers(threads, || base_worker(&q, graph, &costs, &pending));
            stats = q.stats();
        }
        HostVariant::Mutex => {
            let q = MutexQueue::new(capacity);
            q.push_batch(&[source]).expect("seed fits");
            start = Instant::now();
            run_workers(threads, || mutex_worker(&q, graph, &costs, &pending));
            stats = q.stats();
        }
    }
    let duration = start.elapsed();

    let levels: Vec<u32> = costs.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let reached = levels.iter().filter(|&&c| c != UNVISITED).count();
    HostBfsResult {
        levels,
        duration,
        stats,
        reached,
    }
}

fn run_workers<F: Fn() + Sync>(threads: usize, worker: F) {
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(&worker);
        }
    });
}

/// Expands `vertex`, claiming children; pushes discoveries into `outbox`.
#[inline]
fn expand(graph: &Csr, costs: &[AtomicU32], vertex: u32, outbox: &mut Vec<u32>) {
    let level = costs[vertex as usize].load(Ordering::Acquire);
    let new_cost = level + 1;
    for &child in graph.neighbors(vertex) {
        let old = costs[child as usize].fetch_min(new_cost, Ordering::AcqRel);
        if old > new_cost {
            outbox.push(child);
        }
    }
}

/// Publishes discoveries and retires completions against the pending
/// counter; ordering (add before publish, sub last) keeps `pending == 0`
/// a sound termination signal.
#[inline]
fn settle(pending: &AtomicI64, completed: i64, outbox: &[u32], publish: impl FnOnce(&[u32])) {
    if !outbox.is_empty() {
        pending.fetch_add(outbox.len() as i64, Ordering::AcqRel);
        publish(outbox);
    }
    if completed > 0 {
        pending.fetch_sub(completed, Ordering::AcqRel);
    }
}

fn rfan_worker(q: &RfAnQueue, graph: &Csr, costs: &[AtomicU32], pending: &AtomicI64) {
    let mut tickets: Vec<u64> = Vec::new();
    let mut outbox = Vec::new();
    loop {
        if pending.load(Ordering::Acquire) == 0 {
            return;
        }
        if tickets.is_empty() {
            tickets.extend(q.reserve(BATCH));
        }
        let mut completed = 0i64;
        tickets.retain(|&slot| match q.try_take(SlotTicket(slot)) {
            Some(vertex) => {
                expand(graph, costs, vertex, &mut outbox);
                completed += 1;
                false
            }
            None => true,
        });
        settle(pending, completed, &outbox, |toks| {
            q.enqueue_batch(toks).expect("capacity provisioned")
        });
        outbox.clear();
        std::hint::spin_loop();
    }
}

fn an_worker(q: &AnQueue, graph: &Csr, costs: &[AtomicU32], pending: &AtomicI64) {
    let mut inbox = Vec::new();
    let mut outbox = Vec::new();
    loop {
        if pending.load(Ordering::Acquire) == 0 {
            return;
        }
        inbox.clear();
        q.pop_batch(&mut inbox, BATCH);
        let mut completed = 0i64;
        for &vertex in &inbox {
            expand(graph, costs, vertex, &mut outbox);
            completed += 1;
        }
        settle(pending, completed, &outbox, |toks| {
            q.push_batch(toks).expect("capacity provisioned")
        });
        outbox.clear();
        std::hint::spin_loop();
    }
}

fn base_worker(q: &BaseQueue, graph: &Csr, costs: &[AtomicU32], pending: &AtomicI64) {
    let mut outbox = Vec::new();
    loop {
        if pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut completed = 0i64;
        for _ in 0..BATCH {
            match q.try_pop() {
                Some(vertex) => {
                    expand(graph, costs, vertex, &mut outbox);
                    completed += 1;
                }
                None => break,
            }
        }
        settle(pending, completed, &outbox, |toks| {
            for &t in toks {
                q.push(t).expect("capacity provisioned");
            }
        });
        outbox.clear();
        std::hint::spin_loop();
    }
}

fn mutex_worker(q: &MutexQueue, graph: &Csr, costs: &[AtomicU32], pending: &AtomicI64) {
    let mut inbox = Vec::new();
    let mut outbox = Vec::new();
    loop {
        if pending.load(Ordering::Acquire) == 0 {
            return;
        }
        inbox.clear();
        q.pop_batch(&mut inbox, BATCH);
        let mut completed = 0i64;
        for &vertex in &inbox {
            expand(graph, costs, vertex, &mut outbox);
            completed += 1;
        }
        settle(pending, completed, &outbox, |toks| {
            q.push_batch(toks).expect("capacity provisioned")
        });
        outbox.clear();
        std::hint::spin_loop();
    }
}

/// Real-thread SSSP on the [`WorkPool`](gpu_queue::host::WorkPool):
/// label-correcting relaxation with `fetch_min` on the distance array,
/// re-enqueueing improved vertices through the retry-free queue.
///
/// Returns exact shortest distances (validated against Dijkstra in the
/// tests). Queue capacity is provisioned for the re-enqueue-heavy
/// workload; pathological weight distributions may exceed it, in which
/// case the run is retried with a doubled pool.
///
/// # Panics
/// Panics on mismatched weights, bad source, or zero threads.
pub fn host_sssp(graph: &Csr, weights: &[u32], source: u32, threads: usize) -> Vec<u32> {
    use gpu_queue::host::WorkPool;

    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    assert!(
        (source as usize) < graph.num_vertices(),
        "source out of range"
    );
    assert!(threads > 0, "need at least one worker");

    let n = graph.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    let inqueue: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut capacity = 8 * n + 64;
    loop {
        dist.iter()
            .for_each(|d| d.store(UNVISITED, Ordering::Relaxed));
        inqueue.iter().for_each(|f| f.store(0, Ordering::Relaxed));
        dist[source as usize].store(0, Ordering::Relaxed);
        inqueue[source as usize].store(1, Ordering::Relaxed);

        let pool = WorkPool::new(capacity);
        let result = pool.run(threads, &[source], |vertex, outbox| {
            inqueue[vertex as usize].store(0, Ordering::Release);
            let d = dist[vertex as usize].load(Ordering::Acquire);
            let start = graph.edge_start(vertex) as usize;
            for (offset, &child) in graph.neighbors(vertex).iter().enumerate() {
                let candidate = d.saturating_add(weights[start + offset]);
                let old = dist[child as usize].fetch_min(candidate, Ordering::AcqRel);
                if old > candidate && inqueue[child as usize].swap(1, Ordering::AcqRel) == 0 {
                    outbox.push(child);
                }
            }
        });
        match result {
            Ok(()) => return dist.iter().map(|d| d.load(Ordering::Relaxed)).collect(),
            Err(_) => capacity *= 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_graph::gen::{erdos_renyi, roadmap, synthetic_tree, RoadmapParams};
    use ptq_graph::validate_levels;

    fn check(graph: &Csr, source: u32, threads: usize, variant: HostVariant) {
        let result = host_bfs(graph, source, threads, variant);
        validate_levels(graph, source, &result.levels).unwrap_or_else(|(v, want, got)| {
            panic!("{variant:?}: vertex {v} expected {want}, got {got}")
        });
    }

    #[test]
    fn all_variants_exact_on_tree() {
        let g = synthetic_tree(5_000, 4);
        for v in HostVariant::ALL {
            check(&g, 0, 4, v);
        }
    }

    #[test]
    fn all_variants_exact_on_roadmap() {
        let g = roadmap(RoadmapParams {
            rows: 50,
            cols: 40,
            keep_prob: 0.4,
            seed: 2,
        });
        for v in HostVariant::ALL {
            check(&g, 0, 4, v);
        }
    }

    #[test]
    fn all_variants_exact_on_random_multigraph() {
        let g = erdos_renyi(2_000, 10_000, 4);
        for v in HostVariant::ALL {
            check(&g, 3, 3, v);
        }
    }

    #[test]
    fn single_threaded_works() {
        let g = synthetic_tree(500, 4);
        for v in HostVariant::ALL {
            check(&g, 0, 1, v);
        }
    }

    #[test]
    fn rfan_host_run_never_retries() {
        let g = synthetic_tree(5_000, 4);
        let result = host_bfs(&g, 0, 4, HostVariant::RfAn);
        assert_eq!(result.stats.cas_attempts, 0);
        assert_eq!(result.stats.empty_retries, 0);
        assert_eq!(result.reached, 5_000);
    }

    #[test]
    fn base_host_run_reports_retries_under_contention() {
        let g = synthetic_tree(20_000, 4);
        let result = host_bfs(&g, 0, 8, HostVariant::Base);
        assert!(result.stats.cas_attempts > 0);
        // empty retries are near-certain with 8 threads on a ramp-up
        assert!(result.stats.total_retries() > 0);
    }

    #[test]
    fn host_sssp_matches_dijkstra() {
        use ptq_graph::{random_weights, validate_distances};
        let g = erdos_renyi(1_500, 7_000, 17);
        let w = random_weights(&g, 12, 17);
        let dist = host_sssp(&g, &w, 0, 4);
        validate_distances(&g, &w, 0, &dist)
            .unwrap_or_else(|(v, want, got)| panic!("host sssp: vertex {v} dist {got} != {want}"));
    }

    #[test]
    fn host_sssp_unit_weights_equal_bfs() {
        let g = synthetic_tree(3_000, 4);
        let w = vec![1u32; g.num_edges()];
        let dist = host_sssp(&g, &w, 0, 3);
        let levels = ptq_graph::bfs_levels(&g, 0).levels;
        assert_eq!(dist, levels);
    }

    #[test]
    fn host_sssp_single_thread() {
        use ptq_graph::{random_weights, validate_distances};
        let g = roadmap(RoadmapParams {
            rows: 20,
            cols: 20,
            keep_prob: 0.5,
            seed: 1,
        });
        let w = random_weights(&g, 50, 1);
        let dist = host_sssp(&g, &w, 0, 1);
        validate_distances(&g, &w, 0, &dist).unwrap();
    }

    #[test]
    fn disconnected_source_terminates() {
        let mut b = ptq_graph::CsrBuilder::new(10);
        b.add_edge(5, 6);
        let g = b.build();
        let result = host_bfs(&g, 0, 2, HostVariant::RfAn);
        assert_eq!(result.reached, 1);
    }
}
