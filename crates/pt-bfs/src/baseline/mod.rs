//! The external BFS implementations the paper compares against (§6.4).
//!
//! * [`rodinia`] — Rodinia's level-synchronous, one-thread-per-vertex BFS:
//!   "It exits after each level and allocates 1 thread per node. Only
//!   nodes with no dependencies process at each level. If the number of
//!   levels is significant, this approach can have significant overhead."
//! * [`chai`] — CHAI's collaborative CPU+GPU persistent BFS: a CAS-based
//!   worklist shared across the cluster boundary, which only integrated
//!   parts support ("The discrete Fiji GPU cannot run this heterogeneous
//!   kernel because it does not support cross cluster CPU/GPU atomic
//!   operations").

pub mod chai;
pub mod rodinia;

pub use chai::run_chai;
pub use rodinia::run_rodinia;
