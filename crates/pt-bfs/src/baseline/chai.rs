//! CHAI-style collaborative CPU+GPU persistent BFS.
//!
//! CHAI's BFS shares a CAS-based worklist between GPU workgroups and CPU
//! threads over SVM (shared virtual memory). Relative to the paper's
//! design it differs in three performance-relevant ways, all modeled:
//!
//! 1. the queue is traditional/CAS-based (retry overhead),
//! 2. a share of the workers are CPU thread-groups whose memory and
//!    atomic traffic crosses the cluster boundary and pays the SVM
//!    penalty ([`simt::CostModel::svm_penalty`]),
//! 3. it only runs on integrated parts (cross-cluster atomics).
//!
//! The fourth difference the paper notes — CHAI buffering discovered
//! edges in scarce private/local memory — surfaces as its fixed, small
//! per-cycle discovery budget, which the persistent kernel already models
//! through the work-cycle chunk.

use crate::runner::{run_bfs, PtConfig, Run};
use gpu_queue::Variant;
use ptq_graph::Csr;
use simt::{GpuConfig, SimError};

/// CPU thread-groups CHAI contributes alongside the GPU workgroups (the
/// benchmark's default uses a handful of worker threads).
pub const CHAI_CPU_GROUPS: usize = 4;

/// Runs the CHAI-style heterogeneous BFS on an integrated GPU.
///
/// # Panics
/// Panics if called with a discrete configuration — matching the paper:
/// the Fiji part cannot run this kernel at all.
pub fn run_chai(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    workgroups: usize,
) -> Result<Run, SimError> {
    assert!(
        gpu.name != "Fiji",
        "CHAI's heterogeneous kernel needs cross-cluster atomics (integrated GPUs only)"
    );
    let mut config = PtConfig::new(Variant::Base, workgroups);
    config.cpu_collab_groups = CHAI_CPU_GROUPS;
    run_bfs(gpu, graph, source, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_bfs, PtConfig};
    use ptq_graph::gen::{roadmap, RoadmapParams};
    use ptq_graph::validate_levels;

    fn small_road() -> Csr {
        roadmap(RoadmapParams {
            rows: 20,
            cols: 20,
            keep_prob: 0.4,
            seed: 8,
        })
    }

    #[test]
    fn chai_produces_exact_levels() {
        let g = small_road();
        let run = run_chai(&GpuConfig::test_tiny(), &g, 0, 2).unwrap();
        validate_levels(&g, 0, &run.values).unwrap();
    }

    #[test]
    fn chai_slower_than_rfan_on_same_device() {
        let g = small_road();
        let chai = run_chai(&GpuConfig::test_tiny(), &g, 0, 2).unwrap();
        let rfan = run_bfs(
            &GpuConfig::test_tiny(),
            &g,
            0,
            &PtConfig::new(Variant::RfAn, 2),
        )
        .unwrap();
        assert!(
            chai.seconds > rfan.seconds,
            "CHAI {} vs RF/AN {}",
            chai.seconds,
            rfan.seconds
        );
    }

    #[test]
    #[should_panic(expected = "cross-cluster atomics")]
    fn chai_refuses_discrete_gpu() {
        let g = small_road();
        let _ = run_chai(&GpuConfig::fiji(), &g, 0, 2);
    }

    #[test]
    fn chai_pays_retry_overhead() {
        let g = small_road();
        let run = run_chai(&GpuConfig::test_tiny(), &g, 0, 2).unwrap();
        assert!(run.metrics.cas_attempts > 0);
    }
}
