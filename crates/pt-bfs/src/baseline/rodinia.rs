//! Rodinia-style level-synchronous BFS.
//!
//! One kernel launch per BFS level; every launch scans a frontier mask
//! over *all* vertices (one thread per vertex), expands the marked ones,
//! and sets a host-visible `changed` flag. The host relaunches until a
//! level discovers nothing. No queue and no atomics — the benign write
//! races of the original are harmless under level synchronization — but
//! deep graphs pay `levels × launch_overhead` plus `levels × n` mask
//! scans, which is exactly why the paper beats it by 36× on shallow
//! small inputs and only 1.26× on the wide 1M-vertex one.

use crate::runner::{PhaseWalls, Run};
use crate::UNVISITED;
use ptq_graph::Csr;
use simt::{
    Buffer, Engine, GpuConfig, Launch, Metrics, Profile, SimError, WaveCtx, WaveKernel, WaveStatus,
};

/// One wavefront of the per-level expansion kernel. Wave `i` of `W`
/// processes vertex blocks `i, i+W, i+2W, …`, one block of `wave_size`
/// vertices per work cycle.
struct LevelKernel {
    nodes: Buffer,
    edges: Buffer,
    costs: Buffer,
    mask: Buffer,
    next_mask: Buffer,
    changed: Buffer,
    num_vertices: usize,
    wave_size: usize,
    stride: usize,
    next_block: usize,
    any_update: bool,
}

impl WaveKernel for LevelKernel {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        let begin = self.next_block * self.wave_size;
        if begin >= self.num_vertices {
            // Publish the wave's OR-reduced update flag once at the end.
            if self.any_update {
                ctx.global_write(self.changed, 0, 1);
                self.any_update = false;
            }
            return WaveStatus::Done;
        }
        let end = (begin + self.wave_size).min(self.num_vertices);
        // The wavefront scans a contiguous mask block every level: fully
        // coalesced (this is why Rodinia stays competitive on wide
        // graphs — its scans are cheap per vertex; the per-level launch
        // and host synchronization are what hurt on deep ones).
        ctx.charge_coalesced_access(self.mask, begin, end - begin);
        for v in begin..end {
            let in_frontier = ctx.peek(self.mask, v);
            if in_frontier == 0 {
                continue;
            }
            ctx.poke(self.mask, v, 0);
            ctx.charge_coalesced_access(self.nodes, v, 2);
            let start = ctx.peek(self.nodes, v);
            let stop = ctx.peek(self.nodes, v + 1);
            let my_cost = ctx.global_read_lane(self.costs, v);
            for e in start..stop {
                let child = ctx.global_read_lane(self.edges, e as usize);
                let cost = ctx.global_read_lane(self.costs, child as usize);
                if cost == UNVISITED {
                    // Benign race: level synchronization makes every
                    // writer store the same value.
                    ctx.global_write_lane(self.costs, child as usize, my_cost + 1);
                    ctx.global_write_lane(self.next_mask, child as usize, 1);
                    self.any_update = true;
                }
            }
        }
        self.next_block += self.stride;
        WaveStatus::Active
    }
}

/// Runs the Rodinia-style BFS: one launch per level until quiescence.
///
/// # Errors
/// Propagates simulator faults; errors if the level count exceeds
/// `4 * |V| + 16` (which would indicate a bug — BFS has at most |V| levels).
pub fn run_rodinia(
    gpu: &GpuConfig,
    graph: &Csr,
    source: u32,
    workgroups: usize,
) -> Result<Run, SimError> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    let costs = mem.alloc_filled("costs", n, UNVISITED);
    mem.write_u32(costs, source as usize, 0);
    let mask = mem.alloc("mask", n);
    mem.write_u32(mask, source as usize, 1);
    let next_mask = mem.alloc("next_mask", n);
    let changed = mem.alloc("changed", 1);

    let nodes = mem.buffer("nodes");
    let edges = mem.buffer("edges");
    let total_waves = workgroups * gpu.waves_per_wg;
    let mut metrics = Metrics::default();
    let mut profile = Profile::default();
    let mut phases = PhaseWalls::default();
    let mut seconds = 0.0;
    let max_levels = 4 * n as u64 + 16;
    let mut levels = 0u64;
    loop {
        if levels > max_levels {
            return Err(SimError::MaxRoundsExceeded { limit: max_levels });
        }
        let level_start = std::time::Instant::now();
        let report = engine.run(Launch::workgroups(workgroups), |info| LevelKernel {
            nodes,
            edges,
            costs,
            mask,
            next_mask,
            changed,
            num_vertices: n,
            wave_size: info.wave_size,
            stride: total_waves,
            next_block: info.wave_id,
            any_update: false,
        })?;
        metrics.merge(&report.metrics);
        profile.merge(&report.profile);
        phases.sim_seconds += level_start.elapsed().as_secs_f64();
        seconds += report.seconds;
        // Per-level host work the persistent design avoids entirely:
        // result readback, quiescence check, and the mask-promotion kernel
        // (Rodinia's "Kernel 2") with its own dispatch — modeled as two
        // extra launch overheads per level.
        let host_sync = 2 * gpu.cost.launch_overhead;
        metrics.makespan_cycles += host_sync;
        seconds += gpu.cycles_to_seconds(host_sync);
        levels += 1;
        let mem = engine.memory_mut();
        if mem.read_u32(changed, 0) == 0 {
            break;
        }
        // Host-side (kernel 2 in the original): promote next_mask to mask.
        // The original does this on-device with a second tiny launch whose
        // cost we fold into the next launch's overhead.
        let pending: Vec<u32> = mem.read_slice(next_mask).to_vec();
        for (v, &flag) in pending.iter().enumerate() {
            if flag != 0 {
                mem.write_u32(mask, v, 1);
                mem.write_u32(next_mask, v, 0);
            }
        }
        mem.write_u32(changed, 0, 0);
    }

    let values = engine.memory().read_slice(costs).to_vec();
    let reached = values.iter().filter(|&&c| c != UNVISITED).count();
    Ok(Run {
        seconds,
        metrics,
        values,
        reached,
        // Level-synchronous launches overwrite per-CU cycles each level;
        // only the merged totals are meaningful here.
        per_cu_cycles: Vec::new(),
        recovery: crate::recovery::RecoveryLog::default(),
        profile,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_graph::gen::{rodinia as gen_rodinia, synthetic_tree};
    use ptq_graph::{bfs_levels, validate_levels};

    #[test]
    fn exact_levels_on_tree() {
        let g = synthetic_tree(300, 4);
        let run = run_rodinia(&GpuConfig::test_tiny(), &g, 0, 2).unwrap();
        validate_levels(&g, 0, &run.values).unwrap();
    }

    #[test]
    fn exact_levels_on_rodinia_style_graph() {
        let g = gen_rodinia(800, 6, 11);
        let run = run_rodinia(&GpuConfig::test_tiny(), &g, 0, 3).unwrap();
        let reference = bfs_levels(&g, 0);
        assert_eq!(run.reached, reference.reached);
        validate_levels(&g, 0, &run.values).unwrap();
    }

    #[test]
    fn launch_count_equals_levels_plus_final_check() {
        let g = synthetic_tree(85, 4); // depth 3 => levels 0..3
        let run = run_rodinia(&GpuConfig::test_tiny(), &g, 0, 1).unwrap();
        // One launch per level; the last (leaf) level discovers nothing
        // and doubles as the quiescence check.
        assert_eq!(run.metrics.launches, 4);
    }

    #[test]
    fn no_atomics_at_all() {
        let g = synthetic_tree(100, 4);
        let run = run_rodinia(&GpuConfig::test_tiny(), &g, 0, 2).unwrap();
        assert_eq!(run.metrics.global_atomics, 0);
    }

    #[test]
    fn single_vertex() {
        let g = synthetic_tree(1, 4);
        let run = run_rodinia(&GpuConfig::test_tiny(), &g, 0, 1).unwrap();
        assert_eq!(run.reached, 1);
    }
}
