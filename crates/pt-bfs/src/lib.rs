//! `pt-bfs` — the paper's driver application: top-down Breadth First
//! Search under the persistent-thread model (§5.1), plus the external
//! baselines it is compared against (§6.4).
//!
//! * [`kernel`] — the persistent-thread BFS kernel (Algorithm 1): every
//!   wavefront loops work cycles of up to four uniform sub-tasks,
//!   acquiring vertices through any of the three queue variants and
//!   enqueuing newly discovered children.
//! * [`runner`] — host-side orchestration: buffer setup, launch,
//!   validation against the sequential reference, and [`runner::BfsRun`]
//!   statistics (simulated seconds, atomic counts, retries).
//! * [`baseline`] — the Rodinia-style level-synchronous BFS (relaunches a
//!   kernel per level) and the CHAI-style collaborative CPU+GPU BFS.
//! * [`host`] — a real-thread CPU BFS built on the host queues, used by
//!   the Criterion benchmarks.
//! * [`sssp`] — a second driver application (label-correcting shortest
//!   paths), demonstrating the scheduler beyond BFS.
//! * [`recovery`] — checkpoint/resume recovery: frontier-fenced epochs,
//!   a [`recovery::RecoveryPolicy`] (bounded attempts, geometric capacity
//!   regrow, backoff, watchdog), and the [`recovery::RecoveryLog`] every
//!   run report carries.

pub mod baseline;
pub mod host;
pub mod kernel;
pub mod recovery;
pub mod runner;
pub mod sssp;

pub use kernel::{BfsBuffers, PersistentBfsKernel, SpillFence, CHUNK};
pub use recovery::{
    resume_bfs, run_bfs_recoverable, Checkpoint, RecoveryAttempt, RecoveryLog, RecoveryPolicy,
};
pub use runner::{run_bfs, run_bfs_stealing, BfsConfig, BfsRun};
pub use sssp::{run_sssp, SsspRun};

/// Cost value for unvisited vertices (matches `ptq_graph::UNREACHED`).
pub const UNVISITED: u32 = u32::MAX;
