//! `pt-bfs` — the persistent-thread core and its driver applications:
//! the paper's top-down Breadth First Search (§5.1), the external
//! baselines it is compared against (§6.4), and the workload-generic
//! machinery that runs SSSP, connected components, and PageRank-delta on
//! the same kernel.
//!
//! * [`workload`] — the [`workload::PtWorkload`] trait: claim direction,
//!   initial state, expansion step, and sequential oracle of one
//!   irregular workload, plus the four implementations
//!   ([`workload::Bfs`], [`workload::Sssp`],
//!   [`workload::ConnectedComponents`], [`workload::PrDelta`]).
//! * [`kernel`] — the generic persistent-thread kernel (Algorithm 1):
//!   every wavefront loops work cycles of up to four uniform sub-tasks,
//!   acquiring tokens through any of the five queue designs and
//!   enqueuing newly discovered work through the workload's
//!   [`workload::TokenSink`].
//! * [`runner`] — host-side orchestration: buffer setup, launch,
//!   queue-full capacity regrow, audit enforcement, and the
//!   [`runner::Run`] report (simulated seconds, atomic counts, retries,
//!   recovery log).
//! * [`baseline`] — the Rodinia-style level-synchronous BFS (relaunches a
//!   kernel per level) and the CHAI-style collaborative CPU+GPU BFS.
//! * [`host`] — a real-thread CPU BFS built on the host queues, used by
//!   the Criterion benchmarks.
//! * [`sssp`] — SSSP entry points (label-correcting shortest paths as a
//!   thin [`workload::Sssp`] veneer over the generic runner).
//! * [`recovery`] — checkpoint/resume recovery: value-fenced epochs,
//!   a [`recovery::RecoveryPolicy`] (bounded attempts, geometric capacity
//!   regrow, backoff, watchdog), and the [`recovery::RecoveryLog`] every
//!   run report carries — generic over the workload.

pub mod baseline;
pub mod host;
pub mod kernel;
pub mod recovery;
pub mod runner;
pub mod sssp;
pub mod workload;

pub use kernel::{PtKernel, SpillFence, CHUNK};
pub use recovery::{
    resume_bfs, resume_workload, resume_workload_detailed, run_bfs_recoverable, run_recoverable,
    Checkpoint, RecoveryAttempt, RecoveryLog, RecoveryPolicy, RunFailure,
};
pub use runner::{
    queue_capacity, run_bfs, run_bfs_stealing, run_workload, run_workload_stealing,
    run_workloads_coresident, PhaseWalls, PtConfig, Run,
};
pub use sssp::{run_sssp, run_sssp_recoverable};
pub use workload::{
    Bfs, Claim, ConnectedComponents, PrDelta, PtWorkload, QueryBatch, Sssp, WorkBuffers,
};

/// Value for a vertex no min-directed traversal has reached yet
/// (matches `ptq_graph::UNREACHED`).
pub const UNVISITED: u32 = u32::MAX;
