//! The generic persistent-thread kernel.
//!
//! Structure follows the paper's Algorithm 1 exactly — every work cycle:
//!
//! 1. hungry lanes request task tokens from the scheduler queue
//!    (`GetWorkToken`, variant-specific),
//! 2. lanes holding a token process up to [`CHUNK`] of its out-edges
//!    (`DoWorkUnit` — "work cycles of 4 sub-tasks works well", §3.3) by
//!    delegating the expansion to the [`PtWorkload`],
//! 3. newly discovered tokens are enqueued
//!    (`ScheduleNewlyDiscoveredWorkTokens`),
//! 4. the wavefront checks the global outstanding-task counter
//!    (`WorkRemains`).
//!
//! Child discovery claims the vertex's value word with a directed atomic
//! (min or max per the workload's [`Claim`] — an AFA-class operation
//! that never retries and is identical across queue variants, so the
//! queue comparison stays clean). A child is enqueued iff the claim
//! strictly improved its value *and* the vertex is not already queued (a
//! per-vertex on-queue bit claimed with an atomic exchange — the classic
//! label-correcting worklist discipline). If an out-of-order race
//! publishes a worse value first, a later improvement re-enqueues the
//! vertex, so the final values always equal the workload's sequential
//! fixed point; the on-queue bit bounds total enqueues near `|V|` per
//! improvement wave.
//!
//! Lanes whose discoveries have not yet been accepted by the queue stall
//! (real kernels hold discoveries in scarce registers/local memory):
//! while the outbox is backlogged the wavefront neither requests new
//! work nor expands edges, it just keeps offering the backlog.
//!
//! [`Claim`]: crate::workload::Claim

use crate::workload::{PtWorkload, TokenSink, WorkBuffers};
use gpu_queue::device::{LanePhase, WaveQueue};
use simt::{Buffer, PlanCtx, WaveCtx, WaveKernel, WaveStatus};

/// Uniform sub-tasks (edges) per lane per work cycle — paper §3.3.
pub const CHUNK: u32 = 4;

/// Optional frontier fence for checkpoint/resume epochs (see
/// `crate::recovery`). Discoveries claimed *past* `depth` — deeper than
/// the fence value, for min-directed workloads — still claim normally
/// (value atomic + on-queue bit), but instead of entering the scheduler
/// queue they are appended to the `spill` buffer (`spill[0]` = atomic
/// cursor, `spill[1..]` = spilled tokens). The launch then terminates at
/// a frontier boundary — `pending == 0` with every vertex at value ≤
/// `depth` fully expanded — which is exactly the point where a host
/// checkpoint contains no partially-expanded state.
#[derive(Clone, Copy, Debug)]
pub struct SpillFence {
    /// Largest claim value scheduled through the queue this epoch (BFS
    /// levels, SSSP distances, …).
    pub depth: u32,
    /// Spill buffer: one cursor word followed by up to `n` tokens.
    pub spill: Buffer,
}

/// Per-lane execution state: the token being processed and the edge
/// cursor within it.
#[derive(Clone, Copy, Debug)]
enum LaneWork {
    None,
    Node {
        value: u32,
        next_edge: u32,
        end_edge: u32,
        /// Query-id tag of the token (`token - token_row(token)`); zero
        /// for solo workloads. Children discovered while expanding this
        /// node inherit it (see [`TokenSink`]).
        base: u32,
    },
}

/// Per-lane result of the parallel plan phase (DESIGN.md §12): data the
/// next work cycle is certain to read, copied out of *immutable* buffers
/// (CSR rows and adjacency) plus prefetch hints for the mutable words it
/// will touch. `work_cycle` consumes an entry only while its key still
/// matches the lane's state, so entries from a stale round
/// self-invalidate; with one engine worker no entry is ever written and
/// every read takes the historical live path.
#[derive(Clone, Debug)]
struct LanePlan {
    /// Predicted queue pickup for a monitoring lane: the token and its
    /// CSR row, `(vertex, row_start, row_end)`. Exact, not a guess —
    /// RF/AN pickups read round-stale slot values, which are frozen for
    /// the whole round.
    token: Option<(u32, u32, u32)>,
    /// First edge of the cached adjacency chunk (`u32::MAX` = none).
    chunk_start: u32,
    /// The words `edges[chunk_start..][..len]` for this lane's next
    /// expansion chunk.
    edges: Vec<u32>,
}

impl Default for LanePlan {
    fn default() -> Self {
        LanePlan {
            token: None,
            chunk_start: u32::MAX,
            edges: Vec::new(),
        }
    }
}

/// One wavefront's persistent state, generic over the workload.
pub struct PtKernel<W: PtWorkload> {
    queue: Box<dyn WaveQueue>,
    workload: W,
    buffers: WorkBuffers,
    phases: Vec<LanePhase>,
    work: Vec<LaneWork>,
    /// Newly discovered tokens awaiting queue acceptance.
    outbox: Vec<u32>,
    /// Finished tasks not yet retired against the pending counter
    /// (held until the outbox drains so `pending == 0` really means the
    /// traversal is complete).
    completed: u32,
    chunk: u32,
    /// Reusable buffer for one lane's prevalidated CSR edge chunk.
    edge_scratch: Vec<u32>,
    /// Plan-phase cache, one entry per lane (see [`LanePlan`]).
    plan: Vec<LanePlan>,
    /// Frontier fence for epoch-bounded (checkpointable) launches.
    /// `None` for plain runs — the fence branch is then never taken and
    /// the kernel's behaviour is bit-identical to the unfenced original.
    fence: Option<SpillFence>,
}

impl<W: PtWorkload> PtKernel<W> {
    /// Creates the wavefront state. `lanes` is the wavefront width.
    pub fn new(queue: Box<dyn WaveQueue>, workload: W, buffers: WorkBuffers, lanes: usize) -> Self {
        Self::with_chunk(queue, workload, buffers, lanes, CHUNK)
    }

    /// Like [`PtKernel::new`] with an explicit sub-task chunk size (used
    /// by the chunk-size ablation).
    pub fn with_chunk(
        queue: Box<dyn WaveQueue>,
        workload: W,
        buffers: WorkBuffers,
        lanes: usize,
        chunk: u32,
    ) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        PtKernel {
            queue,
            workload,
            buffers,
            phases: vec![LanePhase::Idle; lanes],
            work: vec![LaneWork::None; lanes],
            outbox: Vec::new(),
            completed: 0,
            chunk,
            edge_scratch: Vec::new(),
            plan: vec![LanePlan::default(); lanes],
            fence: None,
        }
    }

    /// Bounds this launch to claim values `<= depth`: deeper discoveries
    /// go to the `spill` buffer instead of the queue (see
    /// [`SpillFence`]). Only meaningful for min-directed workloads; a
    /// max-directed workload never triggers the fence branch.
    pub fn with_fence(mut self, depth: u32, spill: Buffer) -> Self {
        self.fence = Some(SpillFence { depth, spill });
        self
    }
}

impl<W: PtWorkload> WaveKernel for PtKernel<W> {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        // Backpressure: a backlogged outbox means discoveries are waiting
        // on queue acceptance; the wavefront stalls its own pipeline.
        let stalled = self.outbox.len() >= self.phases.len() * self.chunk as usize;

        // --- 1. hungry lanes request work ------------------------------
        if !stalled {
            for (phase, work) in self.phases.iter_mut().zip(&self.work) {
                if *phase == LanePhase::Idle && matches!(work, LaneWork::None) {
                    *phase = LanePhase::Hungry;
                }
            }
        }
        self.queue.acquire(ctx, &mut self.phases);

        // Ready lanes load their node's metadata (enumeration prolog of
        // Listing 2: starting edge, degree, current value).
        for ((phase, work), plan) in self
            .phases
            .iter_mut()
            .zip(self.work.iter_mut())
            .zip(self.plan.iter())
        {
            if let LanePhase::Ready(token) = *phase {
                // The token addresses per-query state directly; its CSR
                // row is the vertex it expands (identical for solo
                // workloads, query-tagged for a batch).
                let row = self.workload.token_row(token);
                // Release the on-queue bit *before* reading the value so
                // a concurrent improver either sees the bit set (and
                // knows this processing will read its improved value) or
                // re-enqueues the vertex itself.
                ctx.global_write_lane(self.buffers.inqueue, token as usize, 0);
                // The two row offsets share a cache line almost always.
                // A predicted pickup serves them from the plan cache
                // (identical validation and charges; `nodes` is
                // immutable).
                ctx.charge_coalesced_access(self.buffers.nodes, row as usize, 2);
                let (start, end) = match plan.token {
                    Some((t, s, e)) if t == token => (
                        ctx.peek_cached(self.buffers.nodes, row as usize, s),
                        ctx.peek_cached(self.buffers.nodes, row as usize + 1, e),
                    ),
                    _ => (
                        ctx.peek(self.buffers.nodes, row as usize),
                        ctx.peek(self.buffers.nodes, row as usize + 1),
                    ),
                };
                let raw = ctx.global_read_lane(self.buffers.values, token as usize);
                *work = LaneWork::Node {
                    // Host-side derivation, no device ops (identity for
                    // most workloads).
                    value: self.workload.lane_value(raw, start, end),
                    next_edge: start,
                    end_edge: end,
                    base: token - row,
                };
                *phase = LanePhase::Idle;
            }
        }

        // --- 2. DoWorkUnit: up to `chunk` edges per lane ---------------
        if !stalled {
            let mut edges = std::mem::take(&mut self.edge_scratch);
            let mut outbox = std::mem::take(&mut self.outbox);
            for (lane, work) in self.work.iter_mut().enumerate() {
                if let LaneWork::Node {
                    value,
                    next_edge,
                    end_edge,
                    base,
                } = work
                {
                    let stop = (*next_edge + self.chunk).min(*end_edge);
                    // The plan cache is keyed on the edge cursor: a match
                    // means the chunk was copied for exactly this
                    // expansion (cursors only advance, so stale rounds
                    // can never alias).
                    let plan = &self.plan[lane];
                    let cached = (plan.chunk_start == *next_edge
                        && plan.edges.len() == stop.saturating_sub(*next_edge) as usize)
                        .then_some(plan.edges.as_slice());
                    let mut sink = TokenSink {
                        claim: self.workload.claim(),
                        values: self.buffers.values,
                        inqueue: self.buffers.inqueue,
                        fence: self.fence,
                        outbox: &mut outbox,
                        base: *base,
                    };
                    self.workload.expand(
                        ctx,
                        &self.buffers,
                        *value,
                        *next_edge,
                        stop,
                        cached,
                        &mut edges,
                        &mut sink,
                    );
                    *next_edge = stop;
                    if *next_edge == *end_edge {
                        *work = LaneWork::None;
                        self.completed += 1;
                    }
                }
            }
            self.outbox = outbox;
            self.edge_scratch = edges;
        }

        // --- 3. ScheduleNewlyDiscoveredWorkTokens ----------------------
        if !self.outbox.is_empty() {
            let accepted = self.queue.enqueue(ctx, &self.outbox);
            if accepted > 0 {
                ctx.atomic_add(self.buffers.pending, 0, accepted as u32);
                ctx.count_scheduler_atomics(1);
                self.outbox.drain(..accepted);
            }
        }
        // Retire completions only once their children are safely queued,
        // so the pending counter can never under-report in-flight work.
        if self.completed > 0 && self.outbox.is_empty() {
            ctx.atomic_sub(self.buffers.pending, 0, self.completed);
            ctx.count_scheduler_atomics(1);
            self.completed = 0;
        }

        // --- 4. WorkRemains ---------------------------------------------
        let pending = ctx.global_read(self.buffers.pending, 0);
        if pending == 0 && self.outbox.is_empty() && self.completed == 0 {
            return WaveStatus::Done;
        }
        // Idle long tail: every lane is just monitoring its slot and the
        // wavefront holds no work, discoveries, or unretired completions —
        // the next cycle is an identical poll of the monitored slots plus
        // the pending counter. Park on exactly those words; the engine
        // replays this cycle's charges until one of them changes.
        if self.outbox.is_empty()
            && self.completed == 0
            && self.work.iter().all(|w| matches!(w, LaneWork::None))
            && self.queue.register_idle_watches(ctx, &self.phases)
        {
            ctx.park_until_changed_now(self.buffers.pending, 0);
        }
        WaveStatus::Active
    }

    /// Parallel plan phase (DESIGN.md §12): against the round's read-only
    /// memory view, work out what the coming `work_cycle` is *certain* to
    /// read and copy it out of the immutable CSR buffers — the cursor
    /// continuation chunk of every lane holding a token, and the row +
    /// first chunk of every monitoring lane whose slot pickup is already
    /// decided (round-stale slot values are frozen, so the prediction is
    /// exact). Mutable words the cycle will touch (child values, on-queue
    /// bits) are prefetched, never cached. Nothing here is observable in
    /// the simulation.
    fn plan_cycle(&mut self, ctx: &PlanCtx<'_>) {
        // Mirror of work_cycle's backpressure check. `outbox` is mutated
        // only by this wave's own work cycles, so the value is the one
        // the commit phase will see.
        let stalled = self.outbox.len() >= self.phases.len() * self.chunk as usize;
        for lane in 0..self.phases.len() {
            let plan = &mut self.plan[lane];
            plan.token = None;
            plan.chunk_start = u32::MAX;
            if stalled {
                // A stalled cycle neither promotes lanes nor expands
                // edges; leave every entry invalid.
                continue;
            }
            let (start, end, base) = match self.work[lane] {
                LaneWork::Node {
                    next_edge,
                    end_edge,
                    base,
                    ..
                } => (next_edge, end_edge, base),
                LaneWork::None => {
                    let LanePhase::Monitoring(slot) = self.phases[lane] else {
                        continue;
                    };
                    let Some(token) = self.queue.plan_token(ctx, slot) else {
                        continue;
                    };
                    let row = self.workload.token_row(token);
                    let (Some(s), Some(e)) = (
                        ctx.peek(self.buffers.nodes, row as usize),
                        ctx.peek(self.buffers.nodes, row as usize + 1),
                    ) else {
                        continue;
                    };
                    plan.token = Some((token, s, e));
                    // The pickup prolog will write the on-queue bit and
                    // read the value word.
                    ctx.prefetch(self.buffers.inqueue, token as usize);
                    ctx.prefetch(self.buffers.values, token as usize);
                    (s, e, token - row)
                }
            };
            if start > end {
                continue; // corrupt row; the live path owns the fault
            }
            let stop = start.saturating_add(self.chunk).min(end);
            if ctx.peek_run(
                self.buffers.edges,
                start as usize,
                (stop - start) as usize,
                &mut plan.edges,
            ) {
                plan.chunk_start = start;
                // Each discovered child gets a claim atomic on its value
                // word and possibly an on-queue-bit exchange: warm those
                // random-access lines for the commit phase (re-tagged
                // with the parent's query id, like the sink will).
                for &child in plan.edges.iter() {
                    ctx.prefetch(self.buffers.values, (base + child) as usize);
                    ctx.prefetch(self.buffers.inqueue, (base + child) as usize);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // The kernel is exercised end-to-end through `runner`; see
    // `runner::tests` and the crate's integration tests. Unit tests here
    // cover construction contracts only.
    use super::*;
    use crate::workload::Bfs;
    use gpu_queue::device::{QueueLayout, RfAnWaveQueue};
    use simt::DeviceMemory;

    fn buffers(mem: &mut DeviceMemory) -> WorkBuffers {
        WorkBuffers {
            nodes: mem.alloc("nodes", 2),
            edges: mem.alloc("edges", 1),
            values: mem.alloc("costs", 1),
            inqueue: mem.alloc("inqueue", 1),
            pending: mem.alloc("pending", 1),
        }
    }

    #[test]
    fn chunk_default_matches_paper() {
        assert_eq!(CHUNK, 4);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let mut mem = DeviceMemory::new();
        let b = buffers(&mut mem);
        let layout = QueueLayout::setup(&mut mem, "q", 4);
        let _ = PtKernel::with_chunk(Box::new(RfAnWaveQueue::new(layout)), Bfs::new(0), b, 4, 0);
    }

    #[test]
    fn starts_with_idle_lanes_and_empty_outbox() {
        let mut mem = DeviceMemory::new();
        let b = buffers(&mut mem);
        let layout = QueueLayout::setup(&mut mem, "q", 4);
        let k = PtKernel::new(Box::new(RfAnWaveQueue::new(layout)), Bfs::new(0), b, 8);
        assert_eq!(k.phases.len(), 8);
        assert!(k.outbox.is_empty());
        assert_eq!(k.completed, 0);
        assert!(k.fence.is_none(), "plain construction is unfenced");
    }

    #[test]
    fn fence_builder_attaches_depth_and_spill() {
        let mut mem = DeviceMemory::new();
        let b = buffers(&mut mem);
        let spill = mem.alloc("spill", 8);
        let layout = QueueLayout::setup(&mut mem, "q", 4);
        let k = PtKernel::new(Box::new(RfAnWaveQueue::new(layout)), Bfs::new(0), b, 4)
            .with_fence(3, spill);
        let f = k.fence.expect("fence installed");
        assert_eq!(f.depth, 3);
        assert_eq!(f.spill, spill);
    }
}
