//! Engine-optimization regression guard.
//!
//! The `simt` engine's hot loop was rewritten (dense active-wave list,
//! generation-stamped round state, reusable scratch). None of that may
//! change *behaviour*: the simulator is deterministic, so every metric of
//! a seeded BFS — atomics, retries, rounds, makespan — must stay exactly
//! as it was before the rewrite. These values were captured from the
//! pre-rewrite engine; any diff means the optimization changed scheduling
//! order or cost accounting, not just speed.

use gpu_queue::Variant;
use pt_bfs::{run_bfs, PtConfig};
use ptq_graph::gen::{erdos_renyi, synthetic_tree};
use simt::GpuConfig;

/// Exact per-variant counters on a seeded 500-vertex random graph,
/// 4 workgroups on the tiny test device.
#[test]
fn seeded_bfs_metrics_are_pinned() {
    let graph = erdos_renyi(500, 1500, 42);
    for (variant, golden) in [
        (Variant::Base, GOLDEN_BASE),
        (Variant::An, GOLDEN_AN),
        (Variant::RfAn, GOLDEN_RFAN),
    ] {
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &graph,
            0,
            &PtConfig::new(variant, 4),
        )
        .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        let m = &run.metrics;
        let got = Golden {
            rounds: m.rounds,
            work_cycles: m.work_cycles,
            global_atomics: m.global_atomics,
            cas_attempts: m.cas_attempts,
            cas_failures: m.cas_failures,
            queue_empty_retries: m.queue_empty_retries,
            makespan_cycles: m.makespan_cycles,
        };
        assert_eq!(got, golden, "{variant:?} metrics drifted");
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Golden {
    rounds: u64,
    work_cycles: u64,
    global_atomics: u64,
    cas_attempts: u64,
    cas_failures: u64,
    queue_empty_retries: u64,
    makespan_cycles: u64,
}

const GOLDEN_BASE: Golden = Golden {
    rounds: 43,
    work_cycles: 172,
    global_atomics: 4063,
    cas_attempts: 1994,
    cas_failures: 1069,
    queue_empty_retries: 73,
    makespan_cycles: 4021,
};
const GOLDEN_AN: Golden = Golden {
    rounds: 40,
    work_cycles: 159,
    global_atomics: 3053,
    cas_attempts: 796,
    cas_failures: 524,
    queue_empty_retries: 54,
    makespan_cycles: 4107,
};
const GOLDEN_RFAN: Golden = Golden {
    rounds: 40,
    work_cycles: 158,
    global_atomics: 2491,
    cas_attempts: 0,
    cas_failures: 0,
    queue_empty_retries: 0,
    makespan_cycles: 4083,
};

/// Polling-heavy long tail: a 400-vertex chain keeps the frontier at one
/// vertex, so with 8 workgroups nearly every wave spends nearly every
/// round idle-polling its monitored `dna` slots (RF/AN, RF-only) or
/// retrying dequeues (AN). This pins the exact cost of those poll rounds
/// — metrics *and* per-CU cycle counts — so the engine's event-aware wave
/// parking fast path is provably cycle-exact, not an approximation.
#[test]
fn polling_heavy_long_tail_is_pinned() {
    let graph = synthetic_tree(400, 1);
    for (variant, golden, cu_cycles) in [
        (Variant::RfAn, GOLDEN_TAIL_RFAN, GOLDEN_TAIL_RFAN_CUS),
        (Variant::RfOnly, GOLDEN_TAIL_RFONLY, GOLDEN_TAIL_RFONLY_CUS),
        (Variant::An, GOLDEN_TAIL_AN, GOLDEN_TAIL_AN_CUS),
        (Variant::Base, GOLDEN_TAIL_BASE, GOLDEN_TAIL_BASE_CUS),
    ] {
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &graph,
            0,
            &PtConfig::new(variant, 8),
        )
        .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        let m = &run.metrics;
        let got = Golden {
            rounds: m.rounds,
            work_cycles: m.work_cycles,
            global_atomics: m.global_atomics,
            cas_attempts: m.cas_attempts,
            cas_failures: m.cas_failures,
            queue_empty_retries: m.queue_empty_retries,
            makespan_cycles: m.makespan_cycles,
        };
        assert_eq!(got, golden, "{variant:?} long-tail metrics drifted");
        assert_eq!(
            run.per_cu_cycles, cu_cycles,
            "{variant:?} long-tail per-CU cycles drifted"
        );
        assert_eq!(m.global_mem_ops, golden_tail_mem_ops(variant));
    }
}

fn golden_tail_mem_ops(variant: Variant) -> u64 {
    match variant {
        Variant::RfAn => 9130,
        Variant::RfOnly => 9130,
        Variant::An => 12422,
        Variant::Base => 12422,
        Variant::SegRfAn => unreachable!("long-tail goldens cover MATRIX only"),
    }
}

const GOLDEN_TAIL_RFAN: Golden = Golden {
    rounds: 401,
    work_cycles: 3204,
    global_atomics: 2403,
    cas_attempts: 0,
    cas_failures: 0,
    queue_empty_retries: 0,
    makespan_cycles: 11800,
};
const GOLDEN_TAIL_RFAN_CUS: [u64; 2] = [11782, 11800];
const GOLDEN_TAIL_RFONLY: Golden = Golden {
    rounds: 401,
    work_cycles: 3204,
    global_atomics: 2427,
    cas_attempts: 0,
    cas_failures: 0,
    queue_empty_retries: 0,
    makespan_cycles: 10984,
};
const GOLDEN_TAIL_RFONLY_CUS: [u64; 2] = [10962, 10984];
const GOLDEN_TAIL_AN: Golden = Golden {
    rounds: 400,
    work_cycles: 3200,
    global_atomics: 3569,
    cas_attempts: 1972,
    cas_failures: 1173,
    queue_empty_retries: 12400,
    makespan_cycles: 15010,
};
const GOLDEN_TAIL_AN_CUS: [u64; 2] = [14992, 15010];
const GOLDEN_TAIL_BASE: Golden = Golden {
    rounds: 400,
    work_cycles: 3200,
    global_atomics: 2787,
    cas_attempts: 1190,
    cas_failures: 391,
    queue_empty_retries: 12400,
    makespan_cycles: 8482,
};
const GOLDEN_TAIL_BASE_CUS: [u64; 2] = [6200, 6222];
