//! Engine-optimization regression guard.
//!
//! The `simt` engine's hot loop was rewritten (dense active-wave list,
//! generation-stamped round state, reusable scratch). None of that may
//! change *behaviour*: the simulator is deterministic, so every metric of
//! a seeded BFS — atomics, retries, rounds, makespan — must stay exactly
//! as it was before the rewrite. These values were captured from the
//! pre-rewrite engine; any diff means the optimization changed scheduling
//! order or cost accounting, not just speed.

use gpu_queue::Variant;
use pt_bfs::{run_bfs, BfsConfig};
use ptq_graph::gen::erdos_renyi;
use simt::GpuConfig;

/// Exact per-variant counters on a seeded 500-vertex random graph,
/// 4 workgroups on the tiny test device.
#[test]
fn seeded_bfs_metrics_are_pinned() {
    let graph = erdos_renyi(500, 1500, 42);
    for (variant, golden) in [
        (Variant::Base, GOLDEN_BASE),
        (Variant::An, GOLDEN_AN),
        (Variant::RfAn, GOLDEN_RFAN),
    ] {
        let run = run_bfs(
            &GpuConfig::test_tiny(),
            &graph,
            0,
            &BfsConfig::new(variant, 4),
        )
        .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        let m = &run.metrics;
        let got = Golden {
            rounds: m.rounds,
            work_cycles: m.work_cycles,
            global_atomics: m.global_atomics,
            cas_attempts: m.cas_attempts,
            cas_failures: m.cas_failures,
            queue_empty_retries: m.queue_empty_retries,
            makespan_cycles: m.makespan_cycles,
        };
        assert_eq!(got, golden, "{variant:?} metrics drifted");
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Golden {
    rounds: u64,
    work_cycles: u64,
    global_atomics: u64,
    cas_attempts: u64,
    cas_failures: u64,
    queue_empty_retries: u64,
    makespan_cycles: u64,
}

const GOLDEN_BASE: Golden = Golden {
    rounds: 43,
    work_cycles: 172,
    global_atomics: 4063,
    cas_attempts: 1994,
    cas_failures: 1069,
    queue_empty_retries: 73,
    makespan_cycles: 4021,
};
const GOLDEN_AN: Golden = Golden {
    rounds: 40,
    work_cycles: 159,
    global_atomics: 3053,
    cas_attempts: 796,
    cas_failures: 524,
    queue_empty_retries: 54,
    makespan_cycles: 4107,
};
const GOLDEN_RFAN: Golden = Golden {
    rounds: 40,
    work_cycles: 158,
    global_atomics: 2491,
    cas_attempts: 0,
    cas_failures: 0,
    queue_empty_retries: 0,
    makespan_cycles: 4083,
};
