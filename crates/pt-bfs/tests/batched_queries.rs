//! Multi-query batching end-to-end: a [`QueryBatch`] of `k` compatible
//! queries fused into one persistent-thread launch must reproduce, in
//! slice `i` of its widened value array, the byte-exact value array of
//! member `i`'s solo run — under every queue variant, through the
//! checkpoint/resume recovery path, and with the retry-free audits
//! active throughout. This is the per-member confluence claim of
//! DESIGN.md §15 pinned as a test.

use gpu_queue::Variant;
use pt_bfs::workload::QueryBatch;
use pt_bfs::{
    run_recoverable, run_workload, Bfs, ConnectedComponents, PrDelta, PtConfig, PtWorkload,
    RecoveryPolicy, Sssp,
};
use ptq_graph::gen::{erdos_renyi, social, synthetic_tree, SocialParams};
use ptq_graph::Csr;
use simt::{FaultPlan, GpuConfig};

/// Runs `batch` and each member solo under `variant`, asserting every
/// member slice of the batched values equals the solo value array.
fn assert_batch_matches_solos<W: PtWorkload>(graph: &Csr, members: Vec<W>, variant: Variant) {
    let gpu = GpuConfig::test_tiny();
    let batch = QueryBatch::new(members.clone(), graph.num_vertices());
    let config = PtConfig::for_workload(&batch, variant, 4);
    let run = run_workload(&gpu, graph, &batch, &config)
        .unwrap_or_else(|e| panic!("{variant:?} batch failed: {e}"));
    assert_eq!(
        run.values.len(),
        members.len() * graph.num_vertices(),
        "batched value array spans every member"
    );
    let mut solo_reached = 0;
    for (i, member) in members.iter().enumerate() {
        let solo_config = PtConfig::for_workload(member, variant, 4);
        let solo = run_workload(&gpu, graph, member, &solo_config)
            .unwrap_or_else(|e| panic!("{variant:?} solo member {i} failed: {e}"));
        assert_eq!(
            batch.member_values(&run.values, i),
            &solo.values[..],
            "{variant:?}: member {i} batched values diverge from its solo run"
        );
        solo_reached += solo.reached;
    }
    assert_eq!(run.reached, solo_reached, "{variant:?} reached mismatch");
}

#[test]
fn batched_bfs_slices_equal_solo_runs_for_all_variants() {
    let g = erdos_renyi(400, 1600, 21);
    for variant in [Variant::Base, Variant::An, Variant::RfAn, Variant::SegRfAn] {
        assert_batch_matches_solos(&g, vec![Bfs::new(0), Bfs::new(7), Bfs::new(123)], variant);
    }
}

#[test]
fn batched_bfs_multi_source_frontier_on_social_graph() {
    let g = social(SocialParams {
        vertices: 700,
        avg_degree: 8.0,
        alpha: 1.8,
        max_degree: 120,
        seed: 13,
    });
    let sources = [0u32, 50, 333, 699];
    assert_batch_matches_solos(
        &g,
        sources.iter().map(|&s| Bfs::new(s)).collect(),
        Variant::SegRfAn,
    );
}

#[test]
fn batched_sssp_shares_one_weight_upload() {
    // Homogeneity contract: every member carries the same weight array;
    // the batch binds it once through the prototype.
    let g = synthetic_tree(500, 4);
    let weights: Vec<u32> = (0..g.num_edges()).map(|i| 1 + (i as u32 % 7)).collect();
    let members: Vec<Sssp> = [0u32, 9, 250]
        .iter()
        .map(|&s| Sssp::new(s, weights.clone()))
        .collect();
    assert_batch_matches_solos(&g, members, Variant::RfAn);
}

#[test]
fn batched_max_claim_prdelta_slices_equal_solo_runs() {
    let g = social(SocialParams {
        vertices: 300,
        avg_degree: 6.0,
        alpha: 1.9,
        max_degree: 60,
        seed: 29,
    });
    assert_batch_matches_solos(&g, vec![PrDelta::new(0), PrDelta::new(42)], Variant::RfAn);
}

#[test]
fn batched_all_vertex_seeding_cc() {
    // CC seeds every vertex: a k-member batch seeds k * n tokens and
    // overrides `reached` per slice.
    let g = erdos_renyi(200, 500, 31);
    assert_batch_matches_solos(
        &g,
        vec![ConnectedComponents, ConnectedComponents],
        Variant::SegRfAn,
    );
}

#[test]
fn batched_run_survives_checkpoint_resume() {
    // The recovery path sizes checkpoints, inqueue snapshots, and the
    // spill buffer by `state_len`, so a fenced multi-epoch run of a
    // batch must land on the same fused value array as the plain run.
    let g = synthetic_tree(400, 4);
    let batch = QueryBatch::new(vec![Bfs::new(0), Bfs::new(17)], g.num_vertices());
    let config = PtConfig::for_workload(&batch, Variant::RfAn, 3);
    let gpu = GpuConfig::test_tiny();
    let plain = run_workload(&gpu, &g, &batch, &config).unwrap();
    let policy = RecoveryPolicy {
        checkpoint_levels: 3,
        ..RecoveryPolicy::default()
    };
    let recovered = run_recoverable(&gpu, &g, &batch, &config, &policy, &FaultPlan::new()).unwrap();
    assert!(
        recovered.recovery.epochs > 1,
        "stride forces several epochs"
    );
    assert_eq!(recovered.values, plain.values);
    assert_eq!(recovered.reached, plain.reached);
}

#[test]
fn batched_recovery_survives_wave_kill() {
    let g = synthetic_tree(300, 4);
    let batch = QueryBatch::new(vec![Bfs::new(0), Bfs::new(5)], g.num_vertices());
    let config = PtConfig::for_workload(&batch, Variant::RfAn, 3);
    let gpu = GpuConfig::test_tiny();
    let plain = run_workload(&gpu, &g, &batch, &config).unwrap();
    let policy = RecoveryPolicy {
        checkpoint_levels: 4,
        ..RecoveryPolicy::default()
    };
    let plan = FaultPlan::new().kill_wave(3, 0);
    let recovered = run_recoverable(&gpu, &g, &batch, &config, &policy, &plan).unwrap();
    assert!(
        !recovered.recovery.attempts.is_empty(),
        "the injected fault is survived, not dodged"
    );
    assert_eq!(recovered.values, plain.values);
}
