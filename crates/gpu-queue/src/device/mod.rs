//! Device-side queue variants for the SIMT simulator.
//!
//! A device queue lives in simulated global memory as three allocations:
//! the slot array (painted with the [`crate::DNA`] sentinel), and a
//! two-word state buffer holding `Front` and `Rear`. Host code sets it up
//! with [`QueueLayout::setup`]; kernels drive it through the
//! [`WaveQueue`] trait, one instance per wavefront (the instance holds the
//! wavefront's *private* scratch, e.g. the CAS variants' staged counter
//! reads — registers, in GPU terms).
//!
//! The queue is **non-wrapping**: `Front` and `Rear` increase monotonically
//! and the capacity must bound the total number of tokens ever enqueued
//! (for a graph traversal, the vertex count — each vertex is claimed
//! exactly once before being enqueued). This matches the paper's usage: buffers are sized by
//! the host before launch, and over-running the allocation raises the
//! queue-full exception, which *aborts* rather than retries. The paper's
//! "circular" formulation (modulus on `Front`/`Rear`) recycles slots only
//! after consumers restore the sentinel; the non-wrapping layout is the
//! same algorithm with the modulus elided, which is also exactly what the
//! persistent-thread driver needs.
//!
//! Dequeue-side lane states flow `Hungry → (Ready | Monitoring → Ready)`:
//! the CAS variants hand tokens out directly (or raise queue-empty
//! retries); the RF/AN variant always hands out a *slot to monitor* and
//! lets the lane poll for data arrival without atomics.

mod an;
mod base;
mod rfan;
mod rfonly;
mod segmented;
mod stealing;

pub use an::AnWaveQueue;
pub use base::BaseWaveQueue;
pub use rfan::RfAnWaveQueue;
pub use rfonly::RfOnlyWaveQueue;
pub use segmented::{SegmentedLayout, SegmentedWaveQueue};
pub use stealing::{StealingLayout, StealingWaveQueue};

use crate::{Variant, DNA};
use simt::{Buffer, DeviceMemory, WaveCtx};

/// Index of `Front` in the queue state buffer.
pub const FRONT: usize = 0;
/// Index of `Rear` in the queue state buffer.
pub const REAR: usize = 1;

/// Dequeue-side state of one lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LanePhase {
    /// Lane has no task and is not asking for one (initial state, or the
    /// kernel decided this lane should idle).
    Idle,
    /// Lane needs work: the next `acquire` will try to feed it.
    Hungry,
    /// RF/AN only: lane owns this queue slot and polls it for arrival.
    Monitoring(u32),
    /// Lane holds a task token, ready for the kernel to consume.
    Ready(u32),
}

/// Host-side handle to a device queue's allocations.
#[derive(Clone, Copy, Debug)]
pub struct QueueLayout {
    /// Slot array buffer (`capacity` words, sentinel-initialized).
    pub slots: Buffer,
    /// Two-word state buffer: `[Front, Rear]`.
    pub state: Buffer,
    /// Slot count; also the total-token bound (non-wrapping).
    pub capacity: u32,
}

impl QueueLayout {
    /// Allocates and initializes a queue in device memory under
    /// `name`-derived buffer names (`"<name>.slots"`, `"<name>.state"`).
    /// Every slot is painted with the `dna` sentinel; `Front = Rear = 0`.
    pub fn setup(memory: &mut DeviceMemory, name: &str, capacity: u32) -> QueueLayout {
        // Paint in one pass: `alloc_filled` skips the demand-zeroing a
        // plain `alloc` would do before the sentinel overwrote it anyway.
        let slots = memory.alloc_filled(&format!("{name}.slots"), capacity as usize, DNA);
        let state = memory.alloc(&format!("{name}.state"), 2);
        QueueLayout {
            slots,
            state,
            capacity,
        }
    }

    /// Host-side enqueue used to seed initial tasks before launch (the
    /// workload's seed tokens, e.g. a traversal's source vertex). Not a simulated operation — it models the host
    /// writing the buffer before `clEnqueueNDRangeKernel`.
    pub fn host_seed(&self, memory: &mut DeviceMemory, tokens: &[u32]) {
        let rear = memory.read_u32(self.state, REAR);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < DNA, "token {t:#x} collides with the dna sentinel");
            memory.write_u32(self.slots, rear as usize + i, t);
        }
        memory.write_u32(self.state, REAR, rear + tokens.len() as u32);
    }

    /// Host-side count of tokens currently stored (Rear − Front). Only
    /// meaningful between launches.
    pub fn host_len(&self, memory: &DeviceMemory) -> u32 {
        let front = memory.read_u32(self.state, FRONT);
        let rear = memory.read_u32(self.state, REAR);
        rear.saturating_sub(front)
    }
}

/// One wavefront's view of a device queue. Implementations hold the
/// wavefront-private scratch state; all cross-wavefront communication goes
/// through simulated device memory, so metrics capture every real memory
/// and atomic operation.
///
/// `Send` because kernels holding a queue handle are planned on engine
/// worker threads (see `simt::WaveKernel`); handles are plain
/// per-wavefront scratch, so the bound is free.
pub trait WaveQueue: Send {
    /// Which design this is.
    fn variant(&self) -> Variant;

    /// Services the dequeue side for one work cycle: tries to move
    /// `Hungry` lanes toward `Ready` (directly for the CAS designs, via
    /// `Monitoring` + data-arrival polling for RF/AN). Lanes the queue
    /// cannot feed this cycle stay `Hungry`/`Monitoring` and are counted
    /// as retries where the design retries.
    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]);

    /// Enqueues this wavefront's newly discovered task tokens. `tokens`
    /// is the concatenation of every lane's discoveries this work cycle
    /// (the per-lane counts having been aggregated with local atomics).
    /// Returns the number of tokens accepted; the remainder must be
    /// re-offered next cycle (the CAS designs may fail their reservation).
    /// RF/AN always accepts everything or aborts on queue-full.
    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize;

    /// If this wavefront's dequeue side is a *pure poll* — every lane is
    /// monitoring a slot, so the next `acquire` will re-execute an
    /// identical cycle until a watched word changes — registers
    /// stale-visibility park watches on the monitored in-bounds slots (see
    /// `WaveCtx::park_until_changed`) and returns `true`. Kernels combine
    /// this with their own watches (e.g. a pending-work counter) to let
    /// the engine skip the idle long tail cycle-exactly. Designs whose
    /// empty-queue cycle has side effects (CAS retries, steal scans) keep
    /// the default `false` and simply never park.
    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        let _ = (ctx, lanes);
        false
    }

    /// Plan-phase pickup prediction (DESIGN.md §12): if the next
    /// `acquire` is certain to hand the lane monitoring `slot` a token
    /// this round, returns that token. Round-stale slot visibility is
    /// frozen for the whole round, so RF/AN can predict exactly; designs
    /// without slot monitoring keep the default `None`. A planning hint
    /// only — implementations must not touch simulation-observable state.
    fn plan_token(&self, ctx: &simt::PlanCtx<'_>, slot: u32) -> Option<u32> {
        let _ = (ctx, slot);
        None
    }
}

/// Builds the per-wavefront queue handle for `variant`.
pub fn make_wave_queue(variant: Variant, layout: QueueLayout) -> Box<dyn WaveQueue> {
    match variant {
        Variant::Base => Box::new(BaseWaveQueue::new(layout)),
        Variant::An => Box::new(AnWaveQueue::new(layout)),
        Variant::RfAn => Box::new(RfAnWaveQueue::new(layout)),
        Variant::RfOnly => Box::new(RfOnlyWaveQueue::new(layout)),
        Variant::SegRfAn => panic!(
            "segmented variants use SegmentedLayout::setup + SegmentedWaveQueue::new \
             (the bounded QueueLayout cannot host a segmented ticket space)"
        ),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared harness: a producer/consumer kernel that pushes a fixed
    //! token stream through a queue variant and records what comes out.

    use super::*;
    use simt::{Engine, GpuConfig, Launch, WaveKernel, WaveStatus};
    use std::sync::{Arc, Mutex};

    /// Kernel: each wavefront dequeues tokens; every token `t` with
    /// `t < fanout_until` enqueues `children` child tokens derived from
    /// it. Records every consumed token. Terminates via a pending-task
    /// counter exactly like the persistent-thread driver.
    pub struct PumpKernel {
        pub queue: Box<dyn WaveQueue>,
        pub lanes: Vec<LanePhase>,
        pub pending: Buffer,
        pub consumed: Arc<Mutex<Vec<u32>>>,
        pub fanout_until: u32,
        pub children: u32,
        pub outbox: Vec<u32>,
        pub completed: u32,
    }

    impl WaveKernel for PumpKernel {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            // Mark idle lanes hungry.
            for l in self.lanes.iter_mut() {
                if *l == LanePhase::Idle {
                    *l = LanePhase::Hungry;
                }
            }
            self.queue.acquire(ctx, &mut self.lanes);
            // Work phase: consume ready tokens, discover children.
            for l in self.lanes.iter_mut() {
                if let LanePhase::Ready(tok) = *l {
                    self.consumed.lock().unwrap().push(tok);
                    if tok < self.fanout_until {
                        for c in 0..self.children {
                            self.outbox.push(tok * self.children + c + 1_000);
                        }
                    }
                    self.completed += 1;
                    *l = LanePhase::Idle;
                }
            }
            // Enqueue discoveries (pending += accepted).
            if !self.outbox.is_empty() {
                let accepted = self.queue.enqueue(ctx, &self.outbox);
                if accepted > 0 {
                    ctx.atomic_add(self.pending, 0, accepted as u32);
                    self.outbox.drain(..accepted);
                }
            }
            // Retire completions (batched, one atomic).
            if self.completed > 0 {
                ctx.atomic_sub(self.pending, 0, self.completed);
                self.completed = 0;
            }
            // Termination: no tasks in flight anywhere.
            let pending = ctx.global_read(self.pending, 0);
            if pending == 0 && self.outbox.is_empty() {
                WaveStatus::Done
            } else {
                WaveStatus::Active
            }
        }
    }

    /// Pushes `seeds` through `variant` with `wgs` workgroups; returns the
    /// sorted consumed tokens and the run metrics.
    pub fn pump(
        variant: Variant,
        seeds: &[u32],
        fanout_until: u32,
        children: u32,
        wgs: usize,
        capacity: u32,
    ) -> (Vec<u32>, simt::Metrics) {
        let mut engine = Engine::new(GpuConfig::test_tiny());
        let layout = QueueLayout::setup(engine.memory_mut(), "q", capacity);
        let pending = engine.memory_mut().alloc("pending", 1);
        layout.host_seed(engine.memory_mut(), seeds);
        engine
            .memory_mut()
            .write_u32(pending, 0, seeds.len() as u32);
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let wave_size = engine.config().wave_size;
        let report = engine
            .run(
                Launch::workgroups(wgs)
                    .with_max_rounds(2_000_000)
                    .with_audit(),
                |_info| PumpKernel {
                    queue: make_wave_queue(variant, layout),
                    lanes: vec![LanePhase::Idle; wave_size],
                    pending,
                    consumed: Arc::clone(&consumed),
                    fanout_until,
                    children,
                    outbox: Vec::new(),
                    completed: 0,
                },
            )
            .expect("pump kernel failed");
        let mut out = consumed.lock().unwrap().clone();
        out.sort_unstable();
        (out, report.metrics)
    }

    /// The token multiset a pump run must consume: seeds plus one child
    /// generation per seed below `fanout_until`.
    pub fn expected_tokens(seeds: &[u32], fanout_until: u32, children: u32) -> Vec<u32> {
        let mut expect: Vec<u32> = seeds.to_vec();
        for &s in seeds {
            if s < fanout_until {
                for c in 0..children {
                    expect.push(s * children + c + 1_000);
                }
            }
        }
        expect.sort_unstable();
        expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::DeviceMemory;

    #[test]
    fn setup_paints_sentinels() {
        let mut mem = DeviceMemory::new();
        let q = QueueLayout::setup(&mut mem, "q", 8);
        assert_eq!(q.capacity, 8);
        assert!(mem.read_slice(q.slots).iter().all(|&w| w == DNA));
        assert_eq!(mem.read_u32(q.state, FRONT), 0);
        assert_eq!(mem.read_u32(q.state, REAR), 0);
    }

    #[test]
    fn host_seed_advances_rear() {
        let mut mem = DeviceMemory::new();
        let q = QueueLayout::setup(&mut mem, "q", 8);
        q.host_seed(&mut mem, &[5, 6]);
        assert_eq!(mem.read_u32(q.state, REAR), 2);
        assert_eq!(mem.read_u32(q.slots, 0), 5);
        assert_eq!(mem.read_u32(q.slots, 1), 6);
        assert_eq!(q.host_len(&mem), 2);
    }

    #[test]
    #[should_panic(expected = "dna sentinel")]
    fn host_seed_rejects_sentinel_token() {
        let mut mem = DeviceMemory::new();
        let q = QueueLayout::setup(&mut mem, "q", 4);
        q.host_seed(&mut mem, &[DNA]);
    }

    #[test]
    fn make_wave_queue_dispatches() {
        let mut mem = DeviceMemory::new();
        let layout = QueueLayout::setup(&mut mem, "q", 4);
        for v in Variant::MATRIX {
            assert_eq!(make_wave_queue(v, layout).variant(), v);
        }
    }
}
