//! RF-only ablation variant: retry-free *without* arbitrary-n.
//!
//! The paper dissects its design with BASE → AN → RF/AN, which isolates
//! the retry-free property (AN vs RF/AN) and the arbitrary-n property
//! (BASE vs AN) — but always adds batching first. This extra variant
//! completes the 2×2 matrix: fetch-add reservations with the *dna*
//! sentinel (never fails, never raises queue-empty) but **one global
//! atomic per lane / per token** instead of one per wavefront.
//!
//! Comparing RF-only against RF/AN isolates the proxy-thread aggregation
//! on a retry-free substrate: the difference is pure atomic-traffic
//! volume and serialization pressure, with zero retry effects in either.

use super::{LanePhase, QueueLayout, WaveQueue, FRONT, REAR};
use crate::{Variant, DNA};
use simt::{AbortReason, OpSpec, WaveCtx};

/// Per-wavefront handle to an RF-only device queue.
#[derive(Clone, Debug)]
pub struct RfOnlyWaveQueue {
    layout: QueueLayout,
    /// Monitored-slot scratch reused across work cycles.
    watched: Vec<u32>,
}

impl RfOnlyWaveQueue {
    /// Creates the per-wavefront handle.
    pub fn new(layout: QueueLayout) -> Self {
        RfOnlyWaveQueue {
            layout,
            watched: Vec::new(),
        }
    }
}

impl WaveQueue for RfOnlyWaveQueue {
    fn variant(&self) -> Variant {
        Variant::RfOnly
    }

    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]) {
        // Per-lane reservation: every hungry lane issues its own global
        // AFA in lock-step — they all succeed (AFA never fails), but each
        // occupies an issue slot and a place in the serialization queue.
        // Retry-free without arbitrary-n: exactly one AFA *per hungry
        // lane*, never a CAS, never a retry.
        let hungry = lanes.iter().filter(|l| **l == LanePhase::Hungry).count() as u64;
        ctx.audit_begin(OpSpec::new("RF-only", "acquire").afa_exact(hungry));
        for lane in lanes.iter_mut() {
            if *lane == LanePhase::Hungry {
                let slot = ctx.atomic_add(self.layout.state, FRONT, 1);
                ctx.count_scheduler_atomics(1);
                *lane = LanePhase::Monitoring(slot);
            }
        }

        // Data-arrival poll, identical to RF/AN (the sentinel protocol is
        // what makes per-lane reservation safe at all).
        self.watched.clear();
        self.watched.extend(lanes.iter().filter_map(|l| match *l {
            LanePhase::Monitoring(slot) if slot < self.layout.capacity => Some(slot),
            _ => None,
        }));
        self.watched.sort_unstable();
        let watched = &self.watched;
        let mut cached_lines = 0u64;
        let mut i = 0;
        while i < watched.len() {
            let line = watched[i] / 16;
            let mut any_data = false;
            let run_start = i;
            while i < watched.len() && watched[i] / 16 == line {
                if ctx.peek_stale(self.layout.slots, watched[i] as usize) != DNA {
                    any_data = true;
                }
                i += 1;
            }
            if any_data {
                let start = watched[run_start] as usize;
                let len = (watched[i - 1] - watched[run_start] + 1) as usize;
                ctx.charge_coalesced_access(self.layout.slots, start, len);
            } else {
                cached_lines += 1;
            }
        }
        ctx.charge_cached_access(cached_lines);
        for lane in lanes.iter_mut() {
            if let LanePhase::Monitoring(slot) = *lane {
                ctx.charge_alu(1);
                if slot < self.layout.capacity {
                    let value = ctx.peek_stale(self.layout.slots, slot as usize);
                    if value != DNA {
                        ctx.poke(self.layout.slots, slot as usize, DNA);
                        *lane = LanePhase::Ready(value);
                    }
                }
            }
        }
        ctx.audit_end();
    }

    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize {
        if tokens.is_empty() {
            return 0;
        }
        // One AFA per token — no proxy aggregation.
        ctx.audit_begin(OpSpec::new("RF-only", "enqueue").afa_exact(tokens.len() as u64));
        for &tok in tokens {
            debug_assert!(tok < DNA);
            let slot = ctx.atomic_add(self.layout.state, REAR, 1) as usize;
            ctx.count_scheduler_atomics(1);
            if slot >= self.layout.capacity as usize {
                ctx.abort(AbortReason::QueueFull {
                    requested: slot as u64,
                    capacity: self.layout.capacity,
                });
                return 0;
            }
            let current = ctx.global_read_lane(self.layout.slots, slot);
            if current != DNA {
                ctx.abort(AbortReason::QueueFull {
                    requested: slot as u64,
                    capacity: self.layout.capacity,
                });
                return 0;
            }
            ctx.global_write_lane(self.layout.slots, slot, tok);
        }
        ctx.audit_end();
        tokens.len()
    }

    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        // Same pure-poll contract as RF/AN: every lane monitoring, watches
        // on the in-bounds slots only (out-of-bounds slots are never read).
        if !lanes.iter().all(|l| matches!(l, LanePhase::Monitoring(_))) {
            return false;
        }
        for lane in lanes {
            if let LanePhase::Monitoring(slot) = *lane {
                if slot < self.layout.capacity {
                    ctx.park_until_changed(self.layout.slots, slot as usize);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{expected_tokens, pump};
    use crate::Variant;

    #[test]
    fn pump_delivers_every_token_exactly_once() {
        let seeds: Vec<u32> = (0..13).collect();
        let (consumed, _) = pump(Variant::RfOnly, &seeds, 13, 3, 2, 256);
        assert_eq!(consumed, expected_tokens(&seeds, 13, 3));
    }

    #[test]
    fn retry_free_like_rfan() {
        let seeds: Vec<u32> = (0..20).collect();
        let (_, metrics) = pump(Variant::RfOnly, &seeds, 20, 2, 4, 256);
        assert_eq!(metrics.cas_attempts, 0);
        assert_eq!(metrics.queue_empty_retries, 0);
    }

    #[test]
    fn many_more_atomics_than_rfan() {
        let seeds: Vec<u32> = (0..32).collect();
        let (_, rfonly) = pump(Variant::RfOnly, &seeds, 32, 2, 4, 512);
        let (_, rfan) = pump(Variant::RfAn, &seeds, 32, 2, 4, 512);
        assert!(
            rfonly.global_atomics > 2 * rfan.global_atomics,
            "RF-only {} vs RF/AN {}",
            rfonly.global_atomics,
            rfan.global_atomics
        );
    }

    #[test]
    fn multi_wave_contention_is_correct() {
        let seeds: Vec<u32> = (0..40).collect();
        let (consumed, _) = pump(Variant::RfOnly, &seeds, 40, 2, 4, 512);
        assert_eq!(consumed, expected_tokens(&seeds, 40, 2));
    }
}
