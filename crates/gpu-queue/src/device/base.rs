//! The BASE variant: a traditional lock-free CAS queue with neither the
//! retry-free nor the arbitrary-n property (paper §5.3).
//!
//! Every thread performs its own queue operation: a hungry lane CASes
//! `Front` forward by one to claim a slot; a lane with a discovery CASes
//! `Rear` forward by one per token. Two penalties follow:
//!
//! * **64× the scheduler atomics** — one reservation per *lane* instead of
//!   one per wavefront, all landing on the same counter word, which lives
//!   in a single L2 slice. Same-word atomics serialize device-wide
//!   ([`simt::CostModel::hot_word_milli`]); no amount of occupancy hides
//!   a saturated slice, which is why BASE's speedup curve flattens while
//!   the proxy designs keep scaling (Figure 4).
//! * **Retries** — a lane's read-to-CAS window can be invalidated by any
//!   other wavefront's reservation. Each intervening success costs one
//!   failed attempt (counted, and charged to the hot word); failures
//!   therefore grow with the number of active wavefronts (Figure 1). On
//!   an empty queue, dequeue raises the queue-empty exception and retries
//!   next work cycle — there is no sentinel protocol to refactor it away.
//!
//! Within a work cycle the lanes' queue operations are staggered by their
//! divergent progress (degrees differ), so in the common case each lane's
//! CAS sees a fresh counter value and succeeds — the paper's BASE is slow
//! because of *where* its atomics go, not because every attempt is wasted.

use super::{LanePhase, QueueLayout, WaveQueue, FRONT, REAR};
use crate::{Variant, DNA};
use simt::{AbortReason, OpSpec, WaveCtx};

/// Per-wavefront handle to a BASE device queue.
#[derive(Clone, Debug)]
pub struct BaseWaveQueue {
    layout: QueueLayout,
    /// Version of `Front` at this wavefront's previous dequeue visit —
    /// mutations since then each invalidated one lane's read-to-CAS window.
    front_seen: Option<u64>,
    /// Version of `Rear` at the previous enqueue visit.
    rear_seen: Option<u64>,
}

impl BaseWaveQueue {
    /// Creates the per-wavefront handle.
    pub fn new(layout: QueueLayout) -> Self {
        BaseWaveQueue {
            layout,
            front_seen: None,
            rear_seen: None,
        }
    }
}

impl WaveQueue for BaseWaveQueue {
    fn variant(&self) -> Variant {
        Variant::Base
    }

    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]) {
        let hungry: Vec<usize> = lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == LanePhase::Hungry)
            .map(|(i, _)| i)
            .collect();
        if hungry.is_empty() {
            return;
        }
        // BASE's budget is the anti-claim: never an AFA (reservations are
        // all CAS), but the per-lane CAS count depends on occupancy and
        // staleness, so it stays unconstrained.
        ctx.audit_begin(
            OpSpec::new("BASE", "acquire")
                .any_cas()
                .allow_empty_retries(),
        );

        let version = ctx.atomic_version(self.layout.state, FRONT);
        let delta = self
            .front_seen
            .map(|seen| version.saturating_sub(seen))
            .unwrap_or(0);

        // Each hungry lane claims one slot with its own CAS. Lanes are
        // staggered by divergent progress, so each sees a fresh counter.
        // Lanes that find the queue empty raise the queue-empty exception
        // *without* attempting a CAS (Front == Rear is checked first).
        let rear = ctx.global_read_stale(self.layout.state, REAR);
        let mut front = ctx.global_read(self.layout.state, FRONT);
        let mut served = 0usize;
        #[allow(clippy::explicit_counter_loop)] // `front` is device state, not a counter
        for &lane in &hungry {
            if front >= rear {
                break;
            }
            let observed = ctx.atomic_cas(self.layout.state, FRONT, front, front + 1);
            ctx.count_scheduler_atomics(1);
            debug_assert_eq!(observed, front, "fresh per-lane CAS wins in-sim");
            let tok = ctx.global_read_lane(self.layout.slots, front as usize);
            debug_assert_ne!(tok, DNA, "BASE dequeued an unwritten slot");
            lanes[lane] = LanePhase::Ready(tok);
            front += 1;
            served += 1;
        }
        if served < hungry.len() {
            // Queue-empty exception: the rest retry next work cycle.
            ctx.count_queue_empty_retries((hungry.len() - served) as u64);
        }

        // Cross-wavefront staleness: reservations that landed since our
        // last visit invalidated read-to-CAS windows of lanes that DID see
        // tokens — each costs one wasted attempt before its re-read.
        let wasted = delta.min(served as u64 + u64::from(served > 0));
        for _ in 0..wasted {
            // A CAS whose expected value cannot match: executed and
            // counted (attempt + failure), no memory effect.
            ctx.atomic_cas(self.layout.state, FRONT, DNA, DNA);
        }
        ctx.count_scheduler_atomics(wasted);
        self.front_seen = Some(ctx.atomic_version(self.layout.state, FRONT));
        ctx.audit_end();
    }

    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        // Same pure-poll shape as AN: an empty-queue cycle serves zero
        // lanes, so no per-lane CAS fires and no staleness attempts are
        // wasted (`wasted = delta.min(served + 0) = 0`) — the cycle only
        // reads `Front` (fresh) and `Rear` (stale), both strictly
        // monotonic, so value watches are exact.
        if !lanes.iter().all(|l| matches!(l, LanePhase::Hungry)) {
            return false;
        }
        ctx.park_until_changed_now(self.layout.state, FRONT);
        ctx.park_until_changed(self.layout.state, REAR);
        true
    }

    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize {
        if tokens.is_empty() {
            return 0;
        }
        ctx.audit_begin(OpSpec::new("BASE", "enqueue").any_cas());
        // Staleness-wasted attempts, as on the dequeue side (halved:
        // enqueues visit the counter less often than dequeue polls).
        let version = ctx.atomic_version(self.layout.state, REAR);
        if let Some(seen) = self.rear_seen {
            let wasted = version.saturating_sub(seen).min(tokens.len() as u64 + 1) / 2;
            for _ in 0..wasted {
                ctx.atomic_cas(self.layout.state, REAR, DNA, DNA);
            }
            ctx.count_scheduler_atomics(wasted);
        }

        // One CAS per token, at most a wavefront's worth per work cycle
        // (each lane pushes one discovery per cycle).
        let mut rear = ctx.global_read(self.layout.state, REAR);
        let budget = tokens.len().min(ctx.wave_size());
        let mut accepted = 0usize;
        while accepted < budget {
            if rear as usize >= self.layout.capacity as usize {
                ctx.abort(AbortReason::QueueFull {
                    requested: rear as u64,
                    capacity: self.layout.capacity,
                });
                return accepted;
            }
            let observed = ctx.atomic_cas(self.layout.state, REAR, rear, rear + 1);
            ctx.count_scheduler_atomics(1);
            debug_assert_eq!(observed, rear);
            ctx.global_write_lane(self.layout.slots, rear as usize, tokens[accepted]);
            accepted += 1;
            rear += 1;
        }
        self.rear_seen = Some(ctx.atomic_version(self.layout.state, REAR));
        ctx.audit_end();
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{expected_tokens, pump};
    use crate::Variant;

    #[test]
    fn pump_delivers_every_token_exactly_once() {
        let seeds: Vec<u32> = (0..13).collect();
        let (consumed, _) = pump(Variant::Base, &seeds, 13, 3, 2, 256);
        assert_eq!(consumed, expected_tokens(&seeds, 13, 3));
    }

    #[test]
    fn multi_wave_contention_is_correct() {
        let seeds: Vec<u32> = (0..40).collect();
        let (consumed, _) = pump(Variant::Base, &seeds, 40, 2, 4, 512);
        assert_eq!(consumed, expected_tokens(&seeds, 40, 2));
    }

    #[test]
    fn one_scheduler_atomic_per_token_when_uncontended() {
        // Single wave, seeds pre-enqueued by the host: exactly one dequeue
        // CAS per consumed token, zero failures.
        let seeds: Vec<u32> = (0..16).collect();
        let (consumed, metrics) = pump(Variant::Base, &seeds, 0, 0, 1, 64);
        assert_eq!(consumed.len(), 16);
        assert_eq!(metrics.cas_failures, 0, "uncontended BASE never fails");
        assert_eq!(metrics.scheduler_atomics, 16);
    }

    #[test]
    fn far_more_scheduler_atomics_than_rfan() {
        let seeds: Vec<u32> = (0..32).collect();
        let (_, base) = pump(Variant::Base, &seeds, 32, 2, 4, 512);
        let (_, rfan) = pump(Variant::RfAn, &seeds, 32, 2, 4, 512);
        assert!(
            base.scheduler_atomics > 3 * rfan.scheduler_atomics,
            "BASE {} vs RF/AN {}",
            base.scheduler_atomics,
            rfan.scheduler_atomics
        );
    }

    #[test]
    fn empty_queue_raises_retries() {
        let (consumed, metrics) = pump(Variant::Base, &[1, 2], 0, 0, 4, 64);
        assert_eq!(consumed, vec![1, 2]);
        assert!(metrics.queue_empty_retries > 0);
    }

    #[test]
    fn contention_generates_cas_failures() {
        let seeds: Vec<u32> = (0..64).collect();
        let (_, metrics) = pump(Variant::Base, &seeds, 64, 2, 4, 1024);
        assert!(
            metrics.cas_failures > 0,
            "contended BASE should waste attempts"
        );
    }

    #[test]
    fn makespan_at_least_rfan_under_load() {
        let seeds: Vec<u32> = (0..48).collect();
        let (_, base) = pump(Variant::Base, &seeds, 48, 3, 4, 1024);
        let (_, rfan) = pump(Variant::RfAn, &seeds, 48, 3, 4, 1024);
        assert!(
            base.makespan_cycles >= rfan.makespan_cycles,
            "BASE {} cycles vs RF/AN {}",
            base.makespan_cycles,
            rfan.makespan_cycles
        );
    }
}
