//! Segmented RF/AN device queue: the bounded retry-free ring, unrolled
//! into linked segments so the queue-full abort disappears (ROADMAP item
//! 3; linearization argument in DESIGN.md §13).
//!
//! The ticket space stays a single non-wrapping pair of `Front`/`Rear`
//! counters — the AFA fast path of [`super::RfAnWaveQueue`] is unchanged.
//! What changes is the *storage* behind a ticket: ticket `t` lives in
//! virtual segment `t / seg_cap`, and a **directory ring** maps virtual
//! segments to physical segments of a fixed arena. A producer whose
//! reservation reaches a segment boundary pops a physical segment from the
//! recycled-segment **pool** and publishes the mapping with a single plain
//! store into the directory — the segment-handoff linearization point; no
//! CAS anywhere on the path. The consumer that picks up a segment's last
//! token retires it: the directory entry is cleared and the physical
//! segment returns to the pool (every slot holds the `dna` sentinel again,
//! because pickups restore it), ready to be re-published under a later
//! virtual segment.
//!
//! Memory is therefore bounded by *live occupancy* (plus the reserve-ahead
//! slack of hungry lanes), not lifetime enqueues: a traversal that
//! enqueues millions of tokens runs in an arena of `phys_segs * seg_cap`
//! words as long as no more than that many tokens are simultaneously
//! in flight. If live occupancy does exceed the arena, producers see an
//! empty pool, accept a partial batch, and re-offer the remainder next
//! cycle — backpressure, never an abort; a workload whose live frontier
//! permanently exceeds the arena would spin until the launch's
//! `max_rounds` guard trips, which is the honest failure mode (the
//! bounded queues would have aborted far earlier, on *lifetime* overflow).
//!
//! Directory entries are generation-tagged (`entry = (seg / dir_len) *
//! phys_segs + phys`) so a consumer holding a ticket for virtual segment
//! `v` can tell whether ring slot `v % dir_len` currently maps `v` or some
//! other segment that shares the slot — the classic ABA guard, paid for
//! with arithmetic instead of wide atomics. `dir_len > phys_segs` keeps a
//! drained slot available whenever the pool is non-empty in the common
//! in-order case.
//!
//! Two simulator-honesty notes. First, work cycles execute atomically, so
//! the enqueue's read-`Rear`-then-reserve sequence is exact here; the
//! genuinely interleaved protocol (where the install and the reservation
//! of another producer race) is modelled and model-checked by the host
//! mirror's single-step FSM shims under the interleaving explorer. Second,
//! `Front`/`Rear` remain `u32` words like every other state word:
//! segmentation removes the memory bound, not the 2^32 ticket-arithmetic
//! bound.

use super::{LanePhase, WaveQueue, FRONT, REAR};
use crate::{Variant, DNA};
use simt::{Buffer, DeviceMemory, OpSpec, WaveCtx};

/// Host-side handle to a segmented device queue's allocations.
#[derive(Clone, Copy, Debug)]
pub struct SegmentedLayout {
    /// Physical slot arena: `phys_segs * seg_cap` words, sentinel-painted.
    pub slots: Buffer,
    /// Two-word state buffer: `[Front, Rear]` (shared ticket space).
    pub state: Buffer,
    /// Directory ring: `dir_len` generation-tagged entries (`dna` = empty).
    pub dir: Buffer,
    /// Per-ring-slot consumed counters (`dir_len` words): a segment whose
    /// counter reaches `seg_cap` is fully drained and retires.
    pub consumed: Buffer,
    /// Recycled-segment pool: `[count, entries...]` (`1 + phys_segs` words).
    pub pool: Buffer,
    /// Slots per segment.
    pub seg_cap: u32,
    /// Physical segments in the arena.
    pub phys_segs: u32,
    /// Directory ring length (`phys_segs + 2`).
    pub dir_len: u32,
}

impl SegmentedLayout {
    /// Allocates and initializes a segmented queue in device memory under
    /// `name`-derived buffer names. All arena slots are sentinel-painted,
    /// the directory is empty, and the pool holds every physical segment.
    pub fn setup(
        memory: &mut DeviceMemory,
        name: &str,
        seg_cap: u32,
        phys_segs: u32,
    ) -> SegmentedLayout {
        assert!(seg_cap > 0 && phys_segs > 0);
        let dir_len = phys_segs + 2;
        // The poll and park paths track touched ring slots in a u64 mask.
        assert!(dir_len <= 64, "directory ring longer than the probe mask");
        let slots = memory.alloc_filled(
            &format!("{name}.slots"),
            (phys_segs * seg_cap) as usize,
            DNA,
        );
        let state = memory.alloc(&format!("{name}.state"), 2);
        let dir = memory.alloc_filled(&format!("{name}.dir"), dir_len as usize, DNA);
        let consumed = memory.alloc(&format!("{name}.consumed"), dir_len as usize);
        let pool = memory.alloc(&format!("{name}.pool"), 1 + phys_segs as usize);
        memory.write_u32(pool, 0, phys_segs);
        for i in 1..=phys_segs {
            // Stack order: the first pop hands out physical segment 0.
            memory.write_u32(pool, i as usize, phys_segs - i);
        }
        SegmentedLayout {
            slots,
            state,
            dir,
            consumed,
            pool,
            seg_cap,
            phys_segs,
            dir_len,
        }
    }

    /// Sizes a segmented queue to match a bounded queue of `capacity`
    /// slots: the arena is `~1.25x capacity` split into segments an eighth
    /// of `capacity` each, so typical workloads exercise several installs
    /// and recycles while live occupancy keeps comfortable headroom.
    pub fn for_capacity(memory: &mut DeviceMemory, name: &str, capacity: u32) -> SegmentedLayout {
        let seg_cap = (capacity / 8).max(32);
        SegmentedLayout::setup(memory, name, seg_cap, 10)
    }

    /// Directory entry for virtual segment `seg` mapped to `phys`.
    fn encode(&self, seg: u32, phys: u32) -> u32 {
        (seg / self.dir_len) * self.phys_segs + phys
    }

    /// Physical segment currently mapped for `seg`, if its ring slot holds
    /// an entry of the matching generation.
    fn decode(&self, entry: u32, seg: u32) -> Option<u32> {
        if entry == DNA {
            return None;
        }
        (entry / self.phys_segs == seg / self.dir_len).then_some(entry % self.phys_segs)
    }

    /// Ring slot of virtual segment `seg`.
    fn ring_slot(&self, seg: u32) -> usize {
        (seg % self.dir_len) as usize
    }

    /// Arena word index of ticket `ticket` under mapping `phys`.
    fn arena_addr(&self, phys: u32, ticket: u32) -> usize {
        (phys * self.seg_cap + ticket % self.seg_cap) as usize
    }

    /// Host-side enqueue used to seed initial tasks before launch,
    /// installing segments as the seed tokens cross boundaries. Models the
    /// host writing buffers before launch, exactly like
    /// [`super::QueueLayout::host_seed`].
    pub fn host_seed(&self, memory: &mut DeviceMemory, tokens: &[u32]) {
        let rear = memory.read_u32(self.state, REAR);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < DNA, "token {t:#x} collides with the dna sentinel");
            let ticket = rear + i as u32;
            let seg = ticket / self.seg_cap;
            let r = self.ring_slot(seg);
            let entry = memory.read_u32(self.dir, r);
            let phys = match self.decode(entry, seg) {
                Some(p) => p,
                None => {
                    assert_eq!(entry, DNA, "host_seed: directory ring slot busy");
                    let count = memory.read_u32(self.pool, 0);
                    assert!(count > 0, "host_seed: segment pool exhausted");
                    let p = memory.read_u32(self.pool, count as usize);
                    memory.write_u32(self.pool, 0, count - 1);
                    memory.write_u32(self.dir, r, self.encode(seg, p));
                    p
                }
            };
            memory.write_u32(self.slots, self.arena_addr(phys, ticket), t);
        }
        memory.write_u32(self.state, REAR, rear + tokens.len() as u32);
    }

    /// Host-side count of tokens currently stored (Rear − Front). Only
    /// meaningful between launches.
    pub fn host_len(&self, memory: &DeviceMemory) -> u32 {
        let front = memory.read_u32(self.state, FRONT);
        let rear = memory.read_u32(self.state, REAR);
        rear.saturating_sub(front)
    }

    /// Host-side count of currently installed (not yet retired) segments.
    pub fn host_live_segments(&self, memory: &DeviceMemory) -> u32 {
        (0..self.dir_len as usize)
            .filter(|&r| memory.read_u32(self.dir, r) != DNA)
            .count() as u32
    }
}

/// Per-wavefront handle to a segmented RF/AN device queue.
#[derive(Clone, Debug)]
pub struct SegmentedWaveQueue {
    layout: SegmentedLayout,
    /// Mapped arena addresses of monitored slots, reused across cycles.
    watched: Vec<u32>,
    /// Per-ring-slot pickup counts for this cycle's consumed accounting.
    pickups: Vec<u32>,
}

impl SegmentedWaveQueue {
    /// Creates the per-wavefront handle.
    pub fn new(layout: SegmentedLayout) -> Self {
        SegmentedWaveQueue {
            layout,
            watched: Vec::new(),
            pickups: Vec::new(),
        }
    }
}

impl WaveQueue for SegmentedWaveQueue {
    fn variant(&self) -> Variant {
        Variant::SegRfAn
    }

    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]) {
        let lt = &self.layout;
        let hungry = lanes.iter().filter(|l| **l == LanePhase::Hungry).count() as u32;
        // Budget is decided mid-flight (`audit_expect_afa` below): one AFA
        // iff any lane is hungry, one consumed-counter AFA per segment
        // with pickups, two more per retirement. Never a CAS.
        ctx.audit_begin(OpSpec::new("SEG-RF/AN", "acquire"));
        let mut afa = 0u64;
        if hungry > 0 {
            // Identical to RF/AN Listing 1: local aggregation, then the
            // proxy thread's single global AFA on Front.
            ctx.charge_alu(1);
            ctx.lds_atomics(u64::from(hungry));
            let base = ctx.atomic_add(lt.state, FRONT, hungry);
            afa += 1;
            ctx.count_scheduler_atomics(1);
            let mut next = base;
            for lane in lanes.iter_mut() {
                if *lane == LanePhase::Hungry {
                    *lane = LanePhase::Monitoring(next);
                    next += 1;
                }
            }
        }

        // ---- data-arrival poll: stale directory, then stale slots ----
        // The directory is a handful of words: probes of distinct ring
        // slots coalesce into cache-resident lines.
        self.watched.clear();
        let mut probed = 0u64;
        let mut dir_lines = 0u64;
        for l in lanes.iter() {
            if let LanePhase::Monitoring(slot) = *l {
                let seg = slot / lt.seg_cap;
                let r = lt.ring_slot(seg);
                let line_bit = 1u64 << (r / 16);
                if probed & line_bit == 0 {
                    dir_lines += 1;
                }
                probed |= line_bit;
                let entry = ctx.peek_stale(lt.dir, r);
                if let Some(phys) = lt.decode(entry, seg) {
                    self.watched.push(lt.arena_addr(phys, slot) as u32);
                }
            }
        }
        ctx.charge_cached_access(dir_lines);
        // Mapped slots poll exactly like the bounded RF/AN: one
        // transaction per line with arrived data, cached otherwise.
        self.watched.sort_unstable();
        let watched = &self.watched;
        let mut cached_lines = 0u64;
        let mut i = 0;
        while i < watched.len() {
            let line = watched[i] / 16;
            let mut any_data = false;
            let run_start = i;
            while i < watched.len() && watched[i] / 16 == line {
                if ctx.peek_stale(lt.slots, watched[i] as usize) != DNA {
                    any_data = true;
                }
                i += 1;
            }
            if any_data {
                let start = watched[run_start] as usize;
                let len = (watched[i - 1] - watched[run_start] + 1) as usize;
                ctx.charge_coalesced_access(lt.slots, start, len);
            } else {
                cached_lines += 1;
            }
        }
        ctx.charge_cached_access(cached_lines);

        self.pickups.clear();
        self.pickups.resize(lt.dir_len as usize, 0);
        for lane in lanes.iter_mut() {
            if let LanePhase::Monitoring(slot) = *lane {
                ctx.charge_alu(1); // segment-mapping check
                let seg = slot / lt.seg_cap;
                let r = lt.ring_slot(seg);
                let entry = ctx.peek_stale(lt.dir, r);
                if let Some(phys) = lt.decode(entry, seg) {
                    let addr = lt.arena_addr(phys, slot);
                    let value = ctx.peek_stale(lt.slots, addr);
                    if value != DNA {
                        // Private pickup: restore the sentinel, no atomics
                        // — the recycled segment is born sentinel-clean.
                        ctx.poke(lt.slots, addr, DNA);
                        *lane = LanePhase::Ready(value);
                        self.pickups[r] += 1;
                    }
                }
                // Slots of not-yet-installed segments are never read: the
                // mapping arrives before any data can.
            }
        }

        // ---- consumed accounting + retirement ----
        // One AFA per touched segment (arbitrary-n on the drain side). The
        // wave whose add completes the count retires the segment: clear
        // the mapping, return the physical segment to the pool. A lane of
        // this wave holds one of the final pickups, so the segment cannot
        // have retired concurrently — the counter belongs to this mapping.
        for r in 0..lt.dir_len as usize {
            let cnt = self.pickups[r];
            if cnt == 0 {
                continue;
            }
            let total = ctx.atomic_add(lt.consumed, r, cnt) + cnt;
            afa += 1;
            ctx.count_scheduler_atomics(1);
            if total == lt.seg_cap {
                ctx.poke(lt.consumed, r, 0);
                let entry = ctx.atomic_exchange(lt.dir, r, DNA);
                afa += 1;
                let old = ctx.atomic_add(lt.pool, 0, 1);
                afa += 1;
                ctx.poke(lt.pool, (old + 1) as usize, entry % lt.phys_segs);
                ctx.charge_cached_access(1);
                ctx.count_scheduler_atomics(2);
            }
        }
        ctx.audit_expect_afa(afa);
        ctx.audit_end();
    }

    fn plan_token(&self, ctx: &simt::PlanCtx<'_>, slot: u32) -> Option<u32> {
        // Mirrors the pickup arm of `acquire` exactly: stale directory
        // probe, generation check, stale slot read. Stale visibility is
        // frozen for the round, so Some(v) is a certainty.
        let lt = &self.layout;
        let seg = slot / lt.seg_cap;
        let entry = ctx.peek_stale(lt.dir, lt.ring_slot(seg))?;
        let phys = lt.decode(entry, seg)?;
        let value = ctx.peek_stale(lt.slots, lt.arena_addr(phys, slot))?;
        (value != DNA).then_some(value)
    }

    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize {
        if tokens.is_empty() {
            return 0;
        }
        let lt = &self.layout;
        // One AFA on Rear per touched segment, one pool AFA per install;
        // the directory publish itself is a plain store. Never a CAS.
        ctx.audit_begin(OpSpec::new("SEG-RF/AN", "enqueue"));
        ctx.charge_alu(1);
        ctx.lds_atomics(tokens.len() as u64);
        let mut afa = 0u64;
        let mut accepted = 0usize;
        while accepted < tokens.len() {
            let rear = ctx.global_read(lt.state, REAR);
            let seg = rear / lt.seg_cap;
            let off = rear % lt.seg_cap;
            let r = lt.ring_slot(seg);
            let entry = ctx.peek(lt.dir, r);
            ctx.charge_cached_access(1); // directory probe
            let phys = match lt.decode(entry, seg) {
                Some(p) => p,
                None => {
                    if entry != DNA {
                        // Ring slot still held by an undrained old
                        // segment: accept what we have, re-offer the rest.
                        break;
                    }
                    let count = ctx.peek(lt.pool, 0);
                    if count == 0 {
                        // Arena exhausted: backpressure, never an abort.
                        break;
                    }
                    let old = ctx.atomic_sub(lt.pool, 0, 1);
                    afa += 1;
                    ctx.count_scheduler_atomics(1);
                    let p = ctx.peek(lt.pool, old as usize);
                    // The segment-handoff linearization point: one plain
                    // store publishes the fresh mapping.
                    ctx.poke(lt.dir, r, lt.encode(seg, p));
                    ctx.charge_cached_access(1);
                    p
                }
            };
            // Reserve up to the segment boundary; the install above
            // guarantees every reserved ticket has installed storage.
            let take = (tokens.len() - accepted).min((lt.seg_cap - off) as usize);
            let got = ctx.atomic_add(lt.state, REAR, take as u32);
            debug_assert_eq!(got, rear, "work cycles are atomic");
            afa += 1;
            ctx.count_scheduler_atomics(1);
            let base = lt.arena_addr(phys, rear);
            ctx.charge_coalesced_access(lt.slots, base, take); // check
            ctx.charge_coalesced_access(lt.slots, base, take); // copy
            for i in 0..take {
                let tok = tokens[accepted + i];
                debug_assert!(tok < DNA, "token collides with dna sentinel");
                debug_assert_eq!(
                    ctx.peek(lt.slots, base + i),
                    DNA,
                    "recycled segment handed out before fully drained"
                );
                ctx.poke(lt.slots, base + i, tok);
            }
            accepted += take;
        }
        ctx.audit_expect_afa(afa);
        ctx.audit_end();
        accepted
    }

    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        // Pure poll requires every lane Monitoring, as in RF/AN. The poll
        // outcome is a function of the stale directory entries and the
        // stale mapped-slot words, so the wave parks on exactly those: an
        // install or retirement wakes it through the directory word, a
        // data arrival through the slot word.
        let lt = &self.layout;
        if !lanes.iter().all(|l| matches!(l, LanePhase::Monitoring(_))) {
            return false;
        }
        let mut parked = 0u64;
        for lane in lanes {
            if let LanePhase::Monitoring(slot) = *lane {
                let seg = slot / lt.seg_cap;
                let r = lt.ring_slot(seg);
                if parked & (1 << r) == 0 {
                    parked |= 1 << r;
                    ctx.park_until_changed(lt.dir, r);
                }
                let entry = ctx.peek_stale(lt.dir, r);
                if let Some(phys) = lt.decode(entry, seg) {
                    ctx.park_until_changed(lt.slots, lt.arena_addr(phys, slot));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{expected_tokens, PumpKernel};
    use super::super::LanePhase;
    use super::{SegmentedLayout, SegmentedWaveQueue};
    use crate::DNA;
    use simt::{DeviceMemory, Engine, GpuConfig, Launch};
    use std::sync::{Arc, Mutex};

    /// Segmented twin of `testutil::pump`: pushes `seeds` through a
    /// segmented queue with a deliberately tiny arena.
    fn pump_seg(
        seeds: &[u32],
        fanout_until: u32,
        children: u32,
        wgs: usize,
        seg_cap: u32,
        phys_segs: u32,
    ) -> (Vec<u32>, simt::Metrics) {
        let mut engine = Engine::new(GpuConfig::test_tiny());
        let layout = SegmentedLayout::setup(engine.memory_mut(), "q", seg_cap, phys_segs);
        let pending = engine.memory_mut().alloc("pending", 1);
        layout.host_seed(engine.memory_mut(), seeds);
        engine
            .memory_mut()
            .write_u32(pending, 0, seeds.len() as u32);
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let wave_size = engine.config().wave_size;
        let report = engine
            .run(
                Launch::workgroups(wgs)
                    .with_max_rounds(2_000_000)
                    .with_audit(),
                |_info| PumpKernel {
                    queue: Box::new(SegmentedWaveQueue::new(layout)),
                    lanes: vec![LanePhase::Idle; wave_size],
                    pending,
                    consumed: Arc::clone(&consumed),
                    fanout_until,
                    children,
                    outbox: Vec::new(),
                    completed: 0,
                },
            )
            .expect("segmented pump kernel failed");
        let mut out = consumed.lock().unwrap().clone();
        out.sort_unstable();
        (out, report.metrics)
    }

    #[test]
    fn setup_paints_sentinels_and_fills_pool() {
        let mut mem = DeviceMemory::new();
        let q = SegmentedLayout::setup(&mut mem, "q", 8, 4);
        assert_eq!(q.dir_len, 6);
        assert!(mem.read_slice(q.slots).iter().all(|&w| w == DNA));
        assert!(mem.read_slice(q.dir).iter().all(|&w| w == DNA));
        assert_eq!(mem.read_u32(q.pool, 0), 4);
        assert_eq!(q.host_len(&mem), 0);
        assert_eq!(q.host_live_segments(&mem), 0);
    }

    #[test]
    fn host_seed_installs_segments_across_boundaries() {
        let mut mem = DeviceMemory::new();
        let q = SegmentedLayout::setup(&mut mem, "q", 4, 4);
        let tokens: Vec<u32> = (0..10).collect();
        q.host_seed(&mut mem, &tokens);
        assert_eq!(q.host_len(&mem), 10);
        assert_eq!(q.host_live_segments(&mem), 3); // ceil(10 / 4)
    }

    #[test]
    fn pump_delivers_every_token_across_segments() {
        let seeds: Vec<u32> = (0..13).collect();
        // seg_cap 8 forces several installs for 13 + 39 tokens.
        let (consumed, metrics) = pump_seg(&seeds, 13, 3, 2, 8, 6);
        assert_eq!(consumed, expected_tokens(&seeds, 13, 3));
        assert_eq!(metrics.cas_attempts, 0, "SEG-RF/AN must never CAS");
        assert_eq!(metrics.cas_failures, 0);
        assert_eq!(metrics.queue_empty_retries, 0);
    }

    #[test]
    fn lifetime_overflow_is_absorbed_by_recycling() {
        // 64 seeds fan out to 192 children: 256 lifetime tokens through an
        // arena of 4 * 16 = 64 words — a bounded queue of that size would
        // abort with queue-full almost immediately.
        let seeds: Vec<u32> = (0..64).collect();
        let (consumed, metrics) = pump_seg(&seeds, 64, 3, 4, 16, 4);
        assert_eq!(consumed, expected_tokens(&seeds, 64, 3));
        assert_eq!(metrics.cas_attempts, 0);
        assert_eq!(metrics.queue_empty_retries, 0);
    }

    #[test]
    fn single_wave_single_token() {
        let (consumed, _) = pump_seg(&[7], 0, 0, 1, 32, 2);
        assert_eq!(consumed, vec![7]);
    }

    #[test]
    fn survives_many_waves_on_few_tokens() {
        // Reserve-ahead slack: 4 waves of hungry lanes monitor far beyond
        // Rear; unpublished tickets simply never see data.
        let (consumed, metrics) = pump_seg(&[1, 2], 0, 0, 4, 8, 4);
        assert_eq!(consumed, vec![1, 2]);
        assert_eq!(metrics.queue_empty_retries, 0);
    }

    #[test]
    fn drained_segments_recycle_on_device() {
        let mut engine = Engine::new(GpuConfig::test_tiny());
        let layout = SegmentedLayout::setup(engine.memory_mut(), "q", 4, 3);
        let pending = engine.memory_mut().alloc("pending", 1);
        let seeds: Vec<u32> = (0..8).collect();
        layout.host_seed(engine.memory_mut(), &seeds);
        engine
            .memory_mut()
            .write_u32(pending, 0, seeds.len() as u32);
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let wave_size = engine.config().wave_size;
        engine
            .run(
                Launch::workgroups(2)
                    .with_max_rounds(2_000_000)
                    .with_audit(),
                |_info| PumpKernel {
                    queue: Box::new(SegmentedWaveQueue::new(layout)),
                    lanes: vec![LanePhase::Idle; wave_size],
                    pending,
                    consumed: Arc::clone(&consumed),
                    fanout_until: 8,
                    children: 4,
                    outbox: Vec::new(),
                    completed: 0,
                },
            )
            .expect("segmented pump kernel failed");
        // 40 lifetime tokens flowed through a 12-word arena; after the
        // drain every segment has retired back to the pool.
        let mem = engine.memory_mut();
        assert_eq!(layout.host_live_segments(mem), 0);
        assert_eq!(mem.read_u32(layout.pool, 0), 3);
        assert!(mem.read_slice(layout.slots).iter().all(|&w| w == DNA));
    }
}
