//! The AN variant: arbitrary-n batching *without* the retry-free property
//! (paper §5.3).
//!
//! Like RF/AN, a proxy thread reserves one contiguous region per wavefront
//! operation — but with compare-and-swap instead of fetch-add, and with
//! the traditional exception discipline:
//!
//! * Under contention the proxy's read-to-CAS window is repeatedly
//!   invalidated by other wavefronts' successful reservations; each
//!   intervening success costs one failed attempt (a dependent re-read +
//!   re-CAS chain whose issue slots can never be hidden). The simulator
//!   charges this as a *retry storm*: the number of successful mutations
//!   of the counter since this wavefront's previous visit, capped by what
//!   fits in a work cycle. Uncontended, the reservation is a single CAS
//!   with no overhead beyond the read.
//! * Dequeue cannot over-reserve past `Rear` (there is no sentinel
//!   protocol), so when the queue looks empty the operation raises the
//!   queue-empty exception and the hungry lanes retry next work cycle.

use super::{LanePhase, QueueLayout, WaveQueue, FRONT, REAR};
use crate::{Variant, DNA};
use simt::{AbortReason, OpSpec, WaveCtx};

/// Per-wavefront handle to an AN device queue.
#[derive(Clone, Debug)]
pub struct AnWaveQueue {
    layout: QueueLayout,
    /// Version of `Front` as of this wavefront's last dequeue visit.
    front_seen: Option<u64>,
    /// Version of `Rear` as of this wavefront's last enqueue visit.
    rear_seen: Option<u64>,
}

impl AnWaveQueue {
    /// Creates the per-wavefront handle.
    pub fn new(layout: QueueLayout) -> Self {
        AnWaveQueue {
            layout,
            front_seen: None,
            rear_seen: None,
        }
    }
}

impl WaveQueue for AnWaveQueue {
    fn variant(&self) -> Variant {
        Variant::An
    }

    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]) {
        let hungry = lanes.iter().filter(|l| **l == LanePhase::Hungry).count() as u32;
        if hungry == 0 {
            return;
        }
        // Proxy aggregation of lane demand (the arbitrary-n property,
        // same local-atomic pattern as RF/AN). Arbitrary-n without
        // retry-free: never an AFA; zero or one real CAS (the single proxy
        // reservation, declared on the path that reaches it); retry storms
        // and queue-empty retries are this design's legitimate overhead.
        ctx.audit_begin(
            OpSpec::new("AN", "acquire")
                .allow_storms()
                .allow_empty_retries(),
        );
        ctx.charge_alu(1);
        ctx.lds_atomics(u64::from(hungry));

        let version = ctx.atomic_version(self.layout.state, FRONT);
        let delta = self
            .front_seen
            .map(|seen| version.saturating_sub(seen))
            .unwrap_or(0);

        let front = ctx.global_read(self.layout.state, FRONT);
        // Dequeue sees Rear with one round of delay (inter-wavefront
        // communication latency); reservations stay safely below it.
        let rear = ctx.global_read_stale(self.layout.state, REAR);
        let avail = rear.saturating_sub(front);
        let n = hungry.min(avail);
        if n == 0 {
            // Queue-empty exception: every hungry lane retries next cycle.
            // No CAS was attempted, so no retry storm either.
            ctx.count_queue_empty_retries(u64::from(hungry));
            self.front_seen = Some(version);
            ctx.audit_end();
            return;
        }
        // Contention tax: every successful reservation that landed since
        // our previous visit invalidated one read-to-CAS window of the
        // retry loop this reservation runs through.
        let storms = ctx.charge_cas_retry_storm(delta);
        ctx.audit_expect_cas(1);
        let observed = ctx.atomic_cas(self.layout.state, FRONT, front, front + n);
        ctx.count_scheduler_atomics(storms + 1);
        debug_assert_eq!(observed, front, "fresh-read CAS must win in-sim");
        self.front_seen = Some(ctx.atomic_version(self.layout.state, FRONT));

        // Tokens in [front, front+n) were published before Rear advanced
        // past them, so plain (coalesced) reads suffice.
        ctx.charge_coalesced_access(self.layout.slots, front as usize, n as usize);
        let mut slot = front;
        let mut fed = 0;
        for lane in lanes.iter_mut() {
            if fed == n {
                break;
            }
            if *lane == LanePhase::Hungry {
                let tok = ctx.peek(self.layout.slots, slot as usize);
                debug_assert_ne!(tok, DNA, "AN dequeued an unwritten slot");
                *lane = LanePhase::Ready(tok);
                slot += 1;
                fed += 1;
            }
        }
        // Lanes beyond `avail` stay hungry: exception-style retry.
        if hungry > n {
            ctx.count_queue_empty_retries(u64::from(hungry - n));
        }
        ctx.audit_end();
    }

    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        // AN has no monitoring phase: an empty-queue cycle leaves every
        // lane Hungry and attempts no CAS (`n == 0` above), so the cycle
        // is a pure poll of `Front` (fresh read) and `Rear` (stale read).
        // `Front`'s mutation version only advances when its value changes,
        // and the value is strictly monotonic, so watching the two words
        // also covers the version delta the retry-storm model reads.
        if !lanes.iter().all(|l| matches!(l, LanePhase::Hungry)) {
            return false;
        }
        ctx.park_until_changed_now(self.layout.state, FRONT);
        ctx.park_until_changed(self.layout.state, REAR);
        true
    }

    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize {
        if tokens.is_empty() {
            return 0;
        }
        ctx.audit_begin(OpSpec::new("AN", "enqueue").allow_storms());
        ctx.charge_alu(1);
        ctx.lds_atomics(tokens.len() as u64);

        let version = ctx.atomic_version(self.layout.state, REAR);
        if let Some(seen) = self.rear_seen {
            // Enqueue reservations are half as exposed as dequeues: a
            // batch accumulates several work cycles of discoveries, so
            // this wavefront visits Rear correspondingly less often.
            let storms = ctx.charge_cas_retry_storm(version.saturating_sub(seen) / 2);
            ctx.count_scheduler_atomics(storms);
        }

        let rear = ctx.global_read(self.layout.state, REAR);
        let n = tokens.len() as u32;
        if rear as usize + n as usize > self.layout.capacity as usize {
            ctx.abort(AbortReason::QueueFull {
                requested: rear as u64 + n as u64,
                capacity: self.layout.capacity,
            });
            // Bound check precedes the CAS: zero reservations issued, so
            // the scope validates cleanly even on the abort path.
            ctx.audit_end();
            return 0;
        }
        ctx.audit_expect_cas(1);
        let observed = ctx.atomic_cas(self.layout.state, REAR, rear, rear + n);
        ctx.count_scheduler_atomics(1);
        debug_assert_eq!(observed, rear, "fresh-read CAS must win in-sim");
        self.rear_seen = Some(ctx.atomic_version(self.layout.state, REAR));

        // Region is exclusively ours: publish the tokens (coalesced).
        ctx.charge_coalesced_access(self.layout.slots, rear as usize, tokens.len());
        for (i, &tok) in tokens.iter().enumerate() {
            debug_assert!(tok < DNA);
            ctx.poke(self.layout.slots, rear as usize + i, tok);
        }
        ctx.audit_end();
        tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{expected_tokens, pump};
    use crate::Variant;

    #[test]
    fn pump_delivers_every_token_exactly_once() {
        let seeds: Vec<u32> = (0..13).collect();
        let (consumed, _) = pump(Variant::An, &seeds, 13, 3, 2, 256);
        assert_eq!(consumed, expected_tokens(&seeds, 13, 3));
    }

    #[test]
    fn multi_wave_contention_is_correct() {
        let seeds: Vec<u32> = (0..40).collect();
        let (consumed, _) = pump(Variant::An, &seeds, 40, 2, 4, 512);
        assert_eq!(consumed, expected_tokens(&seeds, 40, 2));
    }

    #[test]
    fn uses_cas_not_just_afa() {
        let seeds: Vec<u32> = (0..16).collect();
        let (_, metrics) = pump(Variant::An, &seeds, 0, 0, 2, 64);
        assert!(metrics.cas_attempts > 0, "AN must reserve with CAS");
    }

    #[test]
    fn starvation_counts_empty_retries() {
        // 4 waves x 4 lanes = 16 hungry lanes, only 2 tokens ever: the
        // unserved lanes must keep raising queue-empty retries.
        let (consumed, metrics) = pump(Variant::An, &[1, 2], 0, 0, 4, 64);
        assert_eq!(consumed, vec![1, 2]);
        assert!(metrics.queue_empty_retries > 0, "AN retries on queue-empty");
    }

    #[test]
    fn contention_generates_cas_failures() {
        // Enough parallel work that several waves interleave reservations.
        let seeds: Vec<u32> = (0..64).collect();
        let (consumed, metrics) = pump(Variant::An, &seeds, 64, 2, 4, 1024);
        assert_eq!(consumed.len(), 64 + 128);
        assert!(
            metrics.cas_failures > 0,
            "contended AN should fail some CAS ops"
        );
    }

    #[test]
    fn single_wave_no_failures() {
        // Alone on the device: no other wavefront ever invalidates the
        // read-to-CAS window.
        let seeds: Vec<u32> = (0..8).collect();
        let (_, metrics) = pump(Variant::An, &seeds, 0, 0, 1, 32);
        assert_eq!(metrics.cas_failures, 0);
    }
}
