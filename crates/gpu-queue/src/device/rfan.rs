//! The proposed retry-free / arbitrary-n queue (paper §4, Listings 1–3).
//!
//! Dequeue (Listing 1): the wavefront's hungry lanes count themselves with
//! workgroup-local atomics; the proxy thread performs **one** global
//! fetch-add on `Front` for all of them. Each lane receives a unique slot
//! index to *monitor* — the fetch-add cannot fail and is unconditional:
//! reserving slots past `Rear` is fine because unwritten slots hold the
//! `dna` sentinel.
//!
//! Data arrival (Listing 2): a lane polls its slot with a plain global
//! read. Bounds are checked first ("The slot may, in fact, be outside the
//! queue bounds and cannot be accessed"). On arrival the lane takes the
//! token and restores the sentinel — no atomics, because the slot is
//! privately owned.
//!
//! Enqueue (Listing 3): the proxy reserves one contiguous region with a
//! single fetch-add on `Rear`; lanes copy their tokens in parallel. A slot
//! that is not a sentinel at write time means `Rear` lapped the allocation
//! — the queue-full exception, which aborts the kernel.

use super::{LanePhase, QueueLayout, WaveQueue, FRONT, REAR};
use crate::{Variant, DNA};
use simt::{AbortReason, OpSpec, WaveCtx};

/// Per-wavefront handle to an RF/AN device queue. Stateless beyond the
/// layout and a reusable poll scratch: the design needs no staged reads
/// and no retry bookkeeping.
#[derive(Clone, Debug)]
pub struct RfAnWaveQueue {
    layout: QueueLayout,
    /// Monitored-slot scratch reused across work cycles (registers, in GPU
    /// terms) — keeps the per-cycle poll allocation-free.
    watched: Vec<u32>,
}

impl RfAnWaveQueue {
    /// Creates the per-wavefront handle.
    pub fn new(layout: QueueLayout) -> Self {
        RfAnWaveQueue {
            layout,
            watched: Vec::new(),
        }
    }
}

impl WaveQueue for RfAnWaveQueue {
    fn variant(&self) -> Variant {
        Variant::RfAn
    }

    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]) {
        // ---- Listing 1: slot reservation for hungry lanes ----
        let hungry = lanes.iter().filter(|l| **l == LanePhase::Hungry).count() as u32;
        // The headline claim, auditable: one global AFA iff any lane is
        // hungry, never a CAS, never a retry of any kind.
        ctx.audit_begin(OpSpec::new("RF/AN", "acquire").afa_exact(u64::from(hungry > 0)));
        if hungry > 0 {
            // Proxy zeroes lQueueSlotsNeeded; hungry lanes atomic_inc it in
            // lock-step (local atomics never fail and are latency-hidden).
            ctx.charge_alu(1);
            ctx.lds_atomics(u64::from(hungry));
            // The proxy thread's single global AFA on Front.
            let base = ctx.atomic_add(self.layout.state, FRONT, hungry);
            ctx.count_scheduler_atomics(1);
            let mut next = base;
            for lane in lanes.iter_mut() {
                if *lane == LanePhase::Hungry {
                    *lane = LanePhase::Monitoring(next);
                    next += 1;
                }
            }
        }

        // ---- Listing 2: data-arrival poll on monitored slots ----
        // A wavefront's monitored slots are consecutive (they came from
        // batched reservations), so the lock-step poll coalesces into one
        // memory transaction per cache line.
        self.watched.clear();
        self.watched.extend(lanes.iter().filter_map(|l| match *l {
            LanePhase::Monitoring(slot) if slot < self.layout.capacity => Some(slot),
            _ => None,
        }));
        self.watched.sort_unstable();
        let watched = &self.watched;
        // Lines still holding only sentinels are cache-resident (nobody
        // wrote them): polling costs issue but no DRAM bandwidth. Lines
        // where data has arrived were invalidated by the producer's write
        // and pay the full transaction.
        let mut cached_lines = 0u64;
        let mut i = 0;
        while i < watched.len() {
            let line = watched[i] / 16;
            let mut any_data = false;
            let run_start = i;
            while i < watched.len() && watched[i] / 16 == line {
                if ctx.peek_stale(self.layout.slots, watched[i] as usize) != DNA {
                    any_data = true;
                }
                i += 1;
            }
            if any_data {
                let start = watched[run_start] as usize;
                let len = (watched[i - 1] - watched[run_start] + 1) as usize;
                ctx.charge_coalesced_access(self.layout.slots, start, len);
            } else {
                cached_lines += 1;
            }
        }
        ctx.charge_cached_access(cached_lines);
        for lane in lanes.iter_mut() {
            if let LanePhase::Monitoring(slot) = *lane {
                ctx.charge_alu(1); // bounds check
                if slot < self.layout.capacity {
                    // Round-stale poll: data published by another
                    // wavefront becomes visible one work cycle later.
                    let value = ctx.peek_stale(self.layout.slots, slot as usize);
                    if value != DNA {
                        // Private pickup: restore the sentinel, no atomics.
                        ctx.poke(self.layout.slots, slot as usize, DNA);
                        *lane = LanePhase::Ready(value);
                    }
                }
                // Out-of-bounds slots are never read: data can never
                // arrive there, and the kernel's termination condition
                // will release the lane.
            }
        }
        ctx.audit_end();
    }

    fn plan_token(&self, ctx: &simt::PlanCtx<'_>, slot: u32) -> Option<u32> {
        // Mirrors the Monitoring arm of `acquire` exactly: in-bounds slot,
        // round-stale read, DNA means no data. Stale visibility cannot
        // change within the round, so Some(v) here is a certainty, not a
        // guess.
        if slot >= self.layout.capacity {
            return None;
        }
        let value = ctx.peek_stale(self.layout.slots, slot as usize)?;
        (value != DNA).then_some(value)
    }

    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize {
        if tokens.is_empty() {
            return 0;
        }
        // Lanes publish their per-lane counts with local atomics
        // (Listing 3 lines 8–11), then the proxy reserves the whole
        // region with one AFA on Rear (lines 14–16). Exactly one global
        // atomic regardless of batch size — the arbitrary-n claim. (Abort
        // paths below leave the scope open unvalidated; the abort already
        // fails the run.)
        ctx.audit_begin(OpSpec::new("RF/AN", "enqueue").afa_exact(1));
        ctx.charge_alu(1);
        ctx.lds_atomics(tokens.len() as u64);
        let base = ctx.atomic_add(self.layout.state, REAR, tokens.len() as u32);
        ctx.count_scheduler_atomics(1);
        // The reserved region is contiguous: the sentinel check and the
        // token copy each coalesce into one transaction per line.
        let in_bounds = tokens
            .len()
            .min((self.layout.capacity as usize).saturating_sub(base as usize));
        ctx.charge_coalesced_access(self.layout.slots, base as usize, in_bounds); // check
        ctx.charge_coalesced_access(self.layout.slots, base as usize, in_bounds); // copy
        for (i, &tok) in tokens.iter().enumerate() {
            debug_assert!(tok < DNA, "token collides with dna sentinel");
            let slot = base as usize + i;
            if slot >= self.layout.capacity as usize {
                ctx.abort(AbortReason::QueueFull {
                    requested: slot as u64,
                    capacity: self.layout.capacity,
                });
                return i;
            }
            // Line 25: the slot must still hold the sentinel.
            let current = ctx.peek(self.layout.slots, slot);
            if current != DNA {
                // An occupied slot in a non-wrapping queue means the
                // reservation overran live data: same capacity exhaustion.
                ctx.abort(AbortReason::QueueFull {
                    requested: slot as u64,
                    capacity: self.layout.capacity,
                });
                return i;
            }
            ctx.poke(self.layout.slots, slot, tok);
        }
        ctx.audit_end();
        tokens.len()
    }

    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        // A pure poll requires *every* lane to be monitoring: a Hungry or
        // Ready lane would make the next cycle reserve slots or do work,
        // and an Idle lane is about to turn Hungry. Out-of-bounds slots
        // are never read (data cannot arrive there), so they need no
        // watch; the wave then waits only on its in-bounds slots plus
        // whatever the kernel watches (the pending counter).
        if !lanes.iter().all(|l| matches!(l, LanePhase::Monitoring(_))) {
            return false;
        }
        for lane in lanes {
            if let LanePhase::Monitoring(slot) = *lane {
                if slot < self.layout.capacity {
                    ctx.park_until_changed(self.layout.slots, slot as usize);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{expected_tokens, pump};
    use crate::Variant;

    #[test]
    fn pump_delivers_every_token_exactly_once() {
        let seeds: Vec<u32> = (0..13).collect();
        let (consumed, _) = pump(Variant::RfAn, &seeds, 13, 3, 2, 256);
        assert_eq!(consumed, expected_tokens(&seeds, 13, 3));
    }

    #[test]
    fn no_retries_ever() {
        let seeds: Vec<u32> = (0..20).collect();
        let (_, metrics) = pump(Variant::RfAn, &seeds, 20, 2, 4, 256);
        assert_eq!(metrics.cas_attempts, 0, "RF/AN must never CAS");
        assert_eq!(metrics.cas_failures, 0);
        assert_eq!(metrics.queue_empty_retries, 0);
    }

    #[test]
    fn single_wave_single_token() {
        let (consumed, _) = pump(Variant::RfAn, &[7], 0, 0, 1, 16);
        assert_eq!(consumed, vec![7]);
    }

    #[test]
    fn survives_many_waves_on_few_tokens() {
        // 4 waves x 4 lanes hungry, only 2 tokens: the design hands out 16
        // monitored slots but only 2 ever receive data; termination still
        // works and nothing is duplicated.
        let (consumed, metrics) = pump(Variant::RfAn, &[1, 2], 0, 0, 4, 64);
        assert_eq!(consumed, vec![1, 2]);
        assert_eq!(metrics.queue_empty_retries, 0);
    }

    #[test]
    fn front_overrun_is_harmless() {
        // Hungry lanes reserve far beyond capacity near termination; the
        // bounds check keeps them from faulting.
        let (consumed, _) = pump(Variant::RfAn, &[3], 0, 0, 4, 4);
        assert_eq!(consumed, vec![3]);
    }

    #[test]
    fn queue_full_aborts() {
        use super::super::testutil::PumpKernel;
        use super::super::{make_wave_queue, LanePhase, QueueLayout};
        use simt::{Engine, GpuConfig, Launch};
        use std::sync::{Arc, Mutex};

        let mut engine = Engine::new(GpuConfig::test_tiny());
        // capacity 4, but seeds fan out 3 children each => 1 + 3 > 4 - 1...
        // use 2 seeds x 3 children = 8 tokens > 4 capacity.
        let layout = QueueLayout::setup(engine.memory_mut(), "q", 4);
        let pending = engine.memory_mut().alloc("pending", 1);
        layout.host_seed(engine.memory_mut(), &[0, 1]);
        engine.memory_mut().write_u32(pending, 0, 2);
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let err = engine
            .run(Launch::workgroups(1), |_| PumpKernel {
                queue: make_wave_queue(Variant::RfAn, layout),
                lanes: vec![LanePhase::Idle; 4],
                pending,
                consumed: Arc::clone(&consumed),
                fanout_until: 10,
                children: 3,
                outbox: Vec::new(),
                completed: 0,
            })
            .unwrap_err();
        assert!(err.is_queue_full(), "{err:?}");
    }

    #[test]
    fn atomic_budget_is_tiny() {
        // One AFA per wave per dequeue round + one per enqueue round; far
        // fewer global atomics than tokens when batching works.
        let seeds: Vec<u32> = (0..64).collect();
        let (consumed, metrics) = pump(Variant::RfAn, &seeds, 0, 0, 2, 128);
        assert_eq!(consumed.len(), 64);
        // 64 tokens moved; without arbitrary-n this would need >= 64
        // dequeue atomics alone. (Pending-counter atomics included.)
        assert!(
            metrics.global_atomics < 64,
            "expected batched atomics, got {}",
            metrics.global_atomics
        );
    }
}
