//! Distributed queues with work stealing — the Tzeng-style alternative
//! the paper's related work discusses (§2.1: "from a single monolithic
//! task queue to distributed queuing with task stealing and donation").
//!
//! Instead of one device-wide queue, every *compute unit* owns a private
//! RF/AN-style queue (AFA + sentinel, so the local fast path is
//! retry-free). A wavefront dequeues from its home queue; when the home
//! queue looks empty it *steals* a batch from a victim CU's queue chosen
//! round-robin. Enqueues go to the home queue.
//!
//! Trade-offs versus the paper's single queue, observable in the
//! ablation (`repro ablate-stealing` measures both):
//!
//! * hot-word pressure drops by the CU count — each home counter is only
//!   shared by that CU's wavefronts plus occasional thieves;
//! * but load imbalance appears (a hub's children land on one CU) and
//!   stealing adds latency, cross-CU traffic, and *failed steal attempts*
//!   that behave like queue-empty retries.
//!
//! Stealing uses the same non-failing AFA reservation as the local path,
//! but bounded by the *visible backlog* of the chosen queue, so a ticket
//! almost always corresponds to a real token. Every reserved ticket stays
//! monitored until it fills or the kernel terminates — the sentinel
//! protocol's conservation invariant (no ticket, and hence no token, is
//! ever abandoned) holds across queues. A scan that finds no backlog
//! anywhere is the distributed design's queue-empty exception.

use super::{LanePhase, QueueLayout, WaveQueue, FRONT, REAR};
use crate::{Variant, DNA};
use simt::{AbortReason, DeviceMemory, OpSpec, WaveCtx};

/// Host-side handle to one queue per compute unit.
#[derive(Clone, Debug)]
pub struct StealingLayout {
    queues: Vec<QueueLayout>,
}

impl StealingLayout {
    /// Allocates `num_cus` per-CU queues, each with `capacity` slots.
    pub fn setup(memory: &mut DeviceMemory, name: &str, num_cus: usize, capacity: u32) -> Self {
        let queues = (0..num_cus)
            .map(|cu| QueueLayout::setup(memory, &format!("{name}.cu{cu}"), capacity))
            .collect();
        StealingLayout { queues }
    }

    /// Seeds initial tokens into CU 0's queue (the workload's seeds).
    pub fn host_seed(&self, memory: &mut DeviceMemory, tokens: &[u32]) {
        self.queues[0].host_seed(memory, tokens);
    }

    /// The per-CU layouts.
    pub fn queues(&self) -> &[QueueLayout] {
        &self.queues
    }
}

/// Tokens a thief reserves from a victim per attempt.
const STEAL_BATCH: u32 = 16;

/// One wavefront's view of the distributed queues.
#[derive(Clone, Debug)]
pub struct StealingWaveQueue {
    queues: Vec<QueueLayout>,
    home: usize,
    /// Next victim (rotates per steal attempt).
    next_victim: usize,
    /// Pending monitored slots: `(queue index, slot)` per lane is encoded
    /// in the `LanePhase::Monitoring` payload — the queue index lives in
    /// the upper bits.
    _priv: (),
}

impl StealingWaveQueue {
    /// Creates the handle for a wavefront resident on CU `home`.
    pub fn new(layout: &StealingLayout, home: usize) -> Self {
        assert!(home < layout.queues.len(), "home CU out of range");
        StealingWaveQueue {
            queues: layout.queues.clone(),
            home,
            next_victim: (home + 1) % layout.queues.len().max(1),
            _priv: (),
        }
    }

    /// Packs (queue, slot) into a `Monitoring` payload. Slots use the low
    /// 24 bits; queue ids the bits above (device queues per CU are far
    /// smaller than 16M slots in every configuration we model — asserted
    /// at setup).
    fn pack(queue: usize, slot: u32) -> u32 {
        debug_assert!(slot < (1 << 24), "slot exceeds pack width");
        ((queue as u32) << 24) | slot
    }

    fn unpack(packed: u32) -> (usize, u32) {
        ((packed >> 24) as usize, packed & 0x00FF_FFFF)
    }

    /// Reserve `n` monitored slots on queue `q` (single proxy AFA).
    fn reserve(&self, ctx: &mut WaveCtx<'_>, q: usize, n: u32) -> u32 {
        let base = ctx.atomic_add(self.queues[q].state, FRONT, n);
        ctx.count_scheduler_atomics(1);
        base
    }
}

impl WaveQueue for StealingWaveQueue {
    fn variant(&self) -> Variant {
        // Reported as RF/AN: same properties, distributed topology.
        Variant::RfAn
    }

    fn acquire(&mut self, ctx: &mut WaveCtx<'_>, lanes: &mut [LanePhase]) {
        // Hungry lanes reserve from the first queue with *visible*
        // backlog: home first, then victims in rotation. Reservations are
        // bounded by the visible backlog, so lanes rarely camp on slots
        // that will never fill (it can still happen when two thieves race
        // for the same backlog — those lanes wait out the run, which the
        // termination counter makes safe).
        let hungry: Vec<usize> = lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == LanePhase::Hungry)
            .map(|(i, _)| i)
            .collect();
        // Locally retry-free: never a CAS; one AFA iff the scan found
        // backlog (declared below); a failed scan counts empty retries.
        ctx.audit_begin(OpSpec::new("stealing", "acquire").allow_empty_retries());
        if !hungry.is_empty() {
            ctx.charge_alu(1);
            ctx.lds_atomics(hungry.len() as u64);
            let backlog = |ctx: &mut WaveCtx<'_>, layout: QueueLayout| -> u32 {
                let front = ctx.global_read(layout.state, FRONT);
                let rear = ctx.global_read_stale(layout.state, REAR);
                rear.saturating_sub(front)
            };
            let mut target = None;
            let home_backlog = backlog(ctx, self.queues[self.home]);
            if home_backlog > 0 {
                target = Some((self.home, home_backlog));
            } else {
                for _ in 0..self.queues.len().saturating_sub(1) {
                    let victim = self.next_victim;
                    self.next_victim = (self.next_victim + 1) % self.queues.len();
                    if victim == self.home {
                        continue;
                    }
                    let b = backlog(ctx, self.queues[victim]);
                    if b > 0 {
                        target = Some((victim, b));
                        break;
                    }
                }
            }
            match target {
                Some((q, b)) => {
                    let cap = if q == self.home {
                        u32::MAX
                    } else {
                        STEAL_BATCH
                    };
                    let n = (hungry.len() as u32).min(b).min(cap);
                    ctx.audit_expect_afa(1);
                    let base = self.reserve(ctx, q, n);
                    for (offset, &lane) in hungry.iter().take(n as usize).enumerate() {
                        lanes[lane] = LanePhase::Monitoring(Self::pack(q, base + offset as u32));
                    }
                    if (hungry.len() as u32) > n {
                        ctx.count_queue_empty_retries(u64::from(hungry.len() as u32 - n));
                    }
                }
                None => {
                    // Nothing visible anywhere: a failed steal scan is the
                    // distributed design's version of the queue-empty
                    // exception — the lanes retry next work cycle.
                    ctx.count_queue_empty_retries(hungry.len() as u64);
                }
            }
        }

        // Poll monitored slots.
        for lane in lanes.iter_mut() {
            if let LanePhase::Monitoring(packed) = *lane {
                let (q, slot) = Self::unpack(packed);
                let layout = &self.queues[q];
                ctx.charge_alu(1);
                if slot < layout.capacity {
                    let value = ctx.global_read_lane_stale(layout.slots, slot as usize);
                    if value != DNA {
                        ctx.poke(layout.slots, slot as usize, DNA);
                        *lane = LanePhase::Ready(value);
                    }
                }
            }
        }
        ctx.audit_end();
    }

    fn register_idle_watches(&self, ctx: &mut WaveCtx<'_>, lanes: &[LanePhase]) -> bool {
        // Parkable only when *every* lane camps on a monitored ticket: a
        // Hungry lane would run the steal scan next cycle, which advances
        // the victim rotation and reads a different set of counters —
        // not an invariant cycle. All-monitoring cycles skip the scan
        // entirely and are a pure stale poll of the monitored slots.
        if !lanes.iter().all(|l| matches!(l, LanePhase::Monitoring(_))) {
            return false;
        }
        for lane in lanes {
            if let LanePhase::Monitoring(packed) = *lane {
                let (q, slot) = Self::unpack(packed);
                let layout = &self.queues[q];
                if slot < layout.capacity {
                    ctx.park_until_changed(layout.slots, slot as usize);
                }
            }
        }
        true
    }

    fn enqueue(&mut self, ctx: &mut WaveCtx<'_>, tokens: &[u32]) -> usize {
        if tokens.is_empty() {
            return 0;
        }
        let home = &self.queues[self.home];
        ctx.audit_begin(OpSpec::new("stealing", "enqueue").afa_exact(1));
        ctx.charge_alu(1);
        ctx.lds_atomics(tokens.len() as u64);
        let base = ctx.atomic_add(home.state, REAR, tokens.len() as u32);
        ctx.count_scheduler_atomics(1);
        let in_bounds = tokens
            .len()
            .min((home.capacity as usize).saturating_sub(base as usize));
        ctx.charge_coalesced_access(home.slots, base as usize, in_bounds);
        ctx.charge_coalesced_access(home.slots, base as usize, in_bounds);
        for (i, &tok) in tokens.iter().enumerate() {
            debug_assert!(tok < DNA);
            let slot = base as usize + i;
            if slot >= home.capacity as usize {
                ctx.abort(AbortReason::QueueFull {
                    requested: slot as u64,
                    capacity: home.capacity,
                });
                return i;
            }
            let current = ctx.peek(home.slots, slot);
            if current != DNA {
                ctx.abort(AbortReason::QueueFull {
                    requested: slot as u64,
                    capacity: home.capacity,
                });
                return i;
            }
            ctx.poke(home.slots, slot, tok);
        }
        ctx.audit_end();
        tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for (q, s) in [(0usize, 0u32), (3, 12345), (255, (1 << 24) - 1)] {
            assert_eq!(
                StealingWaveQueue::unpack(StealingWaveQueue::pack(q, s)),
                (q, s)
            );
        }
    }

    #[test]
    fn setup_allocates_one_queue_per_cu() {
        let mut mem = DeviceMemory::new();
        let layout = StealingLayout::setup(&mut mem, "dq", 4, 32);
        assert_eq!(layout.queues().len(), 4);
        layout.host_seed(&mut mem, &[1, 2, 3]);
        assert_eq!(layout.queues()[0].host_len(&mem), 3);
        assert_eq!(layout.queues()[1].host_len(&mem), 0);
    }

    #[test]
    #[should_panic(expected = "home CU out of range")]
    fn home_cu_checked() {
        let mut mem = DeviceMemory::new();
        let layout = StealingLayout::setup(&mut mem, "dq", 2, 8);
        let _ = StealingWaveQueue::new(&layout, 5);
    }
}
