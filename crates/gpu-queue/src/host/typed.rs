//! A typed wrapper over the retry-free / arbitrary-n protocol: carry
//! arbitrary `Send` payloads instead of `u32` tokens.
//!
//! The trick is that the sentinel protocol already *is* a publication
//! protocol: the slot word moves `DNA → token` with a release store and is
//! read with an acquire load, so anything written before the store is
//! visible after the load. [`TypedRfAnQueue`] stores the payload in a
//! side arena indexed by slot and publishes it through the slot word —
//! the payload write happens-before the token store, the consumer's
//! acquire load happens-before its payload read, and slot ownership is
//! exclusive on both sides (producers own `[base, base+n)` from the
//! `Rear` ticket; consumers own their reserved slot).

use super::{QueueFull, QueueStats, StatsSnapshot};
use crate::DNA;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A slot ticket for the typed queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TypedTicket(pub u64);

/// Retry-free, arbitrary-n queue carrying `T` payloads.
///
/// Bounded and non-wrapping like every queue in this crate: `capacity`
/// bounds the total number of payloads enqueued between `reset`s.
pub struct TypedRfAnQueue<T> {
    /// Publication words: `DNA` = empty, `1` = payload present.
    flags: Box<[AtomicU32]>,
    payloads: Box<[UnsafeCell<MaybeUninit<T>>]>,
    front: AtomicU64,
    rear: AtomicU64,
    stats: QueueStats,
}

// SAFETY: payload cells are accessed under the slot-exclusivity protocol
// described in the module docs; `T: Send` suffices because a payload
// moves between threads but is never aliased.
unsafe impl<T: Send> Send for TypedRfAnQueue<T> {}
unsafe impl<T: Send> Sync for TypedRfAnQueue<T> {}

impl<T: Send> TypedRfAnQueue<T> {
    /// Creates a queue with room for `capacity` payloads.
    pub fn new(capacity: usize) -> Self {
        TypedRfAnQueue {
            flags: (0..capacity).map(|_| AtomicU32::new(DNA)).collect(),
            payloads: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            front: AtomicU64::new(0),
            rear: AtomicU64::new(0),
            // Retry-free variant gate: CAS/empty-retry counts panic here.
            stats: QueueStats::retry_free(),
        }
    }

    /// Payload capacity.
    pub fn capacity(&self) -> usize {
        self.flags.len()
    }

    /// Enqueues a batch with one fetch-add.
    ///
    /// # Errors
    /// [`QueueFull`] if the reservation exceeds capacity; nothing is
    /// written in that case. Like [`RfAnQueue::enqueue_batch`], a failed
    /// batch leaves `Rear` advanced past capacity (abort semantics): the
    /// queue accepts no further payloads until dropped or rebuilt.
    ///
    /// [`RfAnQueue::enqueue_batch`]: super::RfAnQueue::enqueue_batch
    pub fn enqueue_batch(&self, items: impl ExactSizeIterator<Item = T>) -> Result<(), QueueFull> {
        let n = items.len();
        if n == 0 {
            return Ok(());
        }
        self.stats.afa();
        let base = self.rear.fetch_add(n as u64, Ordering::Relaxed);
        if base as usize + n > self.flags.len() {
            return Err(QueueFull {
                capacity: self.flags.len(),
            });
        }
        for (i, item) in items.enumerate() {
            let idx = base as usize + i;
            debug_assert_eq!(self.flags[idx].load(Ordering::Relaxed), DNA);
            // SAFETY: slot `idx` is exclusively ours (unique Rear ticket)
            // and unpublished, so no other thread touches the cell.
            unsafe { (*self.payloads[idx].get()).write(item) };
            self.flags[idx].store(1, Ordering::Release);
        }
        Ok(())
    }

    /// Reserves `n` dequeue slots with one fetch-add (never fails).
    pub fn reserve(&self, n: usize) -> Range<u64> {
        self.stats.afa();
        let base = self.front.fetch_add(n as u64, Ordering::Relaxed);
        base..base + n as u64
    }

    /// Polls a reserved slot; returns the payload once published.
    pub fn try_take(&self, ticket: TypedTicket) -> Option<T> {
        let idx = ticket.0 as usize;
        if idx >= self.flags.len() {
            return None;
        }
        if self.flags[idx].load(Ordering::Acquire) == DNA {
            self.stats.data_wait();
            return None;
        }
        self.flags[idx].store(DNA, Ordering::Relaxed);
        // SAFETY: the acquire load observed publication; the producer's
        // payload write happens-before it, and this consumer exclusively
        // owns the slot (unique Front ticket), taking the value once.
        Some(unsafe { (*self.payloads[idx].get()).assume_init_read() })
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

impl<T> Drop for TypedRfAnQueue<T> {
    fn drop(&mut self) {
        // Drop any published-but-unconsumed payloads.
        for (flag, cell) in self.flags.iter().zip(self.payloads.iter()) {
            if flag.load(Ordering::Relaxed) != DNA {
                // SAFETY: `&mut self` gives exclusive access; the flag says
                // the cell holds an initialized value nobody consumed.
                unsafe { (*cell.get()).assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_owned_payloads() {
        let q: TypedRfAnQueue<String> = TypedRfAnQueue::new(8);
        q.enqueue_batch(["a".to_owned(), "b".to_owned()].into_iter())
            .unwrap();
        let r = q.reserve(2);
        let got: Vec<String> = r
            .map(|s| q.try_take(TypedTicket(s)).expect("published"))
            .collect();
        assert_eq!(got, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn pending_slot_polls_none_then_delivers() {
        let q: TypedRfAnQueue<Box<u64>> = TypedRfAnQueue::new(4);
        let t = TypedTicket(q.reserve(1).start);
        assert!(q.try_take(t).is_none());
        q.enqueue_batch(std::iter::once(Box::new(42u64))).unwrap();
        assert_eq!(*q.try_take(t).unwrap(), 42);
        assert!(q.try_take(t).is_none(), "consumed exactly once");
    }

    #[test]
    fn overflow_rejected_without_writing() {
        let q: TypedRfAnQueue<u8> = TypedRfAnQueue::new(1);
        q.enqueue_batch(std::iter::once(1u8)).unwrap();
        assert!(q.enqueue_batch([2u8, 3].into_iter()).is_err());
    }

    #[test]
    fn drop_releases_unconsumed_payloads() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q: TypedRfAnQueue<Counted> = TypedRfAnQueue::new(4);
            q.enqueue_batch([Counted, Counted, Counted].into_iter())
                .unwrap();
            // consume one; leave two published
            let t = TypedTicket(q.reserve(1).start);
            drop(q.try_take(t).unwrap());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 3, "no payload leaked");
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        const N: usize = 4_000;
        let q: TypedRfAnQueue<Box<u32>> = TypedRfAnQueue::new(2 * N);
        let mut all: Vec<u32> = Vec::new();
        std::thread::scope(|scope| {
            for p in 0..2 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..N as u32 {
                        q.enqueue_batch(std::iter::once(Box::new(p * N as u32 + i)))
                            .unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..2 {
                let q = &q;
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut pending: Vec<u64> = Vec::new();
                    let mut idle = 0;
                    while idle < 100_000 {
                        if pending.is_empty() {
                            pending.extend(q.reserve(8));
                        }
                        let before = got.len();
                        pending.retain(|&s| match q.try_take(TypedTicket(s)) {
                            Some(v) => {
                                got.push(*v);
                                false
                            }
                            None => true,
                        });
                        if got.len() == before {
                            idle += 1;
                        } else {
                            idle = 0;
                        }
                    }
                    got
                }));
            }
            all = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
        });
        all.sort_unstable();
        let consumed = all.len();
        all.dedup();
        assert_eq!(all.len(), consumed, "every payload consumed at most once");
        // A consumer only exits after a long quiet period, by which point
        // every published payload among its tickets has been taken.
        assert_eq!(consumed, 2 * N, "every payload consumed");
    }
}
