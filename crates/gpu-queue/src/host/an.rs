//! Host-side AN queue: batch (arbitrary-n) reservation with CAS.
//!
//! One compare-exchange reserves a whole batch — the arbitrary-n property
//! — but the reservation can fail under contention and must loop, and
//! dequeue never reserves past the published `Rear` (no sentinel
//! protocol), raising the queue-empty exception instead.

use super::{QueueFull, QueueStats, StatsSnapshot};
use crate::DNA;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Bounded CAS queue with batched reservations (non-wrapping; see
/// [`super`] module docs for the capacity discipline).
#[derive(Debug)]
pub struct AnQueue {
    slots: Box<[AtomicU32]>,
    front: AtomicU64,
    rear: AtomicU64,
    stats: QueueStats,
}

impl AnQueue {
    /// Creates a queue with room for `capacity` tokens.
    pub fn new(capacity: usize) -> Self {
        AnQueue {
            slots: (0..capacity).map(|_| AtomicU32::new(DNA)).collect(),
            front: AtomicU64::new(0),
            rear: AtomicU64::new(0),
            stats: QueueStats::default(),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    // ---- Step-decomposed primitives ----
    //
    // As in `BaseQueue`, the public batch operations are drivers over
    // single-step shims so the `verify` explorer can interleave the exact
    // production memory accesses. Strong CAS keeps explored schedules
    // deterministic (a weak CAS may fail spuriously).

    /// One step: read `Rear`.
    pub(crate) fn step_load_rear(&self) -> u64 {
        self.rear.load(Ordering::Acquire)
    }

    /// One step: read `Front`.
    pub(crate) fn step_load_front(&self) -> u64 {
        self.front.load(Ordering::Acquire)
    }

    /// One batch CAS attempt on `Rear`; `Ok` claims `expected..expected+n`.
    pub(crate) fn step_cas_rear(&self, expected: u64, n: u64) -> Result<(), u64> {
        self.stats.cas_attempt();
        match self.rear.compare_exchange(
            expected,
            expected + n,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => {
                self.stats.cas_failure();
                Err(actual)
            }
        }
    }

    /// One batch CAS attempt on `Front`; `Ok` claims `expected..expected+n`.
    pub(crate) fn step_cas_front(&self, expected: u64, n: u64) -> Result<(), u64> {
        self.stats.cas_attempt();
        match self.front.compare_exchange(
            expected,
            expected + n,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => {
                self.stats.cas_failure();
                Err(actual)
            }
        }
    }

    /// One step: publish `token` into the claimed `slot`.
    pub(crate) fn step_publish(&self, slot: u64, token: u32) {
        debug_assert!(token < DNA);
        self.slots[slot as usize].store(token, Ordering::Release);
    }

    /// Non-counting probe: whether the claimed `slot` holds data yet.
    pub(crate) fn slot_ready(&self, slot: u64) -> bool {
        self.slots[slot as usize].load(Ordering::Acquire) != DNA
    }

    /// One step: take data from the claimed `slot` (restoring the
    /// sentinel), or count a data wait if it has not been published yet.
    pub(crate) fn step_take_slot(&self, slot: u64) -> Option<u32> {
        let s = &self.slots[slot as usize];
        let v = s.load(Ordering::Acquire);
        if v == DNA {
            self.stats.data_wait();
            None
        } else {
            s.store(DNA, Ordering::Relaxed);
            Some(v)
        }
    }

    /// One step: record the queue-empty exception.
    pub(crate) fn step_pop_empty(&self) {
        self.stats.empty_retry();
    }

    /// Enqueues a whole batch with one (looping) CAS reservation on
    /// `Rear`, then publishes each token.
    pub fn push_batch(&self, tokens: &[u32]) -> Result<(), QueueFull> {
        if tokens.is_empty() {
            return Ok(());
        }
        let n = tokens.len() as u64;
        let mut rear = self.step_load_rear();
        loop {
            if rear as usize + tokens.len() > self.slots.len() {
                return Err(QueueFull {
                    capacity: self.slots.len(),
                });
            }
            match self.step_cas_rear(rear, n) {
                Ok(()) => {
                    for (i, &tok) in tokens.iter().enumerate() {
                        self.step_publish(rear + i as u64, tok);
                    }
                    return Ok(());
                }
                Err(actual) => rear = actual,
            }
        }
    }

    /// Dequeues up to `max` tokens into `out` with one (looping) CAS
    /// reservation on `Front`. Returns the number of tokens delivered;
    /// `0` means the queue-empty exception fired.
    pub fn pop_batch(&self, out: &mut Vec<u32>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut front = self.step_load_front();
        loop {
            let rear = self.step_load_rear();
            let avail = rear.saturating_sub(front);
            if avail == 0 {
                self.step_pop_empty();
                return 0;
            }
            let n = avail.min(max as u64);
            match self.step_cas_front(front, n) {
                Ok(()) => {
                    for s in front..front + n {
                        // Publication follows reservation on the producer
                        // side; spin for the (brief) window.
                        loop {
                            if let Some(v) = self.step_take_slot(s) {
                                out.push(v);
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    return n as usize;
                }
                Err(actual) => front = actual,
            }
        }
    }

    /// Published-token estimate.
    ///
    /// Unlike the RF/AN queue, `Rear` can never overshoot capacity here:
    /// [`push_batch`](AnQueue::push_batch) checks the bound *before* its
    /// CAS, so a rejected batch leaves `Rear` untouched and no clamp is
    /// needed.
    pub fn len_hint(&self) -> u64 {
        self.rear
            .load(Ordering::Relaxed)
            .saturating_sub(self.front.load(Ordering::Relaxed))
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Restores the initial state (exclusive access required).
    pub fn reset(&mut self) {
        for s in self.slots.iter() {
            s.store(DNA, Ordering::Relaxed);
        }
        self.front.store(0, Ordering::Relaxed);
        self.rear.store(0, Ordering::Relaxed);
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip() {
        let q = AnQueue::new(8);
        q.push_batch(&[1, 2, 3]).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 8), 3);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn pop_respects_max() {
        let q = AnQueue::new(8);
        q.push_batch(&[1, 2, 3, 4]).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 2), 2);
        assert_eq!(q.pop_batch(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_pop_is_an_exception() {
        let q = AnQueue::new(4);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 4), 0);
        assert_eq!(q.stats().empty_retries, 1);
    }

    #[test]
    fn overflow_batch_is_rejected_whole() {
        let q = AnQueue::new(3);
        q.push_batch(&[1, 2]).unwrap();
        assert_eq!(q.push_batch(&[3, 4]), Err(QueueFull { capacity: 3 }));
        // the failed batch wrote nothing
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 10), 2);
    }

    #[test]
    fn one_cas_per_uncontended_batch() {
        let q = AnQueue::new(64);
        q.push_batch(&(0..32).collect::<Vec<_>>()).unwrap();
        assert_eq!(q.stats().cas_attempts, 1);
    }

    #[test]
    fn concurrent_batches_conserve_tokens() {
        const THREADS: usize = 4;
        const PER: usize = 4_000;
        let q = AnQueue::new(THREADS * PER);
        let mut all: Vec<u32> = Vec::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let q = &q;
                scope.spawn(move || {
                    let tokens: Vec<u32> = (0..PER as u32).map(|i| (t * PER) as u32 + i).collect();
                    for chunk in tokens.chunks(23) {
                        q.push_batch(chunk).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                let q = &q;
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while misses < 20_000 {
                        let before = got.len();
                        q.pop_batch(&mut got, 16);
                        if got.len() == before {
                            misses += 1;
                        } else {
                            misses = 0;
                        }
                    }
                    got
                }));
            }
            all = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
        });
        let mut rest = Vec::new();
        while q.pop_batch(&mut rest, 64) > 0 {}
        all.extend(rest);
        all.sort_unstable();
        assert_eq!(all, (0..(THREADS * PER) as u32).collect::<Vec<_>>());
    }
}
