//! Host-side retry-free / arbitrary-n queue.
//!
//! The same algorithm as the device RF/AN queue, on real threads:
//!
//! * **Dequeue** is split into a wait-free slot reservation
//!   ([`RfAnQueue::reserve`], one `fetch_add` for any batch size) and a
//!   non-atomic poll ([`RfAnQueue::try_take`]) on the privately owned
//!   slot. There is no queue-empty exception: reserving past `Rear` just
//!   means the data hasn't arrived yet.
//! * **Enqueue** ([`RfAnQueue::enqueue_batch`]) reserves a contiguous
//!   region with one `fetch_add` on `Rear` and publishes each token with a
//!   release store over the sentinel.
//!
//! Like the paper's queue, this is bounded and non-wrapping: `capacity`
//! must bound the total tokens enqueued between [`RfAnQueue::reset`]
//! calls; overflow is a [`QueueFull`] error (abort semantics). Tokens are
//! `u32` values below [`DNA`].

use super::{EnqueueError, QueueFull, QueueStats, StatsSnapshot};
use crate::DNA;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A reserved dequeue slot, obtained from [`RfAnQueue::reserve`].
///
/// The holder owns the slot exclusively; poll it with
/// [`RfAnQueue::try_take`] until the token arrives (or until the
/// application-level termination condition says it never will).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotTicket(pub u64);

/// The retry-free, arbitrary-n concurrent queue on host threads.
///
/// ```
/// use gpu_queue::host::{RfAnQueue, SlotTicket};
///
/// let q = RfAnQueue::new(8);
/// // Consumers may reserve BEFORE data exists — that is the design.
/// let ticket = SlotTicket(q.reserve(1).start);
/// assert_eq!(q.try_take(ticket), None); // data not arrived
/// q.enqueue_batch(&[42]).unwrap();      // one fetch-add for any batch
/// assert_eq!(q.try_take(ticket), Some(42));
/// assert_eq!(q.stats().total_retries(), 0);
/// ```
#[derive(Debug)]
pub struct RfAnQueue {
    slots: Box<[AtomicU32]>,
    front: AtomicU64,
    rear: AtomicU64,
    stats: QueueStats,
}

impl RfAnQueue {
    /// Creates a queue with room for `capacity` tokens, all slots painted
    /// with the `dna` sentinel.
    pub fn new(capacity: usize) -> Self {
        let slots: Box<[AtomicU32]> = (0..capacity).map(|_| AtomicU32::new(DNA)).collect();
        RfAnQueue {
            slots,
            front: AtomicU64::new(0),
            rear: AtomicU64::new(0),
            // Variant-gated counters: any CAS or empty-retry count on this
            // queue is a bug and panics instead of polluting the stats.
            stats: QueueStats::retry_free(),
        }
    }

    /// Slot capacity (= total token bound between resets).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    // ---- Step-decomposed primitives ----
    //
    // Unlike the CAS queues there is no loop to unroll — every RF/AN
    // operation is already a single wait-free atomic — but the `verify`
    // explorer still drives these shims directly so its recorded histories
    // map one step to one shared-memory access.

    /// One step: reserve `n` dequeue slots on `Front`, returning the base.
    pub(crate) fn step_reserve_front(&self, n: u64) -> u64 {
        self.stats.afa();
        self.front.fetch_add(n, Ordering::Relaxed)
    }

    /// One step: reserve `n` enqueue slots on `Rear`, returning the base.
    pub(crate) fn step_reserve_rear(&self, n: u64) -> u64 {
        self.stats.afa();
        self.rear.fetch_add(n, Ordering::Relaxed)
    }

    /// One step: publish `token` into the reserved `slot`.
    pub(crate) fn step_publish(&self, slot: u64, token: u32) {
        debug_assert!(token < DNA, "token collides with dna sentinel");
        let s = &self.slots[slot as usize];
        debug_assert_eq!(
            s.load(Ordering::Relaxed),
            DNA,
            "slot overwritten before consumption"
        );
        s.store(token, Ordering::Release);
    }

    /// Reserves `n` dequeue slots with a single fetch-add — the
    /// arbitrary-n property: any batch for the price of one atomic.
    /// Never fails; slots beyond the data simply stay pending.
    pub fn reserve(&self, n: usize) -> Range<u64> {
        let base = self.step_reserve_front(n as u64);
        base..base + n as u64
    }

    /// Polls a reserved slot. Returns the token once it has arrived; no
    /// atomics beyond a single acquire load (plus the sentinel restore,
    /// which is private to this owner).
    pub fn try_take(&self, ticket: SlotTicket) -> Option<u32> {
        let idx = ticket.0 as usize;
        if idx >= self.slots.len() {
            // Out-of-bounds slots can never receive data (paper Listing 2
            // line 3); report "not yet" so the caller's termination logic
            // decides when to give up.
            return None;
        }
        let v = self.slots[idx].load(Ordering::Acquire);
        if v == DNA {
            self.stats.data_wait();
            None
        } else {
            // Restore the sentinel; we own this slot exclusively.
            self.slots[idx].store(DNA, Ordering::Relaxed);
            Some(v)
        }
    }

    /// Enqueues a batch of tokens with a single fetch-add on `Rear`.
    ///
    /// # Errors
    /// [`QueueFull`] if the reservation exceeds capacity. (The tokens up
    /// to capacity are *not* written — like the paper's abort, the caller
    /// should restart with a larger queue.)
    ///
    /// **Abort-semantics invariant:** a failed batch leaves `Rear`
    /// advanced past capacity — the fetch-add cannot be undone without
    /// reintroducing the CAS retry loop the design exists to avoid. After
    /// a `QueueFull` the queue is in abort state: no further tokens can be
    /// published (every later reservation also lands past capacity), and
    /// accounting views such as [`RfAnQueue::len_hint`] clamp `Rear` to
    /// capacity so the overshoot never counts phantom tokens. The only way
    /// forward is [`RfAnQueue::reset`] with a larger queue, exactly like
    /// the paper's kernel abort.
    ///
    /// # Panics
    /// Panics (debug) if a token equals the sentinel.
    pub fn enqueue_batch(&self, tokens: &[u32]) -> Result<(), QueueFull> {
        if tokens.is_empty() {
            return Ok(());
        }
        let base = self.step_reserve_rear(tokens.len() as u64);
        if base as usize + tokens.len() > self.slots.len() {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        for (i, &tok) in tokens.iter().enumerate() {
            self.step_publish(base + i as u64, tok);
        }
        Ok(())
    }

    /// Convenience single-token enqueue.
    pub fn enqueue(&self, token: u32) -> Result<(), QueueFull> {
        self.enqueue_batch(std::slice::from_ref(&token))
    }

    /// Non-overshooting variant of [`RfAnQueue::reserve`]: refuses a
    /// reservation that would land (even partly) past capacity — slots
    /// that can never receive data in a non-wrapping queue — *without*
    /// advancing `Front`. The pre-check reads `Front` non-atomically with
    /// the reservation, so under concurrent reservers it is best-effort;
    /// with exclusive access (the checkpoint-mirror use) it is exact.
    pub fn try_reserve(&self, n: usize) -> Result<Range<u64>, QueueFull> {
        let front = self.front.load(Ordering::Relaxed);
        if front as usize + n > self.slots.len() {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        Ok(self.reserve(n))
    }

    /// Non-panicking [`RfAnQueue::enqueue_batch`] for untrusted input
    /// (e.g. a checkpoint mirror replaying a snapshotted queue window).
    ///
    /// Validates every token against the sentinel *before* touching the
    /// queue ([`EnqueueError::InvalidToken`] leaves the state untouched)
    /// and pre-checks capacity so a visibly over-large batch is refused
    /// without burning the `Rear` reservation. Only when a concurrent
    /// racer steals the headroom between the pre-check and the fetch-add
    /// does the reservation overshoot — then the queue is in the same
    /// abort state as a failed [`RfAnQueue::enqueue_batch`].
    pub fn try_enqueue_batch(&self, tokens: &[u32]) -> Result<(), EnqueueError> {
        if tokens.is_empty() {
            return Ok(());
        }
        if let Some(&bad) = tokens.iter().find(|&&t| t == DNA) {
            return Err(EnqueueError::InvalidToken { token: bad });
        }
        let rear = self.rear.load(Ordering::Relaxed);
        if rear as usize + tokens.len() > self.slots.len() {
            return Err(QueueFull {
                capacity: self.slots.len(),
            }
            .into());
        }
        self.enqueue_batch(tokens).map_err(EnqueueError::from)
    }

    /// Number of published tokens not yet claimed by a reservation. Can
    /// be negative conceptually (reservations ahead of data) — clamped to
    /// zero, and only a hint under concurrency.
    ///
    /// `Rear` is clamped to capacity first: a failed [`enqueue_batch`]
    /// (abort semantics, see there) leaves `Rear` overshooting even though
    /// none of those tokens were published, and the overshoot must not be
    /// reported as queued data.
    ///
    /// [`enqueue_batch`]: RfAnQueue::enqueue_batch
    pub fn len_hint(&self) -> u64 {
        let rear = self
            .rear
            .load(Ordering::Relaxed)
            .min(self.slots.len() as u64);
        let front = self.front.load(Ordering::Relaxed);
        rear.saturating_sub(front)
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Restores the queue to its initial state. Requires `&mut self`, so
    /// no concurrent users can exist — this is the "retry the kernel with
    /// a larger queue / next iteration" host-side step.
    pub fn reset(&mut self) {
        for s in self.slots.iter() {
            s.store(DNA, Ordering::Relaxed);
        }
        self.front.store(0, Ordering::Relaxed);
        self.rear.store(0, Ordering::Relaxed);
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn single_thread_roundtrip() {
        let q = RfAnQueue::new(8);
        q.enqueue_batch(&[10, 20, 30]).unwrap();
        let r = q.reserve(3);
        let toks: Vec<u32> = r
            .clone()
            .map(|s| q.try_take(SlotTicket(s)).expect("data present"))
            .collect();
        assert_eq!(toks, vec![10, 20, 30]);
    }

    #[test]
    fn reservation_before_data_polls_pending() {
        let q = RfAnQueue::new(4);
        let r = q.reserve(1);
        let t = SlotTicket(r.start);
        assert_eq!(q.try_take(t), None);
        q.enqueue(77).unwrap();
        assert_eq!(q.try_take(t), Some(77));
        // Sentinel restored: polling again reports pending, not stale data.
        assert_eq!(q.try_take(t), None);
    }

    #[test]
    fn out_of_bounds_ticket_is_pending_forever() {
        let q = RfAnQueue::new(2);
        let r = q.reserve(5);
        assert_eq!(q.try_take(SlotTicket(r.end - 1)), None);
    }

    #[test]
    fn overflow_returns_queue_full() {
        let q = RfAnQueue::new(2);
        assert_eq!(q.enqueue_batch(&[1, 2, 3]), Err(QueueFull { capacity: 2 }));
    }

    #[test]
    fn overflow_does_not_report_phantom_tokens() {
        let q = RfAnQueue::new(2);
        q.enqueue_batch(&[1, 2]).unwrap();
        assert_eq!(q.len_hint(), 2);
        // The failed batch advances Rear past capacity (abort semantics)
        // but publishes nothing — len_hint must not count the overshoot.
        assert_eq!(q.enqueue_batch(&[3, 4, 5]), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.len_hint(), 2);
        // Draining the two real tokens empties the hint; the three
        // phantom reservations never surface.
        let r = q.reserve(2);
        assert_eq!(q.try_take(SlotTicket(r.start)), Some(1));
        assert_eq!(q.try_take(SlotTicket(r.start + 1)), Some(2));
        assert_eq!(q.len_hint(), 0);
        // Reset is the only recovery from abort state.
        let mut q = q;
        q.reset();
        assert_eq!(q.len_hint(), 0);
        q.enqueue_batch(&[7, 8]).unwrap();
        assert_eq!(q.len_hint(), 2);
    }

    #[test]
    fn try_enqueue_refuses_without_burning_the_reservation() {
        let q = RfAnQueue::new(2);
        q.enqueue_batch(&[1]).unwrap();
        // A visibly over-large batch is refused and Rear is untouched —
        // unlike enqueue_batch's abort semantics.
        assert_eq!(
            q.try_enqueue_batch(&[2, 3, 4]),
            Err(EnqueueError::Full(QueueFull { capacity: 2 }))
        );
        // The queue still works: the remaining slot is usable.
        q.try_enqueue_batch(&[2]).unwrap();
        assert_eq!(q.len_hint(), 2);
        let r = q.reserve(2);
        assert_eq!(q.try_take(SlotTicket(r.start)), Some(1));
        assert_eq!(q.try_take(SlotTicket(r.start + 1)), Some(2));
    }

    #[test]
    fn try_enqueue_rejects_sentinel_collisions_untouched() {
        let q = RfAnQueue::new(4);
        assert_eq!(
            q.try_enqueue_batch(&[1, DNA, 3]),
            Err(EnqueueError::InvalidToken { token: DNA })
        );
        assert_eq!(q.len_hint(), 0, "nothing published, Rear untouched");
        q.try_enqueue_batch(&[1, 2, 3]).unwrap();
        assert_eq!(q.len_hint(), 3);
    }

    #[test]
    fn try_reserve_refuses_past_capacity() {
        let q = RfAnQueue::new(3);
        q.enqueue_batch(&[5, 6]).unwrap();
        let r = q.try_reserve(2).unwrap();
        assert_eq!(q.try_take(SlotTicket(r.start)), Some(5));
        assert_eq!(q.try_take(SlotTicket(r.start + 1)), Some(6));
        // Front is at 2; reserving 2 more would cross capacity 3.
        assert_eq!(q.try_reserve(2), Err(QueueFull { capacity: 3 }));
        // Front unchanged: a fitting reservation still works.
        assert!(q.try_reserve(1).is_ok());
    }

    #[test]
    fn batch_reservation_is_one_afa() {
        let q = RfAnQueue::new(64);
        q.enqueue_batch(&(0..32).collect::<Vec<_>>()).unwrap();
        let before = q.stats().afa_ops;
        q.reserve(32);
        assert_eq!(q.stats().afa_ops - before, 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut q = RfAnQueue::new(4);
        q.enqueue_batch(&[1, 2]).unwrap();
        q.reserve(2);
        q.reset();
        assert_eq!(q.len_hint(), 0);
        assert_eq!(q.stats(), StatsSnapshot::default());
        q.enqueue(9).unwrap();
        let r = q.reserve(1);
        assert_eq!(q.try_take(SlotTicket(r.start)), Some(9));
    }

    #[test]
    fn concurrent_producers_consumers_conserve_tokens() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let q = RfAnQueue::new(PRODUCERS * PER_PRODUCER);
        let taken = StdAtomicU64::new(0);
        let mut seen: Vec<Vec<u32>> = Vec::new();
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = &q;
                scope.spawn(move || {
                    let base = (p * PER_PRODUCER) as u32;
                    for chunk in (0..PER_PRODUCER as u32).collect::<Vec<_>>().chunks(37) {
                        let toks: Vec<u32> = chunk.iter().map(|i| base + i).collect();
                        q.enqueue_batch(&toks).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..CONSUMERS {
                let q = &q;
                let taken = &taken;
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    let total = (PRODUCERS * PER_PRODUCER) as u64;
                    let mut pending: Vec<u64> = Vec::new();
                    loop {
                        if pending.is_empty() {
                            if taken.load(Ordering::Relaxed) >= total {
                                break;
                            }
                            pending.extend(q.reserve(16));
                        }
                        pending.retain(|&s| {
                            if let Some(tok) = q.try_take(SlotTicket(s)) {
                                got.push(tok);
                                taken.fetch_add(1, Ordering::Relaxed);
                                false
                            } else {
                                true
                            }
                        });
                        // Give up on slots that can never be filled once
                        // everything has been consumed.
                        if taken.load(Ordering::Relaxed) >= total {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    got
                }));
            }
            seen = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        let mut all: Vec<u32> = seen.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..(PRODUCERS * PER_PRODUCER) as u32).collect();
        assert_eq!(all, expect, "every token exactly once");
        // Retry-free: no CAS, no empty exceptions — only data waits.
        let s = q.stats();
        assert_eq!(s.cas_attempts, 0);
        assert_eq!(s.empty_retries, 0);
    }
}
