//! A persistent-worker pool on the host RF/AN queue — the CPU analogue of
//! the paper's persistent-thread model.
//!
//! [`WorkPool::run`] spawns workers that loop the paper's Algorithm 1:
//! request a task token, process it through a user-supplied handler
//! (which may produce new tokens), and repeat until no task is in flight
//! anywhere. Termination uses the same outstanding-task counter the
//! device kernels use: the pool increments it before publishing new
//! tokens and decrements it after handling, so "counter == 0" is a sound
//! quiescence signal.
//!
//! ```
//! use gpu_queue::host::WorkPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Count down from each seed token: token t spawns t-1, ..., 1.
//! let visited = AtomicU64::new(0);
//! let pool = WorkPool::new(1024);
//! pool.run(4, &[5, 3], |token, out| {
//!     visited.fetch_add(1, Ordering::Relaxed);
//!     if token > 1 {
//!         out.push(token - 1);
//!     }
//! })
//! .unwrap();
//! assert_eq!(visited.load(Ordering::Relaxed), 5 + 3);
//! ```

use super::{QueueFull, RfAnQueue, SlotTicket, StatsSnapshot};
use std::sync::atomic::{AtomicI64, Ordering};

/// Tokens a worker reserves per queue interaction.
const BATCH: usize = 8;

/// A bounded persistent-worker pool over the retry-free queue.
///
/// The capacity bounds the total number of tokens ever enqueued during one
/// [`WorkPool::run`] (the queues are non-wrapping); size it like the
/// paper sizes its device queue — by the workload's token bound.
pub struct WorkPool {
    queue: RfAnQueue,
    pending: AtomicI64,
}

impl WorkPool {
    /// Creates a pool whose queue holds up to `capacity` tokens per run.
    pub fn new(capacity: usize) -> Self {
        WorkPool {
            queue: RfAnQueue::new(capacity),
            pending: AtomicI64::new(0),
        }
    }

    /// Runs `handler` over every token reachable from `seeds` using
    /// `threads` persistent workers. The handler receives each token and
    /// an outbox for newly discovered tokens; it is called exactly once
    /// per enqueued token (the *application* decides whether a logical
    /// task may be enqueued twice — see the workload layer's on-queue bit).
    ///
    /// # Errors
    /// Returns [`QueueFull`] if the run tries to enqueue more than the
    /// pool's capacity.
    ///
    /// # Panics
    /// Panics if `threads == 0` or a worker panics.
    pub fn run<F>(&self, threads: usize, seeds: &[u32], handler: F) -> Result<(), QueueFull>
    where
        F: Fn(u32, &mut Vec<u32>) + Sync,
    {
        assert!(threads > 0, "need at least one worker");
        if seeds.is_empty() {
            return Ok(());
        }
        self.pending.store(seeds.len() as i64, Ordering::Release);
        self.queue.enqueue_batch(seeds)?;

        let overflow = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut tickets: Vec<u64> = Vec::new();
                    let mut outbox: Vec<u32> = Vec::new();
                    loop {
                        if self.pending.load(Ordering::Acquire) <= 0
                            || overflow.load(Ordering::Relaxed)
                        {
                            return;
                        }
                        if tickets.is_empty() {
                            tickets.extend(self.queue.reserve(BATCH));
                        }
                        let mut completed = 0i64;
                        tickets.retain(|&slot| match self.queue.try_take(SlotTicket(slot)) {
                            Some(token) => {
                                handler(token, &mut outbox);
                                completed += 1;
                                false
                            }
                            None => true,
                        });
                        if !outbox.is_empty() {
                            self.pending
                                .fetch_add(outbox.len() as i64, Ordering::AcqRel);
                            if self.queue.enqueue_batch(&outbox).is_err() {
                                overflow.store(true, Ordering::Relaxed);
                                // Unblock everyone: drop the in-flight count.
                                self.pending.store(0, Ordering::Release);
                                return;
                            }
                            outbox.clear();
                        }
                        if completed > 0 {
                            self.pending.fetch_sub(completed, Ordering::AcqRel);
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });

        if overflow.load(Ordering::Relaxed) {
            Err(QueueFull {
                capacity: self.queue.capacity(),
            })
        } else {
            Ok(())
        }
    }

    /// Queue operation counters accumulated so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.queue.stats()
    }

    /// Resets the pool for another run (exclusive access required).
    pub fn reset(&mut self) {
        self.queue.reset();
        self.pending.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn processes_every_seed() {
        let hits = AtomicU64::new(0);
        let pool = WorkPool::new(64);
        pool.run(3, &(0..32).collect::<Vec<_>>(), |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn follows_chains_of_discovered_work() {
        // token t spawns t-1 ... total tokens = Σ seeds
        let hits = AtomicU64::new(0);
        let pool = WorkPool::new(256);
        pool.run(4, &[10, 7, 1], |t, out| {
            hits.fetch_add(1, Ordering::Relaxed);
            if t > 1 {
                out.push(t - 1);
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 10 + 7 + 1);
    }

    #[test]
    fn empty_seeds_is_a_noop() {
        let pool = WorkPool::new(8);
        pool.run(2, &[], |_, _| panic!("no tokens")).unwrap();
    }

    #[test]
    fn overflow_reports_queue_full() {
        let pool = WorkPool::new(4);
        // Each token spawns two more forever: must overflow.
        let result = pool.run(2, &[1_000_000], |t, out| {
            out.push(t);
            out.push(t);
        });
        assert!(result.is_err());
    }

    #[test]
    fn reset_allows_reuse() {
        let hits = AtomicU64::new(0);
        let mut pool = WorkPool::new(16);
        pool.run(2, &[1, 2], |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.reset();
        pool.run(2, &[3], |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn single_worker_works() {
        let hits = AtomicU64::new(0);
        let pool = WorkPool::new(64);
        pool.run(1, &[8], |t, out| {
            hits.fetch_add(1, Ordering::Relaxed);
            if t > 1 {
                out.push(t / 2);
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4); // 8, 4, 2, 1
    }
}
