//! Host-side BASE queue: the traditional per-token CAS design.
//!
//! Every operation claims exactly one token with a compare-exchange ticket
//! on `Front`/`Rear`; contention produces failed CAS attempts that loop,
//! and dequeue on an empty queue raises the queue-empty exception
//! (returns `None` after counting a retry) — the two overheads the
//! paper's design eliminates.

use super::{QueueFull, QueueStats, StatsSnapshot};
use crate::DNA;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Traditional bounded lock-free queue (per-token CAS tickets,
/// non-wrapping; see the module docs of [`super`]).
#[derive(Debug)]
pub struct BaseQueue {
    slots: Box<[AtomicU32]>,
    front: AtomicU64,
    rear: AtomicU64,
    stats: QueueStats,
}

impl BaseQueue {
    /// Creates a queue with room for `capacity` tokens.
    pub fn new(capacity: usize) -> Self {
        BaseQueue {
            slots: (0..capacity).map(|_| AtomicU32::new(DNA)).collect(),
            front: AtomicU64::new(0),
            rear: AtomicU64::new(0),
            stats: QueueStats::default(),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    // ---- Step-decomposed primitives ----
    //
    // The public operations are thin drivers over these single-step shims
    // so the `verify` explorer can interleave *the same* shared-memory
    // accesses the production path executes, one step at a time. The CAS
    // shims use the strong `compare_exchange` (a weak CAS may fail
    // spuriously, which would make explored schedules nondeterministic;
    // on the architectures we run, strong and weak compile identically
    // for this pattern).

    /// One step: read `Rear`.
    pub(crate) fn step_load_rear(&self) -> u64 {
        self.rear.load(Ordering::Acquire)
    }

    /// One step: read `Front`.
    pub(crate) fn step_load_front(&self) -> u64 {
        self.front.load(Ordering::Acquire)
    }

    /// One push CAS attempt on `Rear`; `Ok` claims slot `expected`.
    pub(crate) fn step_cas_rear(&self, expected: u64) -> Result<(), u64> {
        self.stats.cas_attempt();
        match self.rear.compare_exchange(
            expected,
            expected + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => {
                self.stats.cas_failure();
                Err(actual)
            }
        }
    }

    /// One pop CAS attempt on `Front`; `Ok` claims slot `expected`.
    pub(crate) fn step_cas_front(&self, expected: u64) -> Result<(), u64> {
        self.stats.cas_attempt();
        match self.front.compare_exchange(
            expected,
            expected + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(actual) => {
                self.stats.cas_failure();
                Err(actual)
            }
        }
    }

    /// One step: publish `token` into the claimed `slot`.
    pub(crate) fn step_publish(&self, slot: u64, token: u32) {
        self.slots[slot as usize].store(token, Ordering::Release);
    }

    /// Non-counting probe: whether the claimed `slot` holds data yet. The
    /// explorer uses it to decide when a blocked consumer can progress;
    /// it performs no step of its own.
    pub(crate) fn slot_ready(&self, slot: u64) -> bool {
        self.slots[slot as usize].load(Ordering::Acquire) != DNA
    }

    /// One step: take data from the claimed `slot` (restoring the
    /// sentinel), or count a data wait if it has not been published yet.
    pub(crate) fn step_take_slot(&self, slot: u64) -> Option<u32> {
        let s = &self.slots[slot as usize];
        let v = s.load(Ordering::Acquire);
        if v == DNA {
            self.stats.data_wait();
            None
        } else {
            s.store(DNA, Ordering::Relaxed);
            Some(v)
        }
    }

    /// One step: record the queue-empty exception.
    pub(crate) fn step_pop_empty(&self) {
        self.stats.empty_retry();
    }

    /// Enqueues one token: CAS-reserve a `Rear` ticket, then publish the
    /// token with a release store. Loops on CAS failure.
    pub fn push(&self, token: u32) -> Result<(), QueueFull> {
        debug_assert!(token < DNA);
        let mut rear = self.step_load_rear();
        loop {
            if rear as usize >= self.slots.len() {
                return Err(QueueFull {
                    capacity: self.slots.len(),
                });
            }
            match self.step_cas_rear(rear) {
                Ok(()) => {
                    self.step_publish(rear, token);
                    return Ok(());
                }
                Err(actual) => rear = actual,
            }
        }
    }

    /// Dequeues one token, or returns `None` (queue-empty exception) when
    /// no published ticket is claimable. A claimed ticket whose data has
    /// not landed yet is spin-waited briefly — the publishing store
    /// follows the reservation immediately on the producer side.
    pub fn try_pop(&self) -> Option<u32> {
        let mut front = self.step_load_front();
        loop {
            let rear = self.step_load_rear();
            if front >= rear {
                self.step_pop_empty();
                return None;
            }
            match self.step_cas_front(front) {
                Ok(()) => loop {
                    if let Some(v) = self.step_take_slot(front) {
                        return Some(v);
                    }
                    std::hint::spin_loop();
                },
                Err(actual) => front = actual,
            }
        }
    }

    /// Published-token estimate.
    ///
    /// Unlike the RF/AN queue, `Rear` can never overshoot capacity here:
    /// [`push`](BaseQueue::push) checks the bound *before* its CAS, so a
    /// rejected push leaves `Rear` untouched and no clamp is needed.
    pub fn len_hint(&self) -> u64 {
        self.rear
            .load(Ordering::Relaxed)
            .saturating_sub(self.front.load(Ordering::Relaxed))
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Restores the initial state (exclusive access required).
    pub fn reset(&mut self) {
        for s in self.slots.iter() {
            s.store(DNA, Ordering::Relaxed);
        }
        self.front.store(0, Ordering::Relaxed);
        self.rear.store(0, Ordering::Relaxed);
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let q = BaseQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn empty_pop_counts_exception_retry() {
        let q = BaseQueue::new(2);
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.stats().empty_retries, 1);
    }

    #[test]
    fn overflow_is_queue_full() {
        let q = BaseQueue::new(1);
        q.push(5).unwrap();
        assert_eq!(q.push(6), Err(QueueFull { capacity: 1 }));
    }

    #[test]
    fn every_op_is_a_cas() {
        let q = BaseQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.try_pop().unwrap();
        let s = q.stats();
        assert_eq!(s.afa_ops, 0);
        assert!(s.cas_attempts >= 3);
    }

    #[test]
    fn concurrent_token_conservation() {
        const THREADS: usize = 4;
        const PER: usize = 5_000;
        let q = BaseQueue::new(THREADS * PER);
        let mut all: Vec<u32> = Vec::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..PER as u32 {
                        q.push((t * PER) as u32 + i).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                let q = &q;
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while got.len() < PER || misses < 10_000 {
                        match q.try_pop() {
                            Some(v) => {
                                got.push(v);
                                misses = 0;
                            }
                            None => misses += 1,
                        }
                        if misses >= 10_000 {
                            break;
                        }
                    }
                    got
                }));
            }
            all = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
        });
        // Drain whatever the consumers left behind.
        while let Some(v) = q.try_pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..(THREADS * PER) as u32).collect::<Vec<_>>());
    }

    #[test]
    fn reset_reuses_storage() {
        let mut q = BaseQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.reset();
        q.push(9).unwrap();
        assert_eq!(q.try_pop(), Some(9));
    }
}
