//! Host-side (real-thread) implementations of the three queue designs.
//!
//! These are genuine Rust concurrent data structures implementing the same
//! algorithms as the device variants, so the paper's design can be
//! exercised and benchmarked on real CPU hardware:
//!
//! * [`RfAnQueue`] — the proposed design: fetch-add ticket reservation
//!   (never fails) plus *data-not-arrived* sentinel slots. Dequeuers
//!   reserve slot tickets and poll them; enqueuers batch-publish. No
//!   operation ever retries.
//! * [`AnQueue`] — batch (arbitrary-n) reservation with compare-exchange:
//!   retries on contention, raises queue-empty instead of reserving ahead.
//! * [`BaseQueue`] — classic per-token CAS ticket queue.
//! * [`MutexQueue`] — a `Mutex<VecDeque>` strawman for benchmarks.
//! * [`TypedRfAnQueue`] — the RF/AN protocol carrying arbitrary `Send`
//!   payloads (the sentinel word doubles as the publication flag).
//! * [`WorkPool`] — a persistent-worker pool on the RF/AN queue: the
//!   paper's Algorithm 1 on OS threads, with sound quiescence detection.
//! * [`SegmentedRfAnQueue`] / [`SegmentedRfQueue`] / [`SegmentedAnQueue`]
//!   — the same protocols over linked segments of bounded rings with a
//!   recycled-segment pool: no queue-full condition, memory bounded by
//!   live occupancy (ROADMAP item 3; DESIGN.md §13).
//!
//! The classic queues are **bounded and non-wrapping**: `capacity` must bound the
//! total number of tokens ever enqueued between [`reset`](RfAnQueue::reset)
//! calls, exactly like the device queues (and the paper's driver, which sizes
//! the queue by the task count — the vertex count for a traversal). Overflow returns [`QueueFull`] — the
//! paper's abort semantics, never a retry. The segmented variants keep
//! the per-segment protocol identical but turn overflow into a segment
//! append, so only `seg_cap` (slots per segment) is configured.
//!
//! Every queue keeps [`QueueStats`] so tests and benches can observe the
//! atomic-operation and retry behaviour the paper measures.

mod an;
mod base;
mod mutex;
mod pool;
mod rfan;
mod segmented;
mod stats;
mod typed;

pub use an::AnQueue;
pub use base::BaseQueue;
pub use mutex::MutexQueue;
pub use pool::WorkPool;
pub use rfan::{RfAnQueue, SlotTicket};
pub use segmented::{SegmentedAnQueue, SegmentedRfAnQueue, SegmentedRfQueue};
pub use stats::{QueueStats, StatsSnapshot};
pub use typed::{TypedRfAnQueue, TypedTicket};

/// Error returned when an enqueue would exceed the queue's capacity.
///
/// Mirrors the paper's queue-full exception: "It indicates there are more
/// available tasks ready for execution than can be stored in the queue …
/// the user can retry the kernel with a larger queue."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// Capacity that was exceeded.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue full: capacity {} exceeded", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Error returned by the non-panicking enqueue surface
/// ([`RfAnQueue::try_enqueue_batch`]), used where the input may be
/// untrusted — e.g. a checkpoint mirror replaying a snapshotted queue
/// window, where a corrupt snapshot must surface as an error rather than
/// a debug-assert panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The batch does not fit; nothing was published (see the
    /// abort-semantics notes on [`RfAnQueue::try_enqueue_batch`]).
    Full(QueueFull),
    /// A token collides with the `dna` sentinel — corrupt input; nothing
    /// was published and the queue state is untouched.
    InvalidToken {
        /// The offending token value.
        token: u32,
    },
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::Full(e) => e.fmt(f),
            EnqueueError::InvalidToken { token } => {
                write!(f, "token {token:#x} collides with the dna sentinel")
            }
        }
    }
}

impl std::error::Error for EnqueueError {}

impl From<QueueFull> for EnqueueError {
    fn from(e: QueueFull) -> Self {
        EnqueueError::Full(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_displays_capacity() {
        assert!(QueueFull { capacity: 64 }.to_string().contains("64"));
    }

    #[test]
    fn enqueue_error_displays_both_variants() {
        let e = EnqueueError::from(QueueFull { capacity: 8 });
        assert!(e.to_string().contains("capacity 8"));
        let e = EnqueueError::InvalidToken { token: u32::MAX };
        assert!(e.to_string().contains("sentinel"));
    }
}
