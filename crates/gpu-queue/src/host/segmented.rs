//! Host-side segmented RF/AN queue family (ROADMAP item 3).
//!
//! Each *segment* is an unmodified bounded retry-free ring of `seg_cap`
//! sentinel-initialized slots; the virtual ticket space `0..` maps slot
//! `t` to segment `t / seg_cap`, offset `t % seg_cap`. `Front` and
//! `Rear` are ordinary monotone ticket counters — the AFA fast path is
//! byte-for-byte the bounded [`RfAnQueue`](super::RfAnQueue) protocol
//! *within* a segment — and overflow is impossible: a producer whose
//! reservation crosses a segment boundary installs the covering
//! segment(s) from a recycled-segment pool instead of aborting.
//!
//! **Segment handoff.** Installation publishes a segment through the
//! directory under a lock (the host mirror's slow path; the device
//! implementation in [`crate::device`] uses a lock-free tagged ring).
//! Segments install strictly in order, so the installed prefix is
//! contiguous and `installed * seg_cap` is the exact boundary of
//! materialized storage — the [`len_hint`](SegmentedRfAnQueue::len_hint)
//! clamp. A segment retires only when **all** `seg_cap` of its slots
//! have been consumed; retiring returns its storage to the pool. Unique
//! tickets + the full-drain requirement exclude ABA: a ticket into a
//! recycled segment must already have been consumed (otherwise the
//! segment could not have drained), so no live consumer can observe
//! reused storage under an old ticket.
//!
//! Fast-path operation costs match the bounded queue: one AFA per batch
//! reservation, sentinel stores to publish, sentinel swaps to take.
//! Zero CAS, zero retries — [`QueueStats::retry_free`] panics otherwise.
//! Segment installs are counted separately
//! ([`StatsSnapshot::segment_appends`]).

use super::{EnqueueError, QueueStats, SlotTicket, StatsSnapshot};
use crate::DNA;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One segment's storage: a bounded ring plus its drain counter.
#[derive(Debug)]
struct SegStorage {
    slots: Box<[AtomicU32]>,
    /// Slots of the *current installation* consumed so far; the take
    /// that raises it to `seg_cap` retires the segment.
    consumed: AtomicU64,
}

impl SegStorage {
    fn new(seg_cap: usize) -> Arc<SegStorage> {
        Arc::new(SegStorage {
            slots: (0..seg_cap).map(|_| AtomicU32::new(DNA)).collect(),
            consumed: AtomicU64::new(0),
        })
    }
}

/// Directory entry for one virtual segment.
#[derive(Debug)]
enum DirEntry {
    /// Installed and live: tickets resolve to this storage.
    Installed(Arc<SegStorage>),
    /// Fully drained; its storage went back to the pool.
    Drained,
}

#[derive(Debug, Default)]
struct Directory {
    /// `entries[seg]` for every segment ever installed (`Drained`
    /// entries are a fixed-size tombstone; the live window is
    /// `recycled..installed`).
    entries: Vec<DirEntry>,
    /// Contiguous installed prefix: the next segment to install.
    installed: u64,
    /// Segments fully drained and recycled (not necessarily a prefix:
    /// a slow consumer in an old segment does not block newer segments
    /// from retiring — each segment's storage is independent).
    drained: u64,
    /// Recycled storages awaiting reinstallation.
    pool: Vec<Arc<SegStorage>>,
    /// Storages ever allocated fresh — the memory-bound gauge: bounded
    /// by peak *live* segments, not lifetime enqueues.
    fresh_allocs: u64,
}

/// The shared segment machinery: directory, pool, and slot resolution.
/// Ticket *policy* (AFA vs. CAS reservation) lives in the wrapping
/// queue types.
#[derive(Debug)]
struct SegRing {
    seg_cap: usize,
    dir: Mutex<Directory>,
    /// `installed * seg_cap`, maintained under the directory lock but
    /// readable lock-free: the exact amount of materialized slot
    /// storage, and the saturation bound for `len_hint`.
    installed_cap: AtomicU64,
}

impl SegRing {
    fn new(seg_cap: usize) -> SegRing {
        assert!(seg_cap > 0, "segment capacity must be positive");
        SegRing {
            seg_cap,
            dir: Mutex::new(Directory::default()),
            installed_cap: AtomicU64::new(0),
        }
    }

    /// Installs the next uninstalled segment if the installed prefix
    /// does not yet cover `through_seg`; returns the segment installed,
    /// if any. One installation = one segment append.
    fn install_next(&self, through_seg: u64, stats: &QueueStats) -> Option<u64> {
        let mut dir = self.dir.lock().unwrap();
        if dir.installed > through_seg {
            return None;
        }
        let seg = dir.installed;
        let storage = dir.pool.pop().unwrap_or_else(|| {
            dir.fresh_allocs += 1;
            SegStorage::new(self.seg_cap)
        });
        debug_assert!(storage
            .slots
            .iter()
            .all(|s| s.load(Ordering::Relaxed) == DNA));
        debug_assert_eq!(dir.entries.len() as u64, dir.installed);
        // The linearization point of the handoff: the directory
        // entry flips from absent to Installed while holding the
        // lock (the device path's single tagged-ring store).
        dir.entries.push(DirEntry::Installed(storage));
        dir.installed += 1;
        self.installed_cap
            .store(dir.installed * self.seg_cap as u64, Ordering::Release);
        stats.segment_append();
        Some(seg)
    }

    /// Installs segments in order until `through_seg` is live. Counts
    /// one segment append per installation. Returns how many segments
    /// this call installed.
    fn ensure_installed(&self, through_seg: u64, stats: &QueueStats) -> u64 {
        let mut appended = 0;
        while self.install_next(through_seg, stats).is_some() {
            appended += 1;
        }
        appended
    }

    /// Resolves a ticket's segment storage, if installed and live.
    fn resolve(&self, slot: u64) -> Option<Arc<SegStorage>> {
        let seg = (slot / self.seg_cap as u64) as usize;
        let dir = self.dir.lock().unwrap();
        match dir.entries.get(seg) {
            Some(DirEntry::Installed(storage)) => Some(Arc::clone(storage)),
            _ => None,
        }
    }

    /// Publishes `token` into a claimed slot of an installed segment.
    fn publish(&self, slot: u64, token: u32) {
        debug_assert!(token < DNA, "token collides with the dna sentinel");
        let storage = self
            .resolve(slot)
            .expect("publish into an uninstalled segment");
        let off = (slot % self.seg_cap as u64) as usize;
        debug_assert_eq!(
            storage.slots[off].load(Ordering::Relaxed),
            DNA,
            "slot {slot} double-published"
        );
        storage.slots[off].store(token, Ordering::Release);
    }

    /// Takes data from a claimed slot. Returns the value (None counts a
    /// data wait: unpublished, or the segment is not installed yet) and
    /// the segment index if this take drained it (retired + recycled).
    fn take(&self, slot: u64, stats: &QueueStats) -> (Option<u32>, Option<u64>) {
        let seg = slot / self.seg_cap as u64;
        let Some(storage) = self.resolve(slot) else {
            // Not installed yet (reserve-ahead past materialized
            // storage) or already drained — either way, no data here
            // for this ticket.
            stats.data_wait();
            return (None, None);
        };
        let off = (slot % self.seg_cap as u64) as usize;
        let s = &storage.slots[off];
        let v = s.load(Ordering::Acquire);
        if v == DNA {
            stats.data_wait();
            return (None, None);
        }
        // Private pickup: restore the sentinel (no atomics on the slot),
        // then count the drain. The fetch_add serializes retirement:
        // exactly one take observes the count reach seg_cap.
        s.store(DNA, Ordering::Relaxed);
        let drained = storage.consumed.fetch_add(1, Ordering::AcqRel) + 1;
        if drained == self.seg_cap as u64 {
            let mut dir = self.dir.lock().unwrap();
            storage.consumed.store(0, Ordering::Relaxed);
            dir.entries[seg as usize] = DirEntry::Drained;
            dir.drained += 1;
            dir.pool.push(storage);
            (Some(v), Some(seg))
        } else {
            (Some(v), None)
        }
    }

    /// Restores the initial state (exclusive access required).
    fn reset(&self) {
        let mut dir = self.dir.lock().unwrap();
        let entries = std::mem::take(&mut dir.entries);
        for e in entries {
            if let DirEntry::Installed(storage) = e {
                for s in storage.slots.iter() {
                    s.store(DNA, Ordering::Relaxed);
                }
                storage.consumed.store(0, Ordering::Relaxed);
                dir.pool.push(storage);
            }
        }
        dir.installed = 0;
        dir.drained = 0;
        self.installed_cap.store(0, Ordering::Relaxed);
    }
}

/// Segmented retry-free arbitrary-n queue: the bounded
/// [`RfAnQueue`](super::RfAnQueue) protocol over linked segments.
/// `enqueue_batch` cannot fail — there is no queue-full condition.
#[derive(Debug)]
pub struct SegmentedRfAnQueue {
    ring: SegRing,
    front: AtomicU64,
    rear: AtomicU64,
    stats: QueueStats,
}

impl SegmentedRfAnQueue {
    /// Creates a queue of `seg_cap`-slot segments. No storage is
    /// materialized until the first reservation touches it.
    pub fn new(seg_cap: usize) -> Self {
        SegmentedRfAnQueue {
            ring: SegRing::new(seg_cap),
            front: AtomicU64::new(0),
            rear: AtomicU64::new(0),
            stats: QueueStats::retry_free(),
        }
    }

    /// Slots per segment.
    pub fn seg_cap(&self) -> usize {
        self.ring.seg_cap
    }

    /// Segments currently live (installed, not yet drained).
    pub fn live_segments(&self) -> u64 {
        let dir = self.ring.dir.lock().unwrap();
        dir.installed - dir.drained
    }

    /// Segment storages ever allocated fresh: the memory bound is peak
    /// live occupancy, not lifetime enqueues.
    pub fn fresh_allocs(&self) -> u64 {
        self.ring.dir.lock().unwrap().fresh_allocs
    }

    // ---- Step-decomposed primitives ----
    //
    // As in the bounded queues, the public operations are drivers over
    // single-step shims so the `verify` explorer can interleave the
    // exact production memory accesses.

    /// One step: the consumer-side AFA reserving `n` tickets.
    pub(crate) fn step_reserve_front(&self, n: u64) -> u64 {
        self.stats.afa();
        self.front.fetch_add(n, Ordering::Relaxed)
    }

    /// One step: the producer-side AFA reserving `n` tickets.
    pub(crate) fn step_reserve_rear(&self, n: u64) -> u64 {
        self.stats.afa();
        self.rear.fetch_add(n, Ordering::Relaxed)
    }

    /// One step: install the next uninstalled segment if the installed
    /// prefix does not yet cover `through_seg`; returns the segment
    /// installed, if any. Mirrors one iteration of the enqueue path's
    /// install loop, so explorer FSMs can record each installation as
    /// its own linearization point.
    pub(crate) fn step_install_next(&self, through_seg: u64) -> Option<u64> {
        self.ring.install_next(through_seg, &self.stats)
    }

    /// One step: publish `token` into a claimed slot.
    pub(crate) fn step_publish(&self, slot: u64, token: u32) {
        self.ring.publish(slot, token);
    }

    /// One step: poll a claimed slot; also reports the segment this
    /// take drained, if any (the recycle linearization point).
    pub(crate) fn step_try_take(&self, slot: u64) -> (Option<u32>, Option<u64>) {
        self.ring.take(slot, &self.stats)
    }

    /// Reserves `n` dequeue tickets with one AFA (never fails, may
    /// outrun `Rear` and even the installed prefix).
    pub fn reserve(&self, n: u64) -> Range<u64> {
        let base = self.step_reserve_front(n);
        base..base + n
    }

    /// Polls a reserved ticket: `Some` exactly once when data arrives.
    pub fn try_take(&self, ticket: SlotTicket) -> Option<u32> {
        self.step_try_take(ticket.0).0
    }

    /// Enqueues a whole batch: one AFA on `Rear`, then installs any
    /// segment the reserved region touches beyond the installed prefix,
    /// then publishes. Cannot fail — overflow is a segment append.
    /// Returns the base ticket of the reserved region.
    pub fn enqueue_batch(&self, tokens: &[u32]) -> u64 {
        for &t in tokens {
            assert!(t < DNA, "token {t:#x} collides with the dna sentinel");
        }
        let n = tokens.len() as u64;
        let base = self.step_reserve_rear(n);
        if n == 0 {
            return base;
        }
        let last_seg = (base + n - 1) / self.ring.seg_cap as u64;
        self.ring.ensure_installed(last_seg, &self.stats);
        for (i, &tok) in tokens.iter().enumerate() {
            self.step_publish(base + i as u64, tok);
        }
        base
    }

    /// Token-validating enqueue for mirror checks: segmented queues
    /// have no capacity to exceed, so the only failure mode left is a
    /// sentinel-colliding token.
    pub fn try_enqueue_batch(&self, tokens: &[u32]) -> Result<u64, EnqueueError> {
        if let Some(&bad) = tokens.iter().find(|&&t| t == DNA) {
            return Err(EnqueueError::InvalidToken { token: bad });
        }
        Ok(self.enqueue_batch(tokens))
    }

    /// Enqueues one token.
    pub fn enqueue(&self, token: u32) {
        self.enqueue_batch(std::slice::from_ref(&token));
    }

    /// Published-token estimate. `Rear` may transiently exceed the
    /// installed prefix (a producer between its reservation AFA and the
    /// covering segment install), so the hint saturates against the
    /// total capacity across *all installed segments* — not a single
    /// segment's capacity, which a segmented queue legitimately
    /// exceeds (PR 1's bounded-queue clamp, generalized).
    pub fn len_hint(&self) -> u64 {
        let rear = self
            .rear
            .load(Ordering::Relaxed)
            .min(self.ring.installed_cap.load(Ordering::Acquire));
        rear.saturating_sub(self.front.load(Ordering::Relaxed))
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Restores the initial state (exclusive access required).
    pub fn reset(&mut self) {
        self.ring.reset();
        self.front.store(0, Ordering::Relaxed);
        self.rear.store(0, Ordering::Relaxed);
        self.stats.reset();
    }
}

/// Segmented retry-free queue *without* arbitrary-n: per-token AFA
/// reservations over the same segment machinery (the RF-only ablation's
/// segmented sibling).
#[derive(Debug)]
pub struct SegmentedRfQueue {
    inner: SegmentedRfAnQueue,
}

impl SegmentedRfQueue {
    /// Creates a queue of `seg_cap`-slot segments.
    pub fn new(seg_cap: usize) -> Self {
        SegmentedRfQueue {
            inner: SegmentedRfAnQueue::new(seg_cap),
        }
    }

    /// Enqueues one token: one AFA, then publish (installing the
    /// covering segment when the ticket crosses a boundary).
    pub fn enqueue(&self, token: u32) {
        self.inner.enqueue_batch(std::slice::from_ref(&token));
    }

    /// Reserves one dequeue ticket (one AFA, never fails).
    pub fn reserve(&self) -> SlotTicket {
        SlotTicket(self.inner.step_reserve_front(1))
    }

    /// Polls a reserved ticket.
    pub fn try_take(&self, ticket: SlotTicket) -> Option<u32> {
        self.inner.try_take(ticket)
    }

    /// Published-token estimate (see [`SegmentedRfAnQueue::len_hint`]).
    pub fn len_hint(&self) -> u64 {
        self.inner.len_hint()
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    /// Restores the initial state (exclusive access required).
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Segmented CAS queue with batched reservations: the bounded
/// [`AnQueue`](super::AnQueue) protocol over linked segments. The CAS
/// can still fail under contention (counted), but the queue-full
/// rejection is gone — a winning CAS always finds storage because the
/// producer installs the covering segments before publishing.
#[derive(Debug)]
pub struct SegmentedAnQueue {
    ring: SegRing,
    front: AtomicU64,
    rear: AtomicU64,
    stats: QueueStats,
}

impl SegmentedAnQueue {
    /// Creates a queue of `seg_cap`-slot segments.
    pub fn new(seg_cap: usize) -> Self {
        SegmentedAnQueue {
            ring: SegRing::new(seg_cap),
            front: AtomicU64::new(0),
            rear: AtomicU64::new(0),
            stats: QueueStats::default(),
        }
    }

    /// Slots per segment.
    pub fn seg_cap(&self) -> usize {
        self.ring.seg_cap
    }

    fn cas(&self, counter: &AtomicU64, expected: u64, n: u64) -> Result<(), u64> {
        self.stats.cas_attempt();
        match counter.compare_exchange(expected, expected + n, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(()),
            Err(actual) => {
                self.stats.cas_failure();
                Err(actual)
            }
        }
    }

    /// Enqueues a whole batch with one (looping) CAS reservation on
    /// `Rear`, installing covering segments before publishing. Never
    /// rejects: there is no capacity bound to exceed.
    pub fn push_batch(&self, tokens: &[u32]) {
        if tokens.is_empty() {
            return;
        }
        for &t in tokens {
            assert!(t < DNA, "token {t:#x} collides with the dna sentinel");
        }
        let n = tokens.len() as u64;
        let mut rear = self.rear.load(Ordering::Acquire);
        loop {
            match self.cas(&self.rear, rear, n) {
                Ok(()) => {
                    let last_seg = (rear + n - 1) / self.ring.seg_cap as u64;
                    self.ring.ensure_installed(last_seg, &self.stats);
                    for (i, &tok) in tokens.iter().enumerate() {
                        self.ring.publish(rear + i as u64, tok);
                    }
                    return;
                }
                Err(actual) => rear = actual,
            }
        }
    }

    /// Dequeues up to `max` tokens into `out` with one (looping) CAS
    /// reservation on `Front`; `0` means the queue-empty exception.
    pub fn pop_batch(&self, out: &mut Vec<u32>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut front = self.front.load(Ordering::Acquire);
        loop {
            let rear = self.rear.load(Ordering::Acquire);
            let avail = rear.saturating_sub(front);
            if avail == 0 {
                self.stats.empty_retry();
                return 0;
            }
            let n = avail.min(max as u64);
            match self.cas(&self.front, front, n) {
                Ok(()) => {
                    for slot in front..front + n {
                        // Publication (and segment installation) follows
                        // reservation on the producer side; spin for the
                        // brief window.
                        loop {
                            let (v, _) = self.ring.take(slot, &self.stats);
                            if let Some(v) = v {
                                out.push(v);
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    return n as usize;
                }
                Err(actual) => front = actual,
            }
        }
    }

    /// Published-token estimate (see [`SegmentedRfAnQueue::len_hint`]).
    pub fn len_hint(&self) -> u64 {
        let rear = self
            .rear
            .load(Ordering::Relaxed)
            .min(self.ring.installed_cap.load(Ordering::Acquire));
        rear.saturating_sub(self.front.load(Ordering::Relaxed))
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Restores the initial state (exclusive access required).
    pub fn reset(&mut self) {
        self.ring.reset();
        self.front.store(0, Ordering::Relaxed);
        self.rear.store(0, Ordering::Relaxed);
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_segment_boundaries() {
        let q = SegmentedRfAnQueue::new(4);
        q.enqueue_batch(&(0..10).collect::<Vec<_>>());
        for expect in 0..10 {
            let t = q.reserve(1);
            assert_eq!(q.try_take(SlotTicket(t.start)), Some(expect));
        }
        assert_eq!(q.live_segments(), 1, "segments 0 and 1 drained");
    }

    #[test]
    fn overflow_is_a_segment_append_not_a_failure() {
        let q = SegmentedRfAnQueue::new(8);
        // 100 tokens through 8-slot segments: a bounded ring would abort
        // at token 8; here every batch lands.
        for chunk in (0..100u32).collect::<Vec<_>>().chunks(7) {
            q.enqueue_batch(chunk);
        }
        let s = q.stats();
        assert_eq!(s.cas_attempts, 0);
        assert_eq!(s.total_retries(), 0);
        assert_eq!(s.segment_appends, 13, "ceil(100/8) segments installed");
        assert_eq!(q.len_hint(), 100);
    }

    #[test]
    fn len_hint_exceeds_a_single_segment_capacity() {
        // The PR 1 clamp asymmetry: the bounded queue saturates against
        // its one ring's capacity; a segmented hint must saturate against
        // the total across installed segments instead.
        let q = SegmentedRfAnQueue::new(4);
        q.enqueue_batch(&(0..10).collect::<Vec<_>>());
        assert_eq!(q.len_hint(), 10, "must not clamp to seg_cap = 4");
    }

    #[test]
    fn len_hint_saturates_at_the_installed_boundary() {
        // Pin the mid-install window via the step shims: tickets are
        // reserved but the covering segments are not installed yet.
        let q = SegmentedRfAnQueue::new(4);
        assert_eq!(q.step_reserve_rear(6), 0);
        assert_eq!(q.len_hint(), 0, "no storage installed yet");
        assert_eq!(q.step_install_next(1), Some(0));
        assert_eq!(q.len_hint(), 4, "clamped to one installed segment");
        assert_eq!(q.step_install_next(1), Some(1));
        assert_eq!(q.len_hint(), 6, "both covering segments installed");
        assert_eq!(q.step_install_next(1), None, "reinstall is idempotent");
    }

    #[test]
    fn drained_segments_recycle_instead_of_allocating() {
        let q = SegmentedRfAnQueue::new(2);
        for round in 0..50u32 {
            q.enqueue_batch(&[round * 2, round * 2 + 1]);
            let r = q.reserve(2);
            assert_eq!(q.try_take(SlotTicket(r.start)), Some(round * 2));
            assert_eq!(q.try_take(SlotTicket(r.start + 1)), Some(round * 2 + 1));
        }
        // 50 segments installed over the run, but at most 1 live at a
        // time: the pool recycles one storage forever.
        assert_eq!(q.stats().segment_appends, 50);
        assert_eq!(q.fresh_allocs(), 1, "memory bounded by live occupancy");
        assert_eq!(q.live_segments(), 0);
    }

    #[test]
    fn reserve_ahead_of_installation_is_harmless() {
        let q = SegmentedRfAnQueue::new(4);
        let r = q.reserve(3);
        assert_eq!(q.try_take(SlotTicket(r.start)), None, "nothing installed");
        q.enqueue_batch(&[7]);
        assert_eq!(q.try_take(SlotTicket(r.start)), Some(7));
        assert_eq!(q.try_take(SlotTicket(r.start + 1)), None, "unpublished");
        assert!(q.stats().data_waits >= 2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut q = SegmentedRfAnQueue::new(4);
        q.enqueue_batch(&[1, 2, 3, 4, 5]);
        let r = q.reserve(2);
        q.try_take(SlotTicket(r.start));
        q.reset();
        assert_eq!(q.len_hint(), 0);
        assert_eq!(q.stats(), StatsSnapshot::default());
        assert_eq!(q.live_segments(), 0);
        q.enqueue_batch(&[9]);
        assert_eq!(q.try_take(SlotTicket(q.reserve(1).start)), Some(9));
    }

    #[test]
    fn invalid_token_is_the_only_enqueue_failure() {
        let q = SegmentedRfAnQueue::new(4);
        assert!(q.try_enqueue_batch(&(0..100).collect::<Vec<_>>()).is_ok());
        assert_eq!(
            q.try_enqueue_batch(&[1, DNA]),
            Err(EnqueueError::InvalidToken { token: DNA })
        );
    }

    #[test]
    fn concurrent_producers_consumers_conserve_tokens() {
        const THREADS: usize = 4;
        const PER: usize = 4_000;
        // Tiny segments force constant handoff under contention.
        let q = SegmentedRfAnQueue::new(64);
        // Quota-based termination: consumers poll until every token is
        // collectively consumed, so a ticket holding data is always owned
        // by a live consumer (no stranded tokens, no exit races).
        let taken = std::sync::atomic::AtomicUsize::new(0);
        let mut all: Vec<u32> = Vec::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let q = &q;
                scope.spawn(move || {
                    let tokens: Vec<u32> = (0..PER as u32).map(|i| (t * PER) as u32 + i).collect();
                    for chunk in tokens.chunks(23) {
                        // Bounded backlog: fresh allocations track *live*
                        // occupancy, so a producer that respects
                        // backpressure keeps the arena small no matter how
                        // many lifetime segments flow through.
                        while q.len_hint() > 512 {
                            std::thread::yield_now();
                        }
                        q.enqueue_batch(chunk);
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                let q = &q;
                let taken = &taken;
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut pending: Vec<u64> = Vec::new();
                    while taken.load(Ordering::Relaxed) < THREADS * PER {
                        if pending.is_empty() {
                            pending.extend(q.reserve(8));
                        }
                        pending.retain(|&slot| match q.try_take(SlotTicket(slot)) {
                            Some(v) => {
                                got.push(v);
                                taken.fetch_add(1, Ordering::Relaxed);
                                false
                            }
                            None => true,
                        });
                        std::thread::yield_now();
                    }
                    got
                }));
            }
            all = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
        });
        all.sort_unstable();
        assert_eq!(all, (0..(THREADS * PER) as u32).collect::<Vec<_>>());
        let s = q.stats();
        assert_eq!(s.cas_attempts, 0, "segmented RF/AN must never CAS");
        assert_eq!(s.total_retries(), 0);
        assert!(s.segment_appends >= (THREADS * PER / 64) as u64);
        // The memory bound: with backlog capped near 512 tokens (~8 live
        // segments plus reserve-ahead slack), fresh allocations stay a
        // small constant while hundreds of lifetime segments recycle.
        assert!(
            q.fresh_allocs() <= 64,
            "fresh {} vs appends {}",
            q.fresh_allocs(),
            s.segment_appends
        );
    }

    #[test]
    fn segmented_an_batch_roundtrip_never_rejects() {
        let q = SegmentedAnQueue::new(3);
        // The bounded AnQueue would reject once Rear hit capacity; the
        // segmented one installs segments instead.
        for chunk in (0..40u32).collect::<Vec<_>>().chunks(4) {
            q.push_batch(chunk);
        }
        let mut out = Vec::new();
        while q.pop_batch(&mut out, 7) > 0 {}
        out.sort_unstable();
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        let s = q.stats();
        assert!(s.cas_attempts >= 14, "CAS reservation per batch");
        assert!(s.segment_appends >= 14, "ceil(40/3) installs");
    }

    #[test]
    fn segmented_rf_single_token_roundtrip() {
        let q = SegmentedRfQueue::new(2);
        for t in 0..9 {
            q.enqueue(t);
        }
        for expect in 0..9 {
            assert_eq!(q.try_take(q.reserve()), Some(expect));
        }
        assert_eq!(q.stats().cas_attempts, 0);
        assert!(q.len_hint() == 0);
    }
}
