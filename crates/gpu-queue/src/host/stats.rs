//! Operation counters for the host queues.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters shared by all threads using a queue. Counting uses
/// relaxed ordering — the counts are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Fetch-add reservations (the RF/AN currency).
    pub afa_ops: AtomicU64,
    /// Compare-exchange attempts.
    pub cas_attempts: AtomicU64,
    /// Compare-exchange failures (each implies a retry loop iteration).
    pub cas_failures: AtomicU64,
    /// Dequeue attempts that found the queue empty (exception-style).
    pub empty_retries: AtomicU64,
    /// Spin iterations waiting for a reserved slot's data to arrive.
    pub data_waits: AtomicU64,
}

impl QueueStats {
    pub(crate) fn afa(&self) {
        self.afa_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cas_attempt(&self) {
        self.cas_attempts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cas_failure(&self) {
        self.cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn empty_retry(&self) {
        self.empty_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn data_wait(&self) {
        self.data_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            afa_ops: self.afa_ops.load(Ordering::Relaxed),
            cas_attempts: self.cas_attempts.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            empty_retries: self.empty_retries.load(Ordering::Relaxed),
            data_waits: self.data_waits.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.afa_ops.store(0, Ordering::Relaxed);
        self.cas_attempts.store(0, Ordering::Relaxed);
        self.cas_failures.store(0, Ordering::Relaxed);
        self.empty_retries.store(0, Ordering::Relaxed);
        self.data_waits.store(0, Ordering::Relaxed);
    }
}

/// Plain-value copy of [`QueueStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub afa_ops: u64,
    pub cas_attempts: u64,
    pub cas_failures: u64,
    pub empty_retries: u64,
    pub data_waits: u64,
}

impl StatsSnapshot {
    /// Total atomic reservation operations (AFA + CAS attempts).
    pub fn total_atomics(&self) -> u64 {
        self.afa_ops + self.cas_attempts
    }

    /// Total retry overhead of any kind.
    pub fn total_retries(&self) -> u64 {
        self.cas_failures + self.empty_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = QueueStats::default();
        s.afa();
        s.cas_attempt();
        s.cas_failure();
        s.empty_retry();
        s.data_wait();
        let snap = s.snapshot();
        assert_eq!(snap.afa_ops, 1);
        assert_eq!(snap.total_atomics(), 2);
        assert_eq!(snap.total_retries(), 2);
        assert_eq!(snap.data_waits, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = QueueStats::default();
        s.afa();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
