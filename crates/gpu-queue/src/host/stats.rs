//! Operation counters for the host queues.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters shared by all threads using a queue. Counting uses
/// relaxed ordering — the counts are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Fetch-add reservations (the RF/AN currency).
    pub afa_ops: AtomicU64,
    /// Compare-exchange attempts.
    pub cas_attempts: AtomicU64,
    /// Compare-exchange failures (each implies a retry loop iteration).
    pub cas_failures: AtomicU64,
    /// Dequeue attempts that found the queue empty (exception-style).
    pub empty_retries: AtomicU64,
    /// Spin iterations waiting for a reserved slot's data to arrive.
    pub data_waits: AtomicU64,
    /// Segment installations (segmented variants only): each count is one
    /// fresh ring appended to the virtual ticket space — the operation
    /// that replaces the bounded queues' queue-full abort.
    pub segment_appends: AtomicU64,
    /// Variant gate (see [`QueueStats::retry_free`]): when set, the
    /// CAS/empty-retry helpers panic — a retry-free queue has no code path
    /// that may legally count a retry, so any such count is a bug, not a
    /// statistic.
    retry_free: bool,
}

impl QueueStats {
    /// Counters for a retry-free queue (RF/AN, RF-only): the shared
    /// CAS-attempt, CAS-failure, and empty-retry helpers become
    /// unreachable — they panic instead of counting — so a future change
    /// that routes an RF variant through a retrying code path fails
    /// loudly instead of silently polluting the stats.
    pub fn retry_free() -> Self {
        QueueStats {
            retry_free: true,
            ..QueueStats::default()
        }
    }

    pub(crate) fn afa(&self) {
        self.afa_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cas_attempt(&self) {
        assert!(
            !self.retry_free,
            "retry-free queue attempted a CAS reservation"
        );
        self.cas_attempts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cas_failure(&self) {
        assert!(!self.retry_free, "retry-free queue recorded a CAS failure");
        self.cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn empty_retry(&self) {
        assert!(
            !self.retry_free,
            "retry-free queue raised a queue-empty retry"
        );
        self.empty_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn data_wait(&self) {
        self.data_waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn segment_append(&self) {
        self.segment_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            afa_ops: self.afa_ops.load(Ordering::Relaxed),
            cas_attempts: self.cas_attempts.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            empty_retries: self.empty_retries.load(Ordering::Relaxed),
            data_waits: self.data_waits.load(Ordering::Relaxed),
            segment_appends: self.segment_appends.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.afa_ops.store(0, Ordering::Relaxed);
        self.cas_attempts.store(0, Ordering::Relaxed);
        self.cas_failures.store(0, Ordering::Relaxed);
        self.empty_retries.store(0, Ordering::Relaxed);
        self.data_waits.store(0, Ordering::Relaxed);
        self.segment_appends.store(0, Ordering::Relaxed);
    }
}

/// Plain-value copy of [`QueueStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub afa_ops: u64,
    pub cas_attempts: u64,
    pub cas_failures: u64,
    pub empty_retries: u64,
    pub data_waits: u64,
    pub segment_appends: u64,
}

impl StatsSnapshot {
    /// Total atomic reservation operations (AFA + CAS attempts).
    pub fn total_atomics(&self) -> u64 {
        self.afa_ops + self.cas_attempts
    }

    /// Total retry overhead of any kind.
    pub fn total_retries(&self) -> u64 {
        self.cas_failures + self.empty_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = QueueStats::default();
        s.afa();
        s.cas_attempt();
        s.cas_failure();
        s.empty_retry();
        s.data_wait();
        let snap = s.snapshot();
        assert_eq!(snap.afa_ops, 1);
        assert_eq!(snap.total_atomics(), 2);
        assert_eq!(snap.total_retries(), 2);
        assert_eq!(snap.data_waits, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = QueueStats::default();
        s.afa();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn retry_free_mode_still_counts_afa_and_waits() {
        let s = QueueStats::retry_free();
        s.afa();
        s.data_wait();
        let snap = s.snapshot();
        assert_eq!(snap.afa_ops, 1);
        assert_eq!(snap.data_waits, 1);
        assert_eq!(snap.total_retries(), 0);
    }

    #[test]
    #[should_panic(expected = "retry-free queue attempted a CAS")]
    fn retry_free_mode_rejects_cas_attempts() {
        QueueStats::retry_free().cas_attempt();
    }

    #[test]
    #[should_panic(expected = "retry-free queue raised a queue-empty retry")]
    fn retry_free_mode_rejects_empty_retries() {
        QueueStats::retry_free().empty_retry();
    }

    #[test]
    #[should_panic(expected = "retry-free queue recorded a CAS failure")]
    fn retry_free_mode_rejects_cas_failures() {
        QueueStats::retry_free().cas_failure();
    }
}
