//! Blocking strawman: a `std::sync::Mutex<VecDeque>`.
//!
//! Exists purely as a benchmark baseline — Cederman & Tsigas (cited by the
//! paper) showed non-blocking designs beat blocking ones on GPUs; the
//! host benchmarks let us confirm the same ordering on CPU threads.

use super::{QueueFull, QueueStats, StatsSnapshot};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Mutex-guarded FIFO with the same bounded-capacity discipline as the
/// lock-free queues.
#[derive(Debug)]
pub struct MutexQueue {
    inner: Mutex<VecDeque<u32>>,
    capacity: usize,
    enqueued: Mutex<usize>,
    stats: QueueStats,
}

impl MutexQueue {
    /// Creates a queue bounding total enqueues at `capacity`.
    pub fn new(capacity: usize) -> Self {
        MutexQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 16))),
            capacity,
            enqueued: Mutex::new(0),
            stats: QueueStats::default(),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a batch under the lock.
    pub fn push_batch(&self, tokens: &[u32]) -> Result<(), QueueFull> {
        let mut count = self.enqueued.lock().unwrap();
        if *count + tokens.len() > self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        *count += tokens.len();
        let mut q = self.inner.lock().unwrap();
        q.extend(tokens.iter().copied());
        Ok(())
    }

    /// Dequeues up to `max` tokens; `0` means empty.
    pub fn pop_batch(&self, out: &mut Vec<u32>, max: usize) -> usize {
        let mut q = self.inner.lock().unwrap();
        let n = q.len().min(max);
        if n == 0 {
            self.stats.empty_retry();
        }
        out.extend(q.drain(..n));
        n
    }

    /// Tokens currently stored.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True if no tokens are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters (only empty retries are meaningful here).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Restores the initial state, re-arming the non-wrapping lifetime
    /// budget — same contract as the lock-free queues' `reset`.
    pub fn reset(&mut self) {
        self.inner.get_mut().unwrap().clear();
        *self.enqueued.get_mut().unwrap() = 0;
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let q = MutexQueue::new(8);
        q.push_batch(&[1, 2, 3]).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 2), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn capacity_bounds_total_enqueues() {
        let q = MutexQueue::new(2);
        q.push_batch(&[1, 2]).unwrap();
        let mut out = Vec::new();
        q.pop_batch(&mut out, 2);
        // Non-wrapping discipline: even after draining, the budget is spent.
        assert_eq!(q.push_batch(&[3]), Err(QueueFull { capacity: 2 }));
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 4;
        const PER: usize = 2_000;
        let q = MutexQueue::new(THREADS * PER);
        let mut all = Vec::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..PER as u32 {
                        q.push_batch(&[(t * PER) as u32 + i]).unwrap();
                    }
                });
            }
            let q = &q;
            let h = scope.spawn(move || {
                let mut got = Vec::new();
                let mut misses = 0;
                while got.len() < THREADS * PER && misses < 1_000_000 {
                    if q.pop_batch(&mut got, 64) == 0 {
                        misses += 1;
                    }
                }
                got
            });
            all = h.join().unwrap();
        });
        all.sort_unstable();
        assert_eq!(all, (0..(THREADS * PER) as u32).collect::<Vec<_>>());
    }
}
