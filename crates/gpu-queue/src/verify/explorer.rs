//! Deterministic interleaving explorer for the host queues.
//!
//! A scenario is a set of [`Program`]s (threads) sharing a queue. Each
//! program exposes single *steps* — one shared-memory access per step,
//! backed by the queues' `step_*` shims — and the explorer plays
//! scheduler: at every point it picks which runnable program steps next.
//!
//! Two drivers:
//!
//! * [`explore`] — depth-first enumeration of distinct schedules via an
//!   odometer over scheduling choices (loom-style, without the loom
//!   dependency): replay a choice prefix, run first-runnable after it,
//!   record the width of every choice point, then backtrack to the
//!   deepest point with an untried alternative.
//! * [`explore_random`] — uniform random schedules from a seeded
//!   SplitMix64 stream, deduplicated, for cheap extra coverage beyond
//!   the DFS budget (and for the `PTQ_SCHEDULES` deep runs in CI).
//!
//! Every completed schedule yields a [`History`](super::history::History)
//! that the caller checks for linearizability.

use super::history::{History, Recorder};
use std::collections::HashSet;

/// One thread of a scenario: a small state machine over shared state `S`.
pub trait Program<S> {
    /// All work finished?
    fn done(&self) -> bool;
    /// Can this program take a step right now? Blocked programs (e.g. a
    /// consumer spinning on an unpublished slot) return `false` so the
    /// explorer never schedules a no-op step; they become runnable again
    /// once another thread changes the state they wait on.
    fn ready(&self, shared: &S) -> bool {
        let _ = shared;
        true
    }
    /// Executes exactly one shared-memory step, recording any operation
    /// that completed.
    fn step(&mut self, shared: &S, rec: &mut Recorder);
}

/// Statistics from an [`explore`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct complete schedules executed.
    pub schedules: usize,
    /// `true` when the whole schedule space was enumerated (the budget
    /// was not the reason exploration stopped).
    pub exhausted: bool,
    /// Longest schedule seen (steps).
    pub max_depth: usize,
}

/// Runs one schedule to completion. `choose(k, width)` picks the runnable
/// program for step `k` from `width` candidates; the choice index is into
/// the *runnable subset*, in program order. Returns the recorded history,
/// the final shared state, the realized choice vector and the width of
/// every choice point.
///
/// # Panics
/// Panics on deadlock: some program is not done, yet nothing is runnable.
/// The Base/An consumer data-waits cannot deadlock by construction (the
/// producer owning the awaited slot is always runnable), so a deadlock
/// here is a real queue bug — the explorer treats it as fatal.
fn run_one<S, M, C>(mk: M, mut choose: C) -> (History, S, Vec<usize>, Vec<usize>)
where
    M: FnOnce() -> (S, Vec<Box<dyn Program<S>>>),
    C: FnMut(usize, usize) -> usize,
{
    let (shared, mut programs) = mk();
    let mut rec = Recorder::default();
    let mut choices = Vec::new();
    let mut widths = Vec::new();
    loop {
        let runnable: Vec<usize> = (0..programs.len())
            .filter(|&i| !programs[i].done() && programs[i].ready(&shared))
            .collect();
        if runnable.is_empty() {
            assert!(
                programs.iter().all(|p| p.done()),
                "explorer deadlock after choices {choices:?}: no runnable program"
            );
            break;
        }
        let width = runnable.len();
        let pick = choose(choices.len(), width);
        debug_assert!(pick < width);
        choices.push(pick);
        widths.push(width);
        programs[runnable[pick]].step(&shared, &mut rec);
        rec.advance();
    }
    (rec.into_history(), shared, choices, widths)
}

/// Depth-first enumeration of distinct schedules, checking each one.
///
/// `mk` builds a fresh scenario (shared state + programs) per schedule;
/// `check(history, shared)` validates the completed run (typically via
/// [`super::history::check_linearizable`], panicking or asserting on
/// failure). Stops after `budget` schedules or when the space is
/// exhausted, whichever comes first.
pub fn explore<S, M, C>(mut mk: M, budget: usize, mut check: C) -> ExploreStats
where
    M: FnMut() -> (S, Vec<Box<dyn Program<S>>>),
    C: FnMut(&History, &S),
{
    let mut stats = ExploreStats::default();
    // The odometer: forced prefix for the next schedule.
    let mut prefix: Vec<usize> = Vec::new();
    while stats.schedules < budget {
        let p = prefix.clone();
        let (history, shared, choices, widths) =
            run_one(&mut mk, |k, _width| if k < p.len() { p[k] } else { 0 });
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(choices.len());
        check(&history, &shared);
        // Backtrack: bump the deepest choice with an untried alternative.
        let mut next = None;
        for i in (0..choices.len()).rev() {
            if choices[i] + 1 < widths[i] {
                next = Some(i);
                break;
            }
        }
        match next {
            Some(i) => {
                prefix = choices[..i].to_vec();
                prefix.push(choices[i] + 1);
            }
            None => {
                stats.exhausted = true;
                break;
            }
        }
    }
    stats
}

/// SplitMix64 step — the crate-wide seeded PRNG idiom (std-only).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random schedule sampling: `samples` seeded-random schedules, checked
/// like [`explore`]. Returns the number of *distinct* schedules executed
/// (duplicates are run and checked too — cheap — but counted once).
pub fn explore_random<S, M, C>(mut mk: M, samples: usize, seed: u64, mut check: C) -> usize
where
    M: FnMut() -> (S, Vec<Box<dyn Program<S>>>),
    C: FnMut(&History, &S),
{
    let mut rng = seed;
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    for _ in 0..samples {
        let (history, shared, choices, _widths) = run_one(&mut mk, |_k, width| {
            (splitmix64(&mut rng) % width as u64) as usize
        });
        check(&history, &shared);
        seen.insert(choices);
    }
    seen.len()
}

/// Schedule budget for the DFS explorer: `PTQ_SCHEDULES` when set (the
/// CI `verify-deep` job raises it), else `default`.
pub fn schedule_budget(default: usize) -> usize {
    std::env::var("PTQ_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::history::Op;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Toy program: increments a shared counter `steps` times.
    struct Incr {
        left: usize,
    }

    impl Program<AtomicU32> for Incr {
        fn done(&self) -> bool {
            self.left == 0
        }
        fn step(&mut self, shared: &AtomicU32, rec: &mut Recorder) {
            shared.fetch_add(1, Ordering::Relaxed);
            self.left -= 1;
            rec.atomic(0, Op::Push { token: 0, ok: true });
        }
    }

    fn mk(n: usize, steps: usize) -> (AtomicU32, Vec<Box<dyn Program<AtomicU32>>>) {
        let programs: Vec<Box<dyn Program<AtomicU32>>> = (0..n)
            .map(|_| Box::new(Incr { left: steps }) as Box<dyn Program<AtomicU32>>)
            .collect();
        (AtomicU32::new(0), programs)
    }

    #[test]
    fn dfs_enumerates_the_exact_interleaving_count() {
        // 2 threads × 2 steps: C(4,2) = 6 interleavings.
        let mut total = 0;
        let stats = explore(
            || mk(2, 2),
            1_000,
            |h, shared| {
                total += 1;
                assert_eq!(h.ops.len(), 4);
                assert_eq!(shared.load(Ordering::Relaxed), 4);
            },
        );
        assert_eq!(stats.schedules, 6);
        assert_eq!(total, 6);
        assert!(stats.exhausted);
        assert_eq!(stats.max_depth, 4);
    }

    #[test]
    fn dfs_three_threads_multinomial() {
        // 3 threads × 2 steps: 6!/(2!2!2!) = 90 interleavings.
        let stats = explore(|| mk(3, 2), 10_000, |_, _| {});
        assert_eq!(stats.schedules, 90);
        assert!(stats.exhausted);
    }

    #[test]
    fn dfs_budget_stops_early_without_exhausting() {
        let stats = explore(|| mk(3, 3), 10, |_, _| {});
        assert_eq!(stats.schedules, 10);
        assert!(!stats.exhausted);
    }

    #[test]
    fn random_sampling_is_deterministic_per_seed() {
        let a = explore_random(|| mk(2, 3), 50, 42, |_, _| {});
        let b = explore_random(|| mk(2, 3), 50, 42, |_, _| {});
        assert_eq!(a, b);
        assert!(a > 1, "50 samples of C(6,3)=20 schedules find several");
        let c = explore_random(|| mk(2, 3), 50, 7, |_, _| {});
        // Different seed: almost surely a different (but valid) count.
        assert!(c > 1 && c <= 20);
    }

    #[test]
    fn blocked_programs_are_never_scheduled() {
        /// Consumer that is only ready once the counter is nonzero.
        struct Gated {
            fired: bool,
        }
        impl Program<AtomicU32> for Gated {
            fn done(&self) -> bool {
                self.fired
            }
            fn ready(&self, shared: &AtomicU32) -> bool {
                shared.load(Ordering::Relaxed) > 0
            }
            fn step(&mut self, shared: &AtomicU32, _rec: &mut Recorder) {
                assert!(shared.load(Ordering::Relaxed) > 0, "scheduled while gated");
                self.fired = true;
            }
        }
        let stats = explore(
            || {
                let programs: Vec<Box<dyn Program<AtomicU32>>> =
                    vec![Box::new(Incr { left: 1 }), Box::new(Gated { fired: false })];
                (AtomicU32::new(0), programs)
            },
            100,
            |_, _| {},
        );
        // Only one schedule exists: Incr must go first.
        assert_eq!(stats.schedules, 1);
        assert!(stats.exhausted);
    }

    #[test]
    #[should_panic(expected = "explorer deadlock")]
    fn deadlock_panics_with_context() {
        struct Stuck;
        impl Program<AtomicU32> for Stuck {
            fn done(&self) -> bool {
                false
            }
            fn ready(&self, _shared: &AtomicU32) -> bool {
                false
            }
            fn step(&mut self, _shared: &AtomicU32, _rec: &mut Recorder) {}
        }
        explore(
            || {
                let programs: Vec<Box<dyn Program<AtomicU32>>> = vec![Box::new(Stuck)];
                (AtomicU32::new(0), programs)
            },
            1,
            |_, _| {},
        );
    }

    #[test]
    fn schedule_budget_reads_env() {
        // Not set in the test environment unless CI exports it.
        let d = schedule_budget(123);
        if std::env::var("PTQ_SCHEDULES").is_err() {
            assert_eq!(d, 123);
        }
    }
}
