//! Model-checking-style verification of the host queues.
//!
//! Three layers (the third lives in [`simt::audit`]):
//!
//! 1. **Interleaving explorer** ([`explorer`]) — a deterministic
//!    controlled scheduler over the queues' single-step shims. A DFS
//!    odometer enumerates distinct schedules of 2–4 threads exhaustively
//!    up to a budget; a seeded sampler adds random coverage beyond it
//!    (`PTQ_SCHEDULES` scales both in CI's `verify-deep` job).
//! 2. **History recorder + linearizability checker** ([`history`]) — a
//!    Wing–Gong search for a precedence-respecting legal total order,
//!    against batch-aware sequential specs: `reserve(n)` is *one*
//!    linearization point for `n` slots, and a failed RF/AN batch
//!    enqueue advances `Rear` anyway (the paper's abort semantics).
//! 3. **Device-path claim auditor** (`simt::audit`) — per-wavefront
//!    atomic budgets asserted inside the simulator: RF variants issue
//!    zero CAS, AN issues exactly one CAS per wavefront queue op, BASE
//!    alone retries.
//!
//! [`scenarios`] wires concrete producer/consumer programs for
//! [`BaseQueue`](crate::host::BaseQueue),
//! [`AnQueue`](crate::host::AnQueue),
//! [`RfAnQueue`](crate::host::RfAnQueue) and
//! [`SegmentedRfAnQueue`](crate::host::SegmentedRfAnQueue) (segment
//! installation and recycling as explicit linearization points, checked
//! against [`SegSpec`]) into both drivers; the top-level
//! `tests/linearizability.rs` suite runs them.
//!
//! [`conformance`] is a complementary *real-thread* harness: every host
//! queue variant runs through one shared scenario matrix (FIFO order,
//! MPMC token conservation, batch boundary crossing, overflow behaviour,
//! reset-reuse) behind a common adapter trait.

pub mod conformance;
pub mod explorer;
pub mod history;
pub mod scenarios;

pub use conformance::{conformance_suite, run_conformance, ConformanceReport, ConformingQueue};
pub use explorer::{explore, explore_random, schedule_budget, ExploreStats, Program};
pub use history::{
    check_linearizable, BatchFifoSpec, CompletedOp, FifoSpec, History, Op, Recorder, SegSpec,
    SeqSpec, TicketSpec,
};
pub use scenarios::{AnScenario, BaseScenario, RfAnScenario, ScenarioReport, SegmentedScenario};
