//! Concrete explorer scenarios for the three host queues.
//!
//! Each scenario instantiates a fresh queue per schedule and drives the
//! production `step_*` shims through small per-thread state machines —
//! the explorer interleaves the *same* shared-memory accesses the public
//! `push`/`try_pop`/`push_batch`/`reserve` paths execute, one at a time.
//! Every completed schedule's history is checked against the matching
//! sequential spec ([`FifoSpec`], [`BatchFifoSpec`], [`TicketSpec`]); a
//! non-linearizable history panics with the schedule's choice stack.
//!
//! Blocking discipline: Base/AN consumers that claimed a slot gate on
//! [`Program::ready`] until the owning producer publishes (the producer
//! is always runnable, so this cannot deadlock); the RF/AN consumer never
//! blocks — reservations may outrun data by design, so it polls each
//! ticket under a bounded budget and records every `TryTake` outcome,
//! `None`s included.

use super::explorer::{explore, explore_random, Program};
use super::history::{
    check_linearizable, BatchFifoSpec, FifoSpec, History, Op, Recorder, SegSpec, TicketSpec,
};
use crate::host::{AnQueue, BaseQueue, RfAnQueue, SegmentedRfAnQueue, SlotTicket};
use std::collections::{BTreeSet, VecDeque};

/// What a scenario run observed across all explored schedules.
#[derive(Clone, Debug, Default)]
pub struct ScenarioReport {
    /// Schedules executed (distinct ones for random sampling).
    pub schedules: usize,
    /// Whole schedule space enumerated (DFS only).
    pub exhausted: bool,
    /// Longest schedule (steps).
    pub max_depth: usize,
    /// Histories checked for linearizability (all of them passed, or the
    /// run panicked).
    pub histories_checked: usize,
    /// Distinct delivered-token multisets (sorted) across schedules.
    pub delivered: BTreeSet<Vec<u32>>,
    /// Distinct rejected-operation counts (full-queue outcomes) across
    /// schedules.
    pub rejections: BTreeSet<usize>,
}

fn digest(h: &History, report: &mut ScenarioReport) {
    let mut delivered = Vec::new();
    let mut rejected = 0usize;
    for c in &h.ops {
        match &c.op {
            Op::Pop { result: Some(v) } => delivered.push(*v),
            Op::PopBatch { taken, .. } => delivered.extend(taken.iter().copied()),
            Op::TryTake {
                result: Some(v), ..
            } => delivered.push(*v),
            Op::Push { ok: false, .. }
            | Op::PushBatch { ok: false, .. }
            | Op::EnqueueBatch { ok: false, .. } => rejected += 1,
            _ => {}
        }
    }
    delivered.sort_unstable();
    report.delivered.insert(delivered);
    report.rejections.insert(rejected);
    report.histories_checked += 1;
}

// ---------------------------------------------------------------- BASE --

enum BasePush {
    Idle,
    Cas { rear: u64, start: u64 },
    Publish { slot: u64, start: u64 },
}

struct BaseProducer {
    thread: usize,
    tokens: Vec<u32>,
    next: usize,
    state: BasePush,
}

impl Program<BaseQueue> for BaseProducer {
    fn done(&self) -> bool {
        self.next >= self.tokens.len() && matches!(self.state, BasePush::Idle)
    }

    fn step(&mut self, q: &BaseQueue, rec: &mut Recorder) {
        match self.state {
            BasePush::Idle => {
                let start = rec.now();
                let rear = q.step_load_rear();
                self.state = BasePush::Cas { rear, start };
            }
            BasePush::Cas { rear, start } => {
                // Bound check precedes the CAS (production order): a full
                // queue rejects without touching `Rear`.
                if rear as usize >= q.capacity() {
                    rec.record(
                        self.thread,
                        start,
                        Op::Push {
                            token: self.tokens[self.next],
                            ok: false,
                        },
                    );
                    self.next += 1;
                    self.state = BasePush::Idle;
                } else {
                    match q.step_cas_rear(rear) {
                        Ok(()) => self.state = BasePush::Publish { slot: rear, start },
                        Err(actual) => {
                            self.state = BasePush::Cas {
                                rear: actual,
                                start,
                            }
                        }
                    }
                }
            }
            BasePush::Publish { slot, start } => {
                let token = self.tokens[self.next];
                q.step_publish(slot, token);
                rec.record(self.thread, start, Op::Push { token, ok: true });
                self.next += 1;
                self.state = BasePush::Idle;
            }
        }
    }
}

enum BasePop {
    Idle,
    SeenFront { front: u64, start: u64 },
    Cas { front: u64, start: u64 },
    Take { slot: u64, start: u64 },
}

struct BaseConsumer {
    thread: usize,
    pops_left: usize,
    state: BasePop,
}

impl Program<BaseQueue> for BaseConsumer {
    fn done(&self) -> bool {
        self.pops_left == 0 && matches!(self.state, BasePop::Idle)
    }

    fn ready(&self, q: &BaseQueue) -> bool {
        // A claimed-but-unpublished slot blocks (the owning producer's
        // next step is the publish, so progress is guaranteed).
        match self.state {
            BasePop::Take { slot, .. } => q.slot_ready(slot),
            _ => true,
        }
    }

    fn step(&mut self, q: &BaseQueue, rec: &mut Recorder) {
        match self.state {
            BasePop::Idle => {
                let start = rec.now();
                let front = q.step_load_front();
                self.state = BasePop::SeenFront { front, start };
            }
            BasePop::SeenFront { front, start } => {
                let rear = q.step_load_rear();
                if front >= rear {
                    q.step_pop_empty();
                    rec.record(self.thread, start, Op::Pop { result: None });
                    self.pops_left -= 1;
                    self.state = BasePop::Idle;
                } else {
                    self.state = BasePop::Cas { front, start };
                }
            }
            BasePop::Cas { front, start } => match q.step_cas_front(front) {
                Ok(()) => self.state = BasePop::Take { slot: front, start },
                Err(actual) => {
                    self.state = BasePop::SeenFront {
                        front: actual,
                        start,
                    }
                }
            },
            BasePop::Take { slot, start } => {
                let v = q.step_take_slot(slot).expect("gated on slot_ready");
                rec.record(self.thread, start, Op::Pop { result: Some(v) });
                self.pops_left -= 1;
                self.state = BasePop::Idle;
            }
        }
    }
}

/// Producers pushing token lists and consumers popping a fixed number of
/// times against one [`BaseQueue`].
#[derive(Clone, Debug)]
pub struct BaseScenario {
    /// Queue capacity (lifetime tokens).
    pub capacity: usize,
    /// Token list per producer thread.
    pub producers: Vec<Vec<u32>>,
    /// Pop attempts per consumer thread.
    pub consumers: Vec<usize>,
}

impl BaseScenario {
    fn mk(&self) -> (BaseQueue, Vec<Box<dyn Program<BaseQueue>>>) {
        let mut programs: Vec<Box<dyn Program<BaseQueue>>> = Vec::new();
        for (i, tokens) in self.producers.iter().enumerate() {
            programs.push(Box::new(BaseProducer {
                thread: i,
                tokens: tokens.clone(),
                next: 0,
                state: BasePush::Idle,
            }));
        }
        for (j, &pops) in self.consumers.iter().enumerate() {
            programs.push(Box::new(BaseConsumer {
                thread: self.producers.len() + j,
                pops_left: pops,
                state: BasePop::Idle,
            }));
        }
        (BaseQueue::new(self.capacity), programs)
    }

    /// DFS over at most `budget` schedules, checking every history.
    pub fn run(&self, budget: usize) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let cap = self.capacity;
        let stats = explore(
            || self.mk(),
            budget,
            |h, _q| {
                assert!(
                    check_linearizable(h, FifoSpec::new(cap)),
                    "BASE history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = stats.schedules;
        report.exhausted = stats.exhausted;
        report.max_depth = stats.max_depth;
        report
    }

    /// Seeded random sampling; `schedules` counts distinct ones.
    pub fn run_random(&self, samples: usize, seed: u64) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let cap = self.capacity;
        let distinct = explore_random(
            || self.mk(),
            samples,
            seed,
            |h, _q| {
                assert!(
                    check_linearizable(h, FifoSpec::new(cap)),
                    "BASE history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = distinct;
        report
    }
}

// ------------------------------------------------------------------ AN --

enum AnPush {
    Idle,
    Cas { rear: u64, start: u64 },
    Publish { base: u64, i: usize, start: u64 },
}

struct AnProducer {
    thread: usize,
    batches: Vec<Vec<u32>>,
    next: usize,
    state: AnPush,
}

impl Program<AnQueue> for AnProducer {
    fn done(&self) -> bool {
        self.next >= self.batches.len() && matches!(self.state, AnPush::Idle)
    }

    fn step(&mut self, q: &AnQueue, rec: &mut Recorder) {
        match self.state {
            AnPush::Idle => {
                let start = rec.now();
                let rear = q.step_load_rear();
                self.state = AnPush::Cas { rear, start };
            }
            AnPush::Cas { rear, start } => {
                let batch = &self.batches[self.next];
                if rear as usize + batch.len() > q.capacity() {
                    rec.record(
                        self.thread,
                        start,
                        Op::PushBatch {
                            tokens: batch.clone(),
                            ok: false,
                        },
                    );
                    self.next += 1;
                    self.state = AnPush::Idle;
                } else {
                    match q.step_cas_rear(rear, batch.len() as u64) {
                        Ok(()) => {
                            self.state = AnPush::Publish {
                                base: rear,
                                i: 0,
                                start,
                            }
                        }
                        Err(actual) => {
                            self.state = AnPush::Cas {
                                rear: actual,
                                start,
                            }
                        }
                    }
                }
            }
            AnPush::Publish { base, i, start } => {
                let batch = &self.batches[self.next];
                q.step_publish(base + i as u64, batch[i]);
                if i + 1 == batch.len() {
                    rec.record(
                        self.thread,
                        start,
                        Op::PushBatch {
                            tokens: batch.clone(),
                            ok: true,
                        },
                    );
                    self.next += 1;
                    self.state = AnPush::Idle;
                } else {
                    self.state = AnPush::Publish {
                        base,
                        i: i + 1,
                        start,
                    };
                }
            }
        }
    }
}

enum AnPop {
    Idle,
    SeenFront {
        front: u64,
        start: u64,
    },
    Cas {
        front: u64,
        n: u64,
        start: u64,
    },
    Take {
        next: u64,
        end: u64,
        taken: Vec<u32>,
        start: u64,
    },
}

struct AnConsumer {
    thread: usize,
    pops_left: usize,
    max: usize,
    state: AnPop,
}

impl Program<AnQueue> for AnConsumer {
    fn done(&self) -> bool {
        self.pops_left == 0 && matches!(self.state, AnPop::Idle)
    }

    fn ready(&self, q: &AnQueue) -> bool {
        match self.state {
            AnPop::Take { next, .. } => q.slot_ready(next),
            _ => true,
        }
    }

    fn step(&mut self, q: &AnQueue, rec: &mut Recorder) {
        match &mut self.state {
            AnPop::Idle => {
                let start = rec.now();
                let front = q.step_load_front();
                self.state = AnPop::SeenFront { front, start };
            }
            AnPop::SeenFront { front, start } => {
                let (front, start) = (*front, *start);
                let rear = q.step_load_rear();
                let avail = rear.saturating_sub(front);
                if avail == 0 {
                    q.step_pop_empty();
                    rec.record(
                        self.thread,
                        start,
                        Op::PopBatch {
                            max: self.max,
                            taken: Vec::new(),
                        },
                    );
                    self.pops_left -= 1;
                    self.state = AnPop::Idle;
                } else {
                    self.state = AnPop::Cas {
                        front,
                        n: avail.min(self.max as u64),
                        start,
                    };
                }
            }
            AnPop::Cas { front, n, start } => {
                let (front, n, start) = (*front, *n, *start);
                match q.step_cas_front(front, n) {
                    Ok(()) => {
                        self.state = AnPop::Take {
                            next: front,
                            end: front + n,
                            taken: Vec::new(),
                            start,
                        }
                    }
                    Err(actual) => {
                        self.state = AnPop::SeenFront {
                            front: actual,
                            start,
                        }
                    }
                }
            }
            AnPop::Take {
                next,
                end,
                taken,
                start,
            } => {
                let v = q.step_take_slot(*next).expect("gated on slot_ready");
                taken.push(v);
                *next += 1;
                if next == end {
                    rec.record(
                        self.thread,
                        *start,
                        Op::PopBatch {
                            max: self.max,
                            taken: std::mem::take(taken),
                        },
                    );
                    self.pops_left -= 1;
                    self.state = AnPop::Idle;
                }
            }
        }
    }
}

/// Batch producers and batch consumers against one [`AnQueue`].
#[derive(Clone, Debug)]
pub struct AnScenario {
    /// Queue capacity (lifetime tokens).
    pub capacity: usize,
    /// Batches per producer thread.
    pub producers: Vec<Vec<Vec<u32>>>,
    /// `(pop attempts, max per pop)` per consumer thread.
    pub consumers: Vec<(usize, usize)>,
}

impl AnScenario {
    fn mk(&self) -> (AnQueue, Vec<Box<dyn Program<AnQueue>>>) {
        let mut programs: Vec<Box<dyn Program<AnQueue>>> = Vec::new();
        for (i, batches) in self.producers.iter().enumerate() {
            programs.push(Box::new(AnProducer {
                thread: i,
                batches: batches.clone(),
                next: 0,
                state: AnPush::Idle,
            }));
        }
        for (j, &(pops, max)) in self.consumers.iter().enumerate() {
            programs.push(Box::new(AnConsumer {
                thread: self.producers.len() + j,
                pops_left: pops,
                max,
                state: AnPop::Idle,
            }));
        }
        (AnQueue::new(self.capacity), programs)
    }

    /// DFS over at most `budget` schedules, checking every history.
    pub fn run(&self, budget: usize) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let cap = self.capacity;
        let stats = explore(
            || self.mk(),
            budget,
            |h, _q| {
                assert!(
                    check_linearizable(h, BatchFifoSpec::new(cap)),
                    "AN history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = stats.schedules;
        report.exhausted = stats.exhausted;
        report.max_depth = stats.max_depth;
        report
    }

    /// Seeded random sampling; `schedules` counts distinct ones.
    pub fn run_random(&self, samples: usize, seed: u64) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let cap = self.capacity;
        let distinct = explore_random(
            || self.mk(),
            samples,
            seed,
            |h, _q| {
                assert!(
                    check_linearizable(h, BatchFifoSpec::new(cap)),
                    "AN history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = distinct;
        report
    }
}

// --------------------------------------------------------------- RF/AN --

enum RfPush {
    Idle,
    Publish { base: u64, i: usize },
}

struct RfProducer {
    thread: usize,
    batches: Vec<Vec<u32>>,
    next: usize,
    state: RfPush,
}

impl Program<RfAnQueue> for RfProducer {
    fn done(&self) -> bool {
        self.next >= self.batches.len() && matches!(self.state, RfPush::Idle)
    }

    fn step(&mut self, q: &RfAnQueue, rec: &mut Recorder) {
        match self.state {
            RfPush::Idle => {
                let batch = &self.batches[self.next];
                // One AFA reserves the whole region — the batch's single
                // linearization point, recorded as an atomic op. The
                // per-slot publishes that follow are their own points:
                // batch publication is NOT atomic (consumers may observe
                // any prefix through the sentinel).
                let base = q.step_reserve_rear(batch.len() as u64);
                let ok = base as usize + batch.len() <= q.capacity();
                rec.atomic(
                    self.thread,
                    Op::EnqueueBatch {
                        base,
                        tokens: batch.clone(),
                        ok,
                    },
                );
                if ok {
                    self.state = RfPush::Publish { base, i: 0 };
                } else {
                    // Abort semantics: Rear stays advanced, nothing is
                    // published (the spec models exactly this).
                    self.next += 1;
                }
            }
            RfPush::Publish { base, i } => {
                let batch = &self.batches[self.next];
                q.step_publish(base + i as u64, batch[i]);
                rec.atomic(
                    self.thread,
                    Op::Publish {
                        slot: base + i as u64,
                        token: batch[i],
                    },
                );
                if i + 1 == batch.len() {
                    self.next += 1;
                    self.state = RfPush::Idle;
                } else {
                    self.state = RfPush::Publish { base, i: i + 1 };
                }
            }
        }
    }
}

struct RfConsumer {
    thread: usize,
    reserve_n: u64,
    polls_left: usize,
    reserved: bool,
    pending: VecDeque<u64>,
}

impl Program<RfAnQueue> for RfConsumer {
    fn done(&self) -> bool {
        self.reserved && (self.polls_left == 0 || self.pending.is_empty())
    }

    // Never blocks: reserving past `Rear` is legal (the design), so the
    // consumer polls under a bounded budget instead of gating on data.

    fn step(&mut self, q: &RfAnQueue, rec: &mut Recorder) {
        if !self.reserved {
            let base = q.step_reserve_front(self.reserve_n);
            rec.atomic(
                self.thread,
                Op::Reserve {
                    n: self.reserve_n,
                    base,
                },
            );
            self.pending.extend(base..base + self.reserve_n);
            self.reserved = true;
            return;
        }
        let slot = self.pending.pop_front().expect("done() gates empty");
        let result = q.try_take(SlotTicket(slot));
        rec.atomic(self.thread, Op::TryTake { slot, result });
        if result.is_none() {
            self.pending.push_back(slot);
        }
        self.polls_left -= 1;
    }
}

/// Batch producers and ticket-polling consumers against one
/// [`RfAnQueue`].
#[derive(Clone, Debug)]
pub struct RfAnScenario {
    /// Queue capacity (lifetime tokens).
    pub capacity: usize,
    /// Batches per producer thread.
    pub producers: Vec<Vec<Vec<u32>>>,
    /// `(slots reserved, poll budget)` per consumer thread.
    pub consumers: Vec<(u64, usize)>,
}

impl RfAnScenario {
    fn mk(&self) -> (RfAnQueue, Vec<Box<dyn Program<RfAnQueue>>>) {
        let mut programs: Vec<Box<dyn Program<RfAnQueue>>> = Vec::new();
        for (i, batches) in self.producers.iter().enumerate() {
            programs.push(Box::new(RfProducer {
                thread: i,
                batches: batches.clone(),
                next: 0,
                state: RfPush::Idle,
            }));
        }
        for (j, &(reserve_n, polls)) in self.consumers.iter().enumerate() {
            programs.push(Box::new(RfConsumer {
                thread: self.producers.len() + j,
                reserve_n,
                polls_left: polls,
                reserved: false,
                pending: VecDeque::new(),
            }));
        }
        (RfAnQueue::new(self.capacity), programs)
    }

    /// DFS over at most `budget` schedules, checking every history.
    pub fn run(&self, budget: usize) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let cap = self.capacity;
        let stats = explore(
            || self.mk(),
            budget,
            |h, _q| {
                assert!(
                    check_linearizable(h, TicketSpec::new(cap)),
                    "RF/AN history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = stats.schedules;
        report.exhausted = stats.exhausted;
        report.max_depth = stats.max_depth;
        report
    }

    /// Seeded random sampling; `schedules` counts distinct ones.
    pub fn run_random(&self, samples: usize, seed: u64) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let cap = self.capacity;
        let distinct = explore_random(
            || self.mk(),
            samples,
            seed,
            |h, _q| {
                assert!(
                    check_linearizable(h, TicketSpec::new(cap)),
                    "RF/AN history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = distinct;
        report
    }
}

// ----------------------------------------------------------- SEG-RF/AN --

enum SegPush {
    Idle,
    Install { base: u64, last_seg: u64 },
    Publish { base: u64, i: usize },
}

struct SegProducer {
    thread: usize,
    batches: Vec<Vec<u32>>,
    next: usize,
    state: SegPush,
}

impl Program<SegmentedRfAnQueue> for SegProducer {
    fn done(&self) -> bool {
        self.next >= self.batches.len() && matches!(self.state, SegPush::Idle)
    }

    fn step(&mut self, q: &SegmentedRfAnQueue, rec: &mut Recorder) {
        match self.state {
            SegPush::Idle => {
                let batch = &self.batches[self.next];
                let n = batch.len() as u64;
                // One AFA reserves the whole region — the batch's single
                // linearization point. Unlike the bounded RF/AN queue
                // there is no overflow branch: a region past the
                // installed prefix obligates this producer to install
                // the covering segments before publishing.
                let base = q.step_reserve_rear(n);
                rec.atomic(
                    self.thread,
                    Op::EnqueueBatch {
                        base,
                        tokens: batch.clone(),
                        ok: true,
                    },
                );
                if n == 0 {
                    self.next += 1;
                } else {
                    let last_seg = (base + n - 1) / q.seg_cap() as u64;
                    self.state = SegPush::Install { base, last_seg };
                }
            }
            SegPush::Install { base, last_seg } => {
                // Each installation is its own linearization point (the
                // directory store). Another producer may have already
                // covered our region — then the probe is a silent no-op
                // step and we move straight to publishing.
                match q.step_install_next(last_seg) {
                    Some(seg) => rec.atomic(self.thread, Op::InstallSegment { seg }),
                    None => self.state = SegPush::Publish { base, i: 0 },
                }
            }
            SegPush::Publish { base, i } => {
                let batch = &self.batches[self.next];
                q.step_publish(base + i as u64, batch[i]);
                rec.atomic(
                    self.thread,
                    Op::Publish {
                        slot: base + i as u64,
                        token: batch[i],
                    },
                );
                if i + 1 == batch.len() {
                    self.next += 1;
                    self.state = SegPush::Idle;
                } else {
                    self.state = SegPush::Publish { base, i: i + 1 };
                }
            }
        }
    }
}

struct SegConsumer {
    thread: usize,
    reserve_n: u64,
    polls_left: usize,
    reserved: bool,
    pending: VecDeque<u64>,
}

impl Program<SegmentedRfAnQueue> for SegConsumer {
    fn done(&self) -> bool {
        self.reserved && (self.polls_left == 0 || self.pending.is_empty())
    }

    // Never blocks: reservations may outrun `Rear` and even the
    // installed prefix (`take` reports a data wait for both), so the
    // consumer polls under a bounded budget like the RF/AN consumer.

    fn step(&mut self, q: &SegmentedRfAnQueue, rec: &mut Recorder) {
        if !self.reserved {
            let base = q.step_reserve_front(self.reserve_n);
            rec.atomic(
                self.thread,
                Op::Reserve {
                    n: self.reserve_n,
                    base,
                },
            );
            self.pending.extend(base..base + self.reserve_n);
            self.reserved = true;
            return;
        }
        let slot = self.pending.pop_front().expect("done() gates empty");
        let (result, drained) = q.step_try_take(slot);
        rec.atomic(self.thread, Op::TryTake { slot, result });
        if let Some(seg) = drained {
            // The pickup that empties a segment also retires it — both
            // effects happen in the same indivisible step, so the two
            // ops share one instant and the checker orders take-first.
            rec.atomic(self.thread, Op::RecycleSegment { seg });
        }
        if result.is_none() {
            self.pending.push_back(slot);
        }
        self.polls_left -= 1;
    }
}

/// Batch producers and ticket-polling consumers against one
/// [`SegmentedRfAnQueue`]: the bounded RF/AN scenario with segment
/// installation and recycling as explicit, explorable steps.
#[derive(Clone, Debug)]
pub struct SegmentedScenario {
    /// Slots per segment (small values force boundary straddles).
    pub seg_cap: usize,
    /// Batches per producer thread.
    pub producers: Vec<Vec<Vec<u32>>>,
    /// `(slots reserved, poll budget)` per consumer thread.
    pub consumers: Vec<(u64, usize)>,
}

impl SegmentedScenario {
    fn mk(
        &self,
    ) -> (
        SegmentedRfAnQueue,
        Vec<Box<dyn Program<SegmentedRfAnQueue>>>,
    ) {
        let mut programs: Vec<Box<dyn Program<SegmentedRfAnQueue>>> = Vec::new();
        for (i, batches) in self.producers.iter().enumerate() {
            programs.push(Box::new(SegProducer {
                thread: i,
                batches: batches.clone(),
                next: 0,
                state: SegPush::Idle,
            }));
        }
        for (j, &(reserve_n, polls)) in self.consumers.iter().enumerate() {
            programs.push(Box::new(SegConsumer {
                thread: self.producers.len() + j,
                reserve_n,
                polls_left: polls,
                reserved: false,
                pending: VecDeque::new(),
            }));
        }
        (SegmentedRfAnQueue::new(self.seg_cap), programs)
    }

    /// DFS over at most `budget` schedules, checking every history.
    pub fn run(&self, budget: usize) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let seg_cap = self.seg_cap;
        let stats = explore(
            || self.mk(),
            budget,
            |h, _q| {
                assert!(
                    check_linearizable(h, SegSpec::new(seg_cap)),
                    "SEG-RF/AN history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = stats.schedules;
        report.exhausted = stats.exhausted;
        report.max_depth = stats.max_depth;
        report
    }

    /// Seeded random sampling; `schedules` counts distinct ones.
    pub fn run_random(&self, samples: usize, seed: u64) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        let seg_cap = self.seg_cap;
        let distinct = explore_random(
            || self.mk(),
            samples,
            seed,
            |h, _q| {
                assert!(
                    check_linearizable(h, SegSpec::new(seg_cap)),
                    "SEG-RF/AN history not linearizable: {h:?}"
                );
                digest(h, &mut report);
            },
        );
        report.schedules = distinct;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_two_producers_one_consumer_exhaustive() {
        let s = BaseScenario {
            capacity: 4,
            producers: vec![vec![1], vec![2]],
            consumers: vec![2],
        };
        let r = s.run(100_000);
        assert!(r.exhausted, "small scenario should enumerate fully");
        assert!(r.schedules > 10);
        assert_eq!(r.histories_checked, r.schedules);
        // Depending on the interleaving the consumer sees 0, 1, or 2
        // tokens — but never invents or duplicates one.
        for d in &r.delivered {
            assert!(d.len() <= 2);
        }
        assert_eq!(r.rejections, BTreeSet::from([0]));
    }

    #[test]
    fn base_overflow_rejects_deterministically() {
        // Capacity 2, two producers of two tokens each: exactly two pushes
        // are rejected in every schedule.
        let s = BaseScenario {
            capacity: 2,
            producers: vec![vec![1, 2], vec![3, 4]],
            consumers: vec![],
        };
        let r = s.run(100_000);
        assert!(r.exhausted);
        assert_eq!(r.rejections, BTreeSet::from([2]));
    }

    #[test]
    fn an_batches_are_all_or_nothing_under_every_schedule() {
        let s = AnScenario {
            capacity: 3,
            producers: vec![vec![vec![1]], vec![vec![2, 3]]],
            consumers: vec![(1, 4)],
        };
        let r = s.run(100_000);
        assert!(r.exhausted);
        assert_eq!(r.rejections, BTreeSet::from([0]));
    }

    #[test]
    fn rfan_every_schedule_linearizes() {
        let s = RfAnScenario {
            capacity: 4,
            producers: vec![vec![vec![1, 2]], vec![vec![3]]],
            consumers: vec![(2, 4)],
        };
        let r = s.run(100_000);
        assert!(r.exhausted);
        assert_eq!(r.rejections, BTreeSet::from([0]));
        // No schedule delivers a token twice.
        for d in &r.delivered {
            let mut dd = d.clone();
            dd.dedup();
            assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
        }
    }

    #[test]
    fn rfan_overflow_aborts_exactly_one_batch() {
        // Capacity 2, two 2-token batches racing: whichever reserves
        // second overflows — exactly one rejection in every schedule.
        let s = RfAnScenario {
            capacity: 2,
            producers: vec![vec![vec![1, 2]], vec![vec![3, 4]]],
            consumers: vec![],
        };
        let r = s.run(100_000);
        assert!(r.exhausted);
        assert_eq!(r.rejections, BTreeSet::from([1]));
    }

    #[test]
    fn segmented_boundary_batch_every_schedule_linearizes() {
        // seg_cap 2, one 3-token batch: the reservation straddles the
        // segment boundary, so the producer installs two segments and
        // the consumer can drain (and recycle) the first mid-run.
        let s = SegmentedScenario {
            seg_cap: 2,
            producers: vec![vec![vec![1, 2, 3]]],
            consumers: vec![(3, 6)],
        };
        let r = s.run(100_000);
        assert!(r.exhausted, "small scenario should enumerate fully");
        assert_eq!(r.histories_checked, r.schedules);
        // Segmented enqueues never reject.
        assert_eq!(r.rejections, BTreeSet::from([0]));
        for d in &r.delivered {
            let mut dd = d.clone();
            dd.dedup();
            assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
        }
    }

    #[test]
    fn segmented_append_vs_drain_race_linearizes() {
        // Two producers race installations while a consumer drains and
        // recycles segments underneath them (seg_cap 1: every token is
        // its own segment, maximizing install/recycle interleavings).
        let s = SegmentedScenario {
            seg_cap: 1,
            producers: vec![vec![vec![1]], vec![vec![2]]],
            consumers: vec![(2, 4)],
        };
        let r = s.run(100_000);
        assert!(r.exhausted);
        assert_eq!(r.rejections, BTreeSet::from([0]));
        // Some schedule delivers both tokens.
        assert!(r.delivered.contains(&vec![1, 2]));
    }

    #[test]
    fn random_sampling_matches_dfs_verdicts() {
        let s = BaseScenario {
            capacity: 4,
            producers: vec![vec![1], vec![2]],
            consumers: vec![2],
        };
        let r = s.run_random(200, 0xDEADBEEF);
        assert!(r.schedules > 1);
        assert_eq!(r.histories_checked, 200);
    }
}
