//! Operation histories and a Wing–Gong linearizability checker.
//!
//! The explorer ([`super::explorer`]) records every completed queue
//! operation as a [`CompletedOp`] with start/end timestamps from a global
//! logical clock (one tick per explored step). The checker then searches
//! for a *linearization*: a total order of the operations that (a) respects
//! real-time precedence (if `a` finished before `b` started, `a` comes
//! first) and (b) is legal for a sequential queue specification.
//!
//! Specs are **batch-aware**: `reserve(n)` is one linearization point that
//! claims `n` slots atomically, and `enqueue_batch` publishes a whole
//! region from a single `Rear` ticket — matching the paper's arbitrary-n
//! property rather than decomposing batches into per-token operations.

use std::collections::{HashMap, VecDeque};

/// One queue operation with its observed outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Single-token enqueue; `ok = false` means the queue was full.
    Push { token: u32, ok: bool },
    /// Single-token dequeue; `None` is the queue-empty exception.
    Pop { result: Option<u32> },
    /// All-or-nothing batch enqueue (AN queue).
    PushBatch { tokens: Vec<u32>, ok: bool },
    /// Batch dequeue of up to `max` tokens (AN queue); `taken` is what
    /// actually arrived (empty = queue-empty exception).
    PopBatch { max: usize, taken: Vec<u32> },
    /// RF/AN dequeue-side reservation: one AFA claiming `n` slots
    /// starting at `base`.
    Reserve { n: u64, base: u64 },
    /// RF/AN enqueue reservation: one AFA claiming a region at `base` —
    /// the single linearization point of the whole batch. `ok = false` is
    /// the overflow abort (the reservation still advanced `Rear`, nothing
    /// gets published). Data lands per-slot afterwards via [`Op::Publish`]
    /// — batch publication is *not* atomic; that is the sentinel design.
    EnqueueBatch {
        base: u64,
        tokens: Vec<u32>,
        ok: bool,
    },
    /// RF/AN per-slot publication: the release store flipping `slot` from
    /// the sentinel to `token`.
    Publish { slot: u64, token: u32 },
    /// RF/AN slot poll: `Some` consumed the published token, `None` found
    /// the sentinel (data not yet arrived).
    TryTake { slot: u64, result: Option<u32> },
    /// Segmented only: the directory store publishing virtual segment
    /// `seg`'s storage — the segment-handoff linearization point. Installs
    /// are strictly in order (`seg` counts up from 0).
    InstallSegment { seg: u64 },
    /// Segmented only: retirement of a fully drained segment back to the
    /// pool. Legal only once every slot of `seg` has been consumed;
    /// retirements may complete out of order.
    RecycleSegment { seg: u64 },
}

/// An operation together with who ran it and when.
#[derive(Clone, Debug)]
pub struct CompletedOp {
    /// Explorer thread index.
    pub thread: usize,
    /// Logical time of the operation's first step.
    pub start: u64,
    /// Logical time of the operation's last step.
    pub end: u64,
    /// What happened.
    pub op: Op,
}

/// A complete run: every operation observed under one schedule.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Completed operations, in completion order.
    pub ops: Vec<CompletedOp>,
}

/// Records operations against a global logical clock.
///
/// The explorer advances the clock once per scheduled step, so two
/// operations overlap in the history exactly when their steps interleave
/// in the schedule.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: u64,
    history: History,
}

impl Recorder {
    /// Current logical time (= steps scheduled so far).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the clock by one step.
    pub fn advance(&mut self) {
        self.clock += 1;
    }

    /// Records an operation whose single linearizable step happened *now*
    /// (start == end) — e.g. an RF/AN AFA reservation.
    pub fn atomic(&mut self, thread: usize, op: Op) {
        let t = self.clock;
        self.record(thread, t, op);
    }

    /// Records an operation that began at `start` and completed now.
    pub fn record(&mut self, thread: usize, start: u64, op: Op) {
        debug_assert!(start <= self.clock);
        self.history.ops.push(CompletedOp {
            thread,
            start,
            end: self.clock,
            op,
        });
    }

    /// Consumes the recorder, yielding the history.
    pub fn into_history(self) -> History {
        self.history
    }
}

/// A sequential specification: can `op` legally happen next?
///
/// `apply` may leave the state corrupted when it returns `false` — the
/// checker always clones before applying.
pub trait SeqSpec: Clone {
    /// Applies `op`; `true` iff the recorded outcome is legal here.
    fn apply(&mut self, op: &Op) -> bool;
}

/// Sequential spec of a bounded FIFO queue of single tokens
/// ([`crate::host::BaseQueue`]).
#[derive(Clone, Debug)]
pub struct FifoSpec {
    capacity: usize,
    /// Total tokens ever pushed (the queues are non-wrapping: capacity
    /// bounds lifetime pushes, not occupancy).
    pushed: usize,
    queue: VecDeque<u32>,
}

impl FifoSpec {
    /// Empty queue with `capacity` lifetime slots.
    pub fn new(capacity: usize) -> Self {
        FifoSpec {
            capacity,
            pushed: 0,
            queue: VecDeque::new(),
        }
    }
}

impl SeqSpec for FifoSpec {
    fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::Push { token, ok } => {
                let fits = self.pushed < self.capacity;
                if fits {
                    self.pushed += 1;
                    self.queue.push_back(*token);
                }
                fits == *ok
            }
            Op::Pop { result } => match result {
                None => self.queue.is_empty(),
                Some(v) => {
                    self.queue.front() == Some(v) && {
                        self.queue.pop_front();
                        true
                    }
                }
            },
            _ => false,
        }
    }
}

/// Sequential spec of the batched CAS queue ([`crate::host::AnQueue`]):
/// all-or-nothing batch pushes, batch pops that take exactly
/// `min(available, max)` tokens in FIFO order.
#[derive(Clone, Debug)]
pub struct BatchFifoSpec {
    capacity: usize,
    pushed: usize,
    queue: VecDeque<u32>,
}

impl BatchFifoSpec {
    /// Empty queue with `capacity` lifetime slots.
    pub fn new(capacity: usize) -> Self {
        BatchFifoSpec {
            capacity,
            pushed: 0,
            queue: VecDeque::new(),
        }
    }
}

impl SeqSpec for BatchFifoSpec {
    fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::PushBatch { tokens, ok } => {
                let fits = self.pushed + tokens.len() <= self.capacity;
                if fits {
                    self.pushed += tokens.len();
                    self.queue.extend(tokens.iter().copied());
                }
                fits == *ok
            }
            Op::PopBatch { max, taken } => {
                let n = self.queue.len().min(*max);
                if taken.len() != n {
                    return false;
                }
                for want in taken {
                    if self.queue.pop_front() != Some(*want) {
                        return false;
                    }
                }
                true
            }
            _ => false,
        }
    }
}

/// Sequential spec of the RF/AN ticket protocol
/// ([`crate::host::RfAnQueue`]).
///
/// `Front`/`Rear` are explicit because the protocol's linearization
/// points are the AFA reservations themselves: a `Reserve { n, base }` is
/// legal exactly when `base` equals the current `Front` (then `Front`
/// advances by `n` — one point for `n` slots). An `EnqueueBatch` advances
/// `Rear` even when it overflows (abort semantics) and, on success, makes
/// its region *writable*; each token then arrives via its own
/// [`Op::Publish`] point (batch publication is not atomic — consumers may
/// observe any prefix through the sentinel). `TryTake` consumes a
/// published slot or legally observes the sentinel.
#[derive(Clone, Debug)]
pub struct TicketSpec {
    capacity: u64,
    front: u64,
    rear: u64,
    /// Reserved-but-unpublished slots and the token each must receive.
    writable: HashMap<u64, u32>,
    published: HashMap<u64, u32>,
}

impl TicketSpec {
    /// Empty queue with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        TicketSpec {
            capacity: capacity as u64,
            front: 0,
            rear: 0,
            writable: HashMap::new(),
            published: HashMap::new(),
        }
    }
}

impl SeqSpec for TicketSpec {
    fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::Reserve { n, base } => {
                if *base != self.front {
                    return false;
                }
                self.front += n;
                true
            }
            Op::EnqueueBatch { base, tokens, ok } => {
                if *base != self.rear {
                    return false;
                }
                // Abort semantics: Rear advances even on overflow.
                self.rear += tokens.len() as u64;
                let fits = base + tokens.len() as u64 <= self.capacity;
                if fits {
                    for (i, &tok) in tokens.iter().enumerate() {
                        self.writable.insert(base + i as u64, tok);
                    }
                }
                fits == *ok
            }
            Op::Publish { slot, token } => {
                self.writable.remove(slot) == Some(*token) && {
                    self.published.insert(*slot, *token);
                    true
                }
            }
            Op::TryTake { slot, result } => match result {
                Some(v) => self.published.remove(slot) == Some(*v),
                None => !self.published.contains_key(slot),
            },
            _ => false,
        }
    }
}

/// Sequential spec of the *segmented* RF/AN ticket protocol
/// ([`crate::host::SegmentedRfAnQueue`]): [`TicketSpec`] with the
/// lifetime-capacity bound replaced by explicit segment lifecycle points.
///
/// The ticket space is unbounded — an `EnqueueBatch` always succeeds —
/// but a slot only becomes publishable once its segment's storage exists:
/// [`Op::InstallSegment`] is the directory store that publishes virtual
/// segment `k`'s storage (strictly in order, the contiguous-prefix
/// invariant behind the lock-free `len_hint` clamp), and
/// [`Op::RecycleSegment`] retires a segment to the pool, legal only when
/// every one of its `seg_cap` slots has been consumed — which is exactly
/// the ABA exclusion argument: no live ticket can observe recycled
/// storage, because an unconsumed ticket in the segment would have blocked
/// the retirement. Retirements may complete out of order (a slow consumer
/// in segment 0 must not stall segment 1's retirement). Publishing into a
/// recycled segment is a use-after-free and is rejected.
#[derive(Clone, Debug)]
pub struct SegSpec {
    seg_cap: u64,
    front: u64,
    rear: u64,
    writable: HashMap<u64, u32>,
    published: HashMap<u64, u32>,
    /// Segments installed so far (in-order: segment ids `0..installed`).
    installed: u64,
    /// Consumed-slot count per segment with at least one consumption.
    consumed: HashMap<u64, u64>,
    /// Segments retired back to the pool.
    recycled: std::collections::HashSet<u64>,
}

impl SegSpec {
    /// Empty segmented queue with `seg_cap` slots per segment.
    pub fn new(seg_cap: usize) -> Self {
        SegSpec {
            seg_cap: seg_cap as u64,
            front: 0,
            rear: 0,
            writable: HashMap::new(),
            published: HashMap::new(),
            installed: 0,
            consumed: HashMap::new(),
            recycled: std::collections::HashSet::new(),
        }
    }

    fn seg_of(&self, slot: u64) -> u64 {
        slot / self.seg_cap
    }
}

impl SeqSpec for SegSpec {
    fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::Reserve { n, base } => {
                if *base != self.front {
                    return false;
                }
                self.front += n;
                true
            }
            Op::EnqueueBatch { base, tokens, ok } => {
                if *base != self.rear {
                    return false;
                }
                self.rear += tokens.len() as u64;
                for (i, &tok) in tokens.iter().enumerate() {
                    self.writable.insert(base + i as u64, tok);
                }
                // No overflow exists: a rejected batch is unlinearizable.
                *ok
            }
            Op::InstallSegment { seg } => {
                if *seg != self.installed {
                    return false;
                }
                self.installed += 1;
                true
            }
            Op::Publish { slot, token } => {
                let seg = self.seg_of(*slot);
                if seg >= self.installed || self.recycled.contains(&seg) {
                    return false;
                }
                self.writable.remove(slot) == Some(*token) && {
                    self.published.insert(*slot, *token);
                    true
                }
            }
            Op::TryTake { slot, result } => match result {
                Some(v) => {
                    self.published.remove(slot) == Some(*v) && {
                        *self.consumed.entry(self.seg_of(*slot)).or_insert(0) += 1;
                        true
                    }
                }
                None => !self.published.contains_key(slot),
            },
            Op::RecycleSegment { seg } => {
                if *seg >= self.installed || self.recycled.contains(seg) {
                    return false;
                }
                if self.consumed.get(seg).copied().unwrap_or(0) != self.seg_cap {
                    return false;
                }
                self.recycled.insert(*seg);
                true
            }
            _ => false,
        }
    }
}

/// Upper bound on checkable history size (the search is exponential in
/// the worst case; explored scenarios stay far below this).
pub const MAX_CHECKED_OPS: usize = 64;

/// Wing–Gong linearizability check: is there a total order of `history`
/// that respects real-time precedence and is legal for `spec`?
///
/// Recursive search over candidates whose predecessors are all placed,
/// cloning the spec state before each tentative apply. No memoization —
/// with a stateful spec the reachable state depends on the order chosen,
/// so caching on the "done" set alone would be unsound.
///
/// # Panics
/// Panics if the history exceeds [`MAX_CHECKED_OPS`] operations.
pub fn check_linearizable<S: SeqSpec>(history: &History, spec: S) -> bool {
    let n = history.ops.len();
    assert!(
        n <= MAX_CHECKED_OPS,
        "history too large for the checker: {n} ops"
    );
    // pred[i] = bitmask of ops that must precede op i (real-time order).
    let mut pred = vec![0u64; n];
    for (i, mask) in pred.iter_mut().enumerate() {
        for j in 0..n {
            if i != j && history.ops[j].end < history.ops[i].start {
                *mask |= 1 << j;
            }
        }
    }
    fn search<S: SeqSpec>(history: &History, pred: &[u64], done: u64, spec: &S) -> bool {
        let n = history.ops.len();
        if done.count_ones() as usize == n {
            return true;
        }
        for i in 0..n {
            if done & (1 << i) != 0 {
                continue;
            }
            // Every real-time predecessor must already be linearized.
            if pred[i] & !done != 0 {
                continue;
            }
            let mut next = spec.clone();
            if next.apply(&history.ops[i].op) && search(history, pred, done | (1 << i), &next) {
                return true;
            }
        }
        false
    }
    search(history, &pred, 0, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ops: Vec<Op>) -> History {
        // Fully sequential history: op k occupies [k, k].
        History {
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(k, op)| CompletedOp {
                    thread: 0,
                    start: k as u64,
                    end: k as u64,
                    op,
                })
                .collect(),
        }
    }

    #[test]
    fn sequential_fifo_history_passes() {
        let h = seq(vec![
            Op::Push { token: 1, ok: true },
            Op::Push { token: 2, ok: true },
            Op::Pop { result: Some(1) },
            Op::Pop { result: Some(2) },
            Op::Pop { result: None },
        ]);
        assert!(check_linearizable(&h, FifoSpec::new(4)));
    }

    #[test]
    fn value_invention_is_rejected() {
        let h = seq(vec![
            Op::Push { token: 1, ok: true },
            Op::Pop { result: Some(9) },
        ]);
        assert!(!check_linearizable(&h, FifoSpec::new(4)));
    }

    #[test]
    fn double_delivery_is_rejected() {
        let h = seq(vec![
            Op::Push { token: 1, ok: true },
            Op::Pop { result: Some(1) },
            Op::Pop { result: Some(1) },
        ]);
        assert!(!check_linearizable(&h, FifoSpec::new(4)));
    }

    #[test]
    fn fifo_order_violation_is_rejected() {
        let h = seq(vec![
            Op::Push { token: 1, ok: true },
            Op::Push { token: 2, ok: true },
            Op::Pop { result: Some(2) },
        ]);
        assert!(!check_linearizable(&h, FifoSpec::new(4)));
    }

    #[test]
    fn overlap_permits_reordering_but_precedence_binds() {
        // Twist: pop(2) completes before pop(1) in completion order, but
        // the pops overlap both pushes — a legal linearization exists.
        let h = History {
            ops: vec![
                CompletedOp {
                    thread: 0,
                    start: 0,
                    end: 3,
                    op: Op::Push { token: 1, ok: true },
                },
                CompletedOp {
                    thread: 0,
                    start: 0,
                    end: 4,
                    op: Op::Push { token: 2, ok: true },
                },
                CompletedOp {
                    thread: 1,
                    start: 1,
                    end: 5,
                    op: Op::Pop { result: Some(2) },
                },
                CompletedOp {
                    thread: 2,
                    start: 1,
                    end: 6,
                    op: Op::Pop { result: Some(1) },
                },
            ],
        };
        assert!(check_linearizable(&h, FifoSpec::new(4)));
        // Same outcomes forced sequential: pop(2) before pop(1) with both
        // pushes already linearized is a FIFO violation.
        let h2 = seq(vec![
            Op::Push { token: 1, ok: true },
            Op::Push { token: 2, ok: true },
            Op::Pop { result: Some(2) },
            Op::Pop { result: Some(1) },
        ]);
        assert!(!check_linearizable(&h2, FifoSpec::new(4)));
    }

    #[test]
    fn batch_spec_is_all_or_nothing() {
        let h = seq(vec![
            Op::PushBatch {
                tokens: vec![1, 2],
                ok: true,
            },
            Op::PushBatch {
                tokens: vec![3, 4],
                ok: false, // capacity 3: whole batch rejected
            },
            Op::PopBatch {
                max: 10,
                taken: vec![1, 2],
            },
        ]);
        assert!(check_linearizable(&h, BatchFifoSpec::new(3)));
        // A partial batch take is illegal: must take min(avail, max).
        let h2 = seq(vec![
            Op::PushBatch {
                tokens: vec![1, 2],
                ok: true,
            },
            Op::PopBatch {
                max: 10,
                taken: vec![1],
            },
        ]);
        assert!(!check_linearizable(&h2, BatchFifoSpec::new(3)));
    }

    #[test]
    fn ticket_spec_reservation_is_one_point_for_n_slots() {
        let h = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: vec![5, 6, 7],
                ok: true,
            },
            Op::Publish { slot: 0, token: 5 },
            Op::Publish { slot: 1, token: 6 },
            Op::Reserve { n: 3, base: 0 },
            Op::TryTake {
                slot: 1,
                result: Some(6),
            },
            Op::TryTake {
                slot: 0,
                result: Some(5),
            },
            // Slot 2 not yet published: the sentinel is a legal read.
            Op::TryTake {
                slot: 2,
                result: None,
            },
            Op::Publish { slot: 2, token: 7 },
            Op::TryTake {
                slot: 2,
                result: Some(7),
            },
        ]);
        assert!(check_linearizable(&h, TicketSpec::new(4)));
    }

    #[test]
    fn ticket_spec_rejects_publish_to_unreserved_slot() {
        let h = seq(vec![Op::Publish { slot: 0, token: 5 }]);
        assert!(!check_linearizable(&h, TicketSpec::new(4)));
        // Double publish of a reserved slot is equally illegal.
        let h2 = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: vec![5],
                ok: true,
            },
            Op::Publish { slot: 0, token: 5 },
            Op::Publish { slot: 0, token: 5 },
        ]);
        assert!(!check_linearizable(&h2, TicketSpec::new(4)));
    }

    #[test]
    fn ticket_spec_rejects_wrong_reservation_base() {
        // Two overlapping reserves cannot both start at base 0.
        let h = seq(vec![
            Op::Reserve { n: 2, base: 0 },
            Op::Reserve { n: 2, base: 0 },
        ]);
        assert!(!check_linearizable(&h, TicketSpec::new(8)));
    }

    #[test]
    fn ticket_spec_abort_advances_rear() {
        // Capacity 2: first batch fills it, second overflows (ok: false)
        // but still advances Rear — a third batch claiming base 2 would
        // also be illegal at base 2? No: Rear is now 4, so base must be 4.
        let h = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: vec![1, 2],
                ok: true,
            },
            Op::EnqueueBatch {
                base: 2,
                tokens: vec![3, 4],
                ok: false,
            },
            Op::EnqueueBatch {
                base: 4,
                tokens: vec![5],
                ok: false,
            },
        ]);
        assert!(check_linearizable(&h, TicketSpec::new(2)));
    }

    #[test]
    fn ticket_spec_taking_unpublished_slot_is_rejected() {
        let h = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: vec![1, 2],
                ok: false, // claims overflow, but capacity holds both
            },
            Op::TryTake {
                slot: 0,
                result: Some(1),
            },
        ]);
        assert!(!check_linearizable(&h, TicketSpec::new(8)));
    }

    #[test]
    fn seg_spec_gates_publish_on_installation() {
        // Reservation straddles a segment boundary (seg_cap 2): slots 0–1
        // are publishable after install 0, slot 2 only after install 1.
        let enq = Op::EnqueueBatch {
            base: 0,
            tokens: vec![5, 6, 7],
            ok: true,
        };
        let h = seq(vec![
            enq.clone(),
            Op::InstallSegment { seg: 0 },
            Op::Publish { slot: 0, token: 5 },
            Op::Publish { slot: 1, token: 6 },
            Op::InstallSegment { seg: 1 },
            Op::Publish { slot: 2, token: 7 },
        ]);
        assert!(check_linearizable(&h, SegSpec::new(2)));
        // Without the second install, publishing slot 2 is illegal.
        let h2 = seq(vec![
            enq,
            Op::InstallSegment { seg: 0 },
            Op::Publish { slot: 2, token: 7 },
        ]);
        assert!(!check_linearizable(&h2, SegSpec::new(2)));
    }

    #[test]
    fn seg_spec_installs_are_in_order() {
        let h = seq(vec![Op::InstallSegment { seg: 1 }]);
        assert!(!check_linearizable(&h, SegSpec::new(2)));
        let h2 = seq(vec![
            Op::InstallSegment { seg: 0 },
            Op::InstallSegment { seg: 0 },
        ]);
        assert!(!check_linearizable(&h2, SegSpec::new(2)));
    }

    #[test]
    fn seg_spec_never_overflows() {
        // 100 tokens through seg_cap 2 with only the first installed:
        // the reservation itself is always legal.
        let h = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: (0..100).collect(),
                ok: true,
            },
            Op::InstallSegment { seg: 0 },
        ]);
        assert!(check_linearizable(&h, SegSpec::new(2)));
        // A segmented enqueue claiming overflow is unlinearizable.
        let h2 = seq(vec![Op::EnqueueBatch {
            base: 0,
            tokens: vec![1],
            ok: false,
        }]);
        assert!(!check_linearizable(&h2, SegSpec::new(2)));
    }

    #[test]
    fn seg_spec_recycle_requires_full_drain() {
        let mk = |recycle_early: bool| {
            let mut ops = vec![
                Op::EnqueueBatch {
                    base: 0,
                    tokens: vec![5, 6],
                    ok: true,
                },
                Op::InstallSegment { seg: 0 },
                Op::Publish { slot: 0, token: 5 },
                Op::Publish { slot: 1, token: 6 },
                Op::Reserve { n: 2, base: 0 },
                Op::TryTake {
                    slot: 0,
                    result: Some(5),
                },
            ];
            if recycle_early {
                ops.push(Op::RecycleSegment { seg: 0 });
            }
            ops.push(Op::TryTake {
                slot: 1,
                result: Some(6),
            });
            if !recycle_early {
                ops.push(Op::RecycleSegment { seg: 0 });
            }
            seq(ops)
        };
        assert!(check_linearizable(&mk(false), SegSpec::new(2)));
        // One slot still unconsumed: retirement is illegal — the ABA
        // exclusion argument as a checkable property.
        assert!(!check_linearizable(&mk(true), SegSpec::new(2)));
    }

    #[test]
    fn seg_spec_publish_after_recycle_is_use_after_free() {
        let h = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: vec![5],
                ok: true,
            },
            Op::InstallSegment { seg: 0 },
            Op::Publish { slot: 0, token: 5 },
            Op::Reserve { n: 1, base: 0 },
            Op::TryTake {
                slot: 0,
                result: Some(5),
            },
            Op::RecycleSegment { seg: 0 },
            // Late publish into the retired segment's ticket range.
            Op::EnqueueBatch {
                base: 1,
                tokens: vec![9],
                ok: true,
            },
            Op::Publish { slot: 1, token: 9 },
        ]);
        assert!(!check_linearizable(&h, SegSpec::new(1)));
    }

    #[test]
    fn seg_spec_recycles_out_of_order() {
        // Segment 1 fully drains while segment 0's consumer is stalled;
        // its retirement must not be blocked on segment 0's.
        let h = seq(vec![
            Op::EnqueueBatch {
                base: 0,
                tokens: vec![5, 6],
                ok: true,
            },
            Op::InstallSegment { seg: 0 },
            Op::InstallSegment { seg: 1 },
            Op::Publish { slot: 0, token: 5 },
            Op::Publish { slot: 1, token: 6 },
            Op::Reserve { n: 2, base: 0 },
            Op::TryTake {
                slot: 1,
                result: Some(6),
            },
            Op::RecycleSegment { seg: 1 },
            Op::TryTake {
                slot: 0,
                result: Some(5),
            },
            Op::RecycleSegment { seg: 0 },
        ]);
        assert!(check_linearizable(&h, SegSpec::new(1)));
    }

    #[test]
    fn recorder_tracks_overlap() {
        let mut rec = Recorder::default();
        let start = rec.now();
        rec.advance();
        rec.advance();
        rec.record(0, start, Op::Pop { result: None });
        rec.atomic(1, Op::Reserve { n: 1, base: 0 });
        let h = rec.into_history();
        assert_eq!(h.ops[0].start, 0);
        assert_eq!(h.ops[0].end, 2);
        assert_eq!(h.ops[1].start, h.ops[1].end);
    }
}
