//! Queue-conformance harness: one shared scenario matrix, every host
//! queue variant.
//!
//! The explorer ([`super::scenarios`]) proves linearizability over small
//! exhaustively-interleaved schedules; this harness is the complementary
//! *real-thread* check: each variant is wrapped in a [`ConformingQueue`]
//! adapter and driven through the same five scenarios —
//!
//! 1. **Single-thread FIFO** — tokens come back in insertion order.
//! 2. **Batch boundary crossing** — multi-token batches land intact (for
//!    segmented variants the batches straddle segment boundaries, so the
//!    run must observe segment appends; bounded variants must observe
//!    none).
//! 3. **MPMC conservation** — racing producers and consumers neither
//!    lose nor duplicate a token; retry-free variants additionally
//!    finish with zero CAS attempts and zero retries.
//! 4. **Overflow behaviour** — bounded variants reject exactly the
//!    overflow (the paper's queue-full abort), segmented variants accept
//!    everything by appending segments.
//! 5. **Reset-reuse** — a drained, reset queue serves a second full
//!    round (for bounded variants this re-arms the *lifetime* capacity).
//!
//! A violation panics with the variant label and scenario name; a clean
//! run returns a [`ConformanceReport`] per variant. The suite runs in CI
//! (`segmented-queues` job) and in `tests/linearizability.rs`.

use crate::host::{
    AnQueue, BaseQueue, MutexQueue, RfAnQueue, SegmentedAnQueue, SegmentedRfAnQueue,
    SegmentedRfQueue, SlotTicket, StatsSnapshot,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Uniform adapter surface the conformance matrix drives. Adapters wrap
/// the production queues without altering their protocols: retry-free
/// dequeues go through real ticket reservation and bounded polling, CAS
/// dequeues through the retrying pop paths.
pub trait ConformingQueue: Send + Sync {
    /// Variant label for failure messages (matches `Variant::label`
    /// where a device twin exists).
    fn label(&self) -> &'static str;

    /// Lifetime token capacity between resets (every bounded variant,
    /// `MUTEX` included, follows the paper's non-wrapping discipline),
    /// or `None` for segmented (unbounded) variants.
    fn capacity_bound(&self) -> Option<usize>;

    /// Whether the variant claims the retry-free property (zero CAS,
    /// zero retry loops) — asserted after the MPMC scenario.
    fn is_retry_free(&self) -> bool;

    /// Offers a batch; returns how many tokens the queue accepted.
    fn enqueue(&self, tokens: &[u32]) -> usize;

    /// Non-blocking dequeue attempt.
    fn dequeue(&self) -> Option<u32>;

    /// Operation counters of the wrapped queue.
    fn stats(&self) -> StatsSnapshot;

    /// Restores the initial empty state (exclusive access).
    fn reset(&mut self);
}

/// Constructs a fresh adapter sized for roughly `capacity` lifetime
/// tokens (segmented variants derive a small per-segment capacity from
/// it so the matrix forces boundary crossings).
pub type QueueFactory = fn(usize) -> Box<dyn ConformingQueue>;

/// What one variant's clean pass through the matrix observed.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Variant label.
    pub label: &'static str,
    /// Scenario names executed (all passed, or the run panicked).
    pub cases: Vec<&'static str>,
    /// Segment appends observed across the matrix (zero for bounded
    /// variants, non-zero for segmented ones — both asserted).
    pub segment_appends: u64,
}

// ------------------------------------------------------------ adapters --

/// Shared ticket-polling dequeue state for the retry-free adapters: a
/// reserved-but-unserved ticket stays pending (shared, so any thread can
/// poll it — no token is stranded with an idle caller) and a new ticket
/// is reserved only when none is pending.
#[derive(Default)]
struct TicketPoller {
    pending: Mutex<VecDeque<u64>>,
}

impl TicketPoller {
    fn dequeue(
        &self,
        reserve: impl FnOnce() -> u64,
        take: impl Fn(u64) -> Option<u32>,
    ) -> Option<u32> {
        let mut pending = self.pending.lock().unwrap();
        if pending.is_empty() {
            pending.push_back(reserve());
        }
        let &slot = pending.front().expect("just ensured non-empty");
        match take(slot) {
            Some(v) => {
                pending.pop_front();
                Some(v)
            }
            None => None,
        }
    }

    fn clear(&mut self) {
        self.pending.get_mut().unwrap().clear();
    }
}

struct BaseAdapter {
    q: BaseQueue,
}

impl ConformingQueue for BaseAdapter {
    fn label(&self) -> &'static str {
        "BASE"
    }
    fn capacity_bound(&self) -> Option<usize> {
        Some(self.q.capacity())
    }
    fn is_retry_free(&self) -> bool {
        false
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        tokens.iter().filter(|&&t| self.q.push(t).is_ok()).count()
    }
    fn dequeue(&self) -> Option<u32> {
        self.q.try_pop()
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.q.reset();
    }
}

struct AnAdapter {
    q: AnQueue,
}

impl ConformingQueue for AnAdapter {
    fn label(&self) -> &'static str {
        "AN"
    }
    fn capacity_bound(&self) -> Option<usize> {
        Some(self.q.capacity())
    }
    fn is_retry_free(&self) -> bool {
        false
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        // All-or-nothing batch reservation (the AN contract).
        match self.q.push_batch(tokens) {
            Ok(()) => tokens.len(),
            Err(_) => 0,
        }
    }
    fn dequeue(&self) -> Option<u32> {
        let mut out = Vec::with_capacity(1);
        self.q.pop_batch(&mut out, 1);
        out.pop()
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.q.reset();
    }
}

struct MutexAdapter {
    q: MutexQueue,
}

impl ConformingQueue for MutexAdapter {
    fn label(&self) -> &'static str {
        "MUTEX"
    }
    fn capacity_bound(&self) -> Option<usize> {
        Some(self.q.capacity())
    }
    fn is_retry_free(&self) -> bool {
        false
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        match self.q.push_batch(tokens) {
            Ok(()) => tokens.len(),
            Err(_) => 0,
        }
    }
    fn dequeue(&self) -> Option<u32> {
        let mut out = Vec::with_capacity(1);
        self.q.pop_batch(&mut out, 1);
        out.pop()
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.q.reset();
    }
}

struct RfAnAdapter {
    q: RfAnQueue,
    poller: TicketPoller,
}

impl ConformingQueue for RfAnAdapter {
    fn label(&self) -> &'static str {
        "RF/AN"
    }
    fn capacity_bound(&self) -> Option<usize> {
        Some(self.q.capacity())
    }
    fn is_retry_free(&self) -> bool {
        true
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        // The pre-checked surface: a visibly over-large batch is refused
        // without burning the `Rear` reservation, so the matrix can keep
        // using the queue after a rejection.
        match self.q.try_enqueue_batch(tokens) {
            Ok(()) => tokens.len(),
            Err(_) => 0,
        }
    }
    fn dequeue(&self) -> Option<u32> {
        self.poller.dequeue(
            || self.q.reserve(1).start,
            |slot| self.q.try_take(SlotTicket(slot)),
        )
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.poller.clear();
        self.q.reset();
    }
}

struct SegRfAnAdapter {
    q: SegmentedRfAnQueue,
    poller: TicketPoller,
}

impl ConformingQueue for SegRfAnAdapter {
    fn label(&self) -> &'static str {
        "SEG-RF/AN"
    }
    fn capacity_bound(&self) -> Option<usize> {
        None
    }
    fn is_retry_free(&self) -> bool {
        true
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        self.q.enqueue_batch(tokens);
        tokens.len()
    }
    fn dequeue(&self) -> Option<u32> {
        self.poller.dequeue(
            || self.q.reserve(1).start,
            |slot| self.q.try_take(SlotTicket(slot)),
        )
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.poller.clear();
        self.q.reset();
    }
}

struct SegRfAdapter {
    q: SegmentedRfQueue,
    poller: TicketPoller,
}

impl ConformingQueue for SegRfAdapter {
    fn label(&self) -> &'static str {
        "SEG-RF"
    }
    fn capacity_bound(&self) -> Option<usize> {
        None
    }
    fn is_retry_free(&self) -> bool {
        true
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        for &t in tokens {
            self.q.enqueue(t);
        }
        tokens.len()
    }
    fn dequeue(&self) -> Option<u32> {
        self.poller.dequeue(
            || self.q.reserve().0,
            |slot| self.q.try_take(SlotTicket(slot)),
        )
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.poller.clear();
        self.q.reset();
    }
}

struct SegAnAdapter {
    q: SegmentedAnQueue,
}

impl ConformingQueue for SegAnAdapter {
    fn label(&self) -> &'static str {
        "SEG-AN"
    }
    fn capacity_bound(&self) -> Option<usize> {
        None
    }
    fn is_retry_free(&self) -> bool {
        false
    }
    fn enqueue(&self, tokens: &[u32]) -> usize {
        self.q.push_batch(tokens);
        tokens.len()
    }
    fn dequeue(&self) -> Option<u32> {
        let mut out = Vec::with_capacity(1);
        self.q.pop_batch(&mut out, 1);
        out.pop()
    }
    fn stats(&self) -> StatsSnapshot {
        self.q.stats()
    }
    fn reset(&mut self) {
        self.q.reset();
    }
}

/// Segment size derived from the nominal capacity: small enough that
/// every matrix scenario crosses segment boundaries.
fn seg_cap_for(capacity: usize) -> usize {
    (capacity / 8).max(2)
}

/// The full adapter roster: every host queue variant, bounded and
/// segmented.
pub fn conformance_suite() -> Vec<QueueFactory> {
    vec![
        |cap| {
            Box::new(BaseAdapter {
                q: BaseQueue::new(cap),
            })
        },
        |cap| {
            Box::new(AnAdapter {
                q: AnQueue::new(cap),
            })
        },
        |cap| {
            Box::new(MutexAdapter {
                q: MutexQueue::new(cap),
            })
        },
        |cap| {
            Box::new(RfAnAdapter {
                q: RfAnQueue::new(cap),
                poller: TicketPoller::default(),
            })
        },
        |cap| {
            Box::new(SegRfAnAdapter {
                q: SegmentedRfAnQueue::new(seg_cap_for(cap)),
                poller: TicketPoller::default(),
            })
        },
        |cap| {
            Box::new(SegRfAdapter {
                q: SegmentedRfQueue::new(seg_cap_for(cap)),
                poller: TicketPoller::default(),
            })
        },
        |cap| {
            Box::new(SegAnAdapter {
                q: SegmentedAnQueue::new(seg_cap_for(cap)),
            })
        },
    ]
}

// ------------------------------------------------------------ scenarios --

fn drain_exact(q: &dyn ConformingQueue, n: usize, case: &str) -> Vec<u32> {
    let mut got = Vec::with_capacity(n);
    let mut misses = 0usize;
    while got.len() < n {
        match q.dequeue() {
            Some(v) => {
                got.push(v);
                misses = 0;
            }
            None => {
                misses += 1;
                assert!(
                    misses < 10_000,
                    "[{}] {case}: queue starved after {} of {n} tokens",
                    q.label(),
                    got.len()
                );
            }
        }
    }
    got
}

fn case_single_thread_fifo(q: &dyn ConformingQueue) {
    const N: u32 = 40;
    for t in 0..N {
        assert_eq!(
            q.enqueue(&[t]),
            1,
            "[{}] fifo: token {t} refused",
            q.label()
        );
    }
    let got = drain_exact(q, N as usize, "fifo");
    assert_eq!(
        got,
        (0..N).collect::<Vec<_>>(),
        "[{}] fifo: out-of-order delivery",
        q.label()
    );
    assert_eq!(q.dequeue(), None, "[{}] fifo: phantom token", q.label());
}

fn case_batch_boundary(q: &dyn ConformingQueue) {
    let sizes = [7usize, 9, 5, 11, 1, 3];
    let mut offered = Vec::new();
    let mut next = 100u32;
    for &len in &sizes {
        let batch: Vec<u32> = (next..next + len as u32).collect();
        next += len as u32;
        assert_eq!(
            q.enqueue(&batch),
            len,
            "[{}] batch: {len}-token batch refused",
            q.label()
        );
        offered.extend(batch);
    }
    let got = drain_exact(q, offered.len(), "batch");
    assert_eq!(got, offered, "[{}] batch: order or content lost", q.label());
    let appends = q.stats().segment_appends;
    if q.capacity_bound().is_none() {
        assert!(
            appends > 0,
            "[{}] batch: segmented run never appended a segment",
            q.label()
        );
    } else {
        assert_eq!(
            appends,
            0,
            "[{}] batch: bounded variant counted segment appends",
            q.label()
        );
    }
}

fn case_mpmc_conservation(q: &dyn ConformingQueue) {
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 3;
    const PER: usize = 200;
    const TOTAL: usize = PRODUCERS * PER;
    let taken = AtomicUsize::new(0);
    let collected: Mutex<Vec<u32>> = Mutex::new(Vec::with_capacity(TOTAL));
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            s.spawn(move || {
                let tokens: Vec<u32> = (0..PER as u32).map(|i| ((p as u32) << 16) | i).collect();
                for chunk in tokens.chunks(17) {
                    assert_eq!(
                        q.enqueue(chunk),
                        chunk.len(),
                        "[{}] mpmc: batch refused",
                        q.label()
                    );
                }
            });
        }
        for _ in 0..CONSUMERS {
            s.spawn(|| {
                let mut got = Vec::new();
                while taken.load(Ordering::Relaxed) < TOTAL {
                    if let Some(v) = q.dequeue() {
                        got.push(v);
                        taken.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
                collected.lock().unwrap().extend(got);
            });
        }
    });
    let mut got = collected.into_inner().unwrap();
    got.sort_unstable();
    let mut want: Vec<u32> = (0..PRODUCERS as u32)
        .flat_map(|p| (0..PER as u32).map(move |i| (p << 16) | i))
        .collect();
    want.sort_unstable();
    assert_eq!(
        got,
        want,
        "[{}] mpmc: token conservation violated",
        q.label()
    );
    if q.is_retry_free() {
        let s = q.stats();
        assert_eq!(
            s.cas_attempts,
            0,
            "[{}] mpmc: retry-free variant issued CAS",
            q.label()
        );
        assert_eq!(
            s.total_retries(),
            0,
            "[{}] mpmc: retry-free variant retried",
            q.label()
        );
    }
}

fn case_overflow(q: &dyn ConformingQueue, capacity: usize) {
    let offered = capacity + capacity / 2;
    let mut accepted = 0usize;
    for chunk in (0..offered as u32).collect::<Vec<_>>().chunks(capacity / 2) {
        accepted += q.enqueue(chunk);
    }
    match q.capacity_bound() {
        Some(bound) => {
            // Batches are sized to divide the bound, so the accepted
            // prefix is exactly the capacity: overflow rejects, nothing
            // more (the paper's queue-full abort, minus the abort).
            assert_eq!(
                accepted,
                bound,
                "[{}] overflow: bounded variant accepted past capacity",
                q.label()
            );
            let got = drain_exact(q, accepted, "overflow");
            assert_eq!(
                got,
                (0..accepted as u32).collect::<Vec<_>>(),
                "[{}] overflow: accepted prefix corrupted",
                q.label()
            );
        }
        None => {
            assert_eq!(
                accepted,
                offered,
                "[{}] overflow: segmented variant rejected an enqueue",
                q.label()
            );
            let got = drain_exact(q, offered, "overflow");
            assert_eq!(
                got,
                (0..offered as u32).collect::<Vec<_>>(),
                "[{}] overflow: delivery lost under segment appends",
                q.label()
            );
        }
    }
}

fn case_reset_reuse(q: &mut Box<dyn ConformingQueue>, capacity: usize) {
    let round: Vec<u32> = (0..capacity as u32).collect();
    assert_eq!(q.enqueue(&round), round.len());
    let got = drain_exact(q.as_ref(), round.len(), "reset-reuse (round 1)");
    assert_eq!(got, round);
    q.reset();
    // Round 2 re-offers the full lifetime budget: only a real reset
    // (rewound tickets, restored sentinels, re-pooled segments) can
    // serve it.
    let round2: Vec<u32> = (500..500 + capacity as u32).collect();
    assert_eq!(
        q.enqueue(&round2),
        round2.len(),
        "[{}] reset-reuse: lifetime budget not re-armed",
        q.label()
    );
    let got = drain_exact(q.as_ref(), round2.len(), "reset-reuse (round 2)");
    assert_eq!(
        got,
        round2,
        "[{}] reset-reuse: stale state leaked",
        q.label()
    );
}

/// Runs one variant through the whole matrix; panics on any violation.
pub fn run_conformance(mk: QueueFactory) -> ConformanceReport {
    let mut cases = Vec::new();
    let mut segment_appends = 0;

    let q = mk(64);
    case_single_thread_fifo(q.as_ref());
    cases.push("single-thread-fifo");
    let label = q.label();

    let q = mk(64);
    case_batch_boundary(q.as_ref());
    segment_appends += q.stats().segment_appends;
    cases.push("batch-boundary");

    let q = mk(2048);
    case_mpmc_conservation(q.as_ref());
    segment_appends += q.stats().segment_appends;
    cases.push("mpmc-conservation");

    let q = mk(16);
    case_overflow(q.as_ref(), 16);
    segment_appends += q.stats().segment_appends;
    cases.push("overflow");

    let mut q = mk(32);
    case_reset_reuse(&mut q, 32);
    cases.push("reset-reuse");

    ConformanceReport {
        label,
        cases,
        segment_appends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_passes_the_matrix() {
        let mut labels = Vec::new();
        for mk in conformance_suite() {
            let report = run_conformance(mk);
            assert_eq!(report.cases.len(), 5, "{}: matrix incomplete", report.label);
            labels.push(report.label);
        }
        assert_eq!(
            labels,
            vec![
                "BASE",
                "AN",
                "MUTEX",
                "RF/AN",
                "SEG-RF/AN",
                "SEG-RF",
                "SEG-AN"
            ]
        );
    }

    #[test]
    fn segmented_variants_append_and_bounded_never_do() {
        for mk in conformance_suite() {
            let report = run_conformance(mk);
            let segmented = report.label.starts_with("SEG");
            assert_eq!(
                report.segment_appends > 0,
                segmented,
                "{}: segment-append observation mismatch",
                report.label
            );
        }
    }
}
