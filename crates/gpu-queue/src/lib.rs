//! `gpu-queue` — the paper's contribution: a retry-free, arbitrary-n
//! concurrent queue for scheduling irregular workloads on GPUs
//! (Troendle, Ta, Jang — ICPP 2019), plus the two traditional designs it
//! is evaluated against.
//!
//! Two families of implementations share the same algorithms:
//!
//! * [`device`] — queue variants formulated against the [`simt`] simulator's
//!   wavefront API, written to mirror the paper's OpenCL listings 1–3:
//!   proxy-thread aggregation with local atomics, a single global atomic
//!   per wavefront per operation, and the *data-not-arrived* sentinel that
//!   refactors the queue-empty exception into a plain memory poll.
//! * [`host`] — real-thread Rust implementations of the same three designs
//!   (fetch-add ticket reservation + sentinel slots vs. CAS reservation),
//!   usable as genuine concurrent data structures and benchmarked with
//!   Criterion on real hardware.
//!
//! The three variants (paper §5.3):
//!
//! | variant | reservation atomic | batch (arbitrary-n) | empty handling |
//! |---|---|---|---|
//! | `BASE`  | per-thread CAS (retries) | no | exception → retry |
//! | `AN`    | per-wave proxy CAS (retries) | yes | exception → retry |
//! | `RF/AN` | per-wave proxy fetch-add (never fails) | yes | `dna` sentinel poll |

pub mod device;
pub mod host;
pub mod verify;

/// The *data-not-arrived* sentinel. Stored in every queue slot where valid
/// data has not yet arrived; task tokens must therefore be `< DNA`.
pub const DNA: u32 = u32::MAX;

/// Queue-variant selector used across kernels, runners, and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Traditional lock-free CAS queue: no retry-free, no arbitrary-n.
    Base,
    /// CAS queue with the arbitrary-n property (proxy-thread batching).
    An,
    /// The proposed retry-free, arbitrary-n queue (AFA + dna sentinel).
    RfAn,
    /// Ablation-only: retry-free *without* arbitrary-n (per-lane AFA +
    /// dna sentinel). Completes the 2x2 property matrix; not part of the
    /// paper's three-way comparison.
    RfOnly,
    /// Segmented RF/AN: linked segments of bounded retry-free rings with a
    /// recycled-segment pool. Overflow becomes a segment append (one
    /// directory store) instead of a queue-full abort; the AFA fast path
    /// is unchanged within a segment. Memory is bounded by *live*
    /// occupancy rather than lifetime enqueues. Not in the paper —
    /// ROADMAP item 3's extension.
    SegRfAn,
}

impl Variant {
    /// The paper's three variants, in its presentation order (excludes
    /// the [`Variant::RfOnly`] ablation).
    pub const ALL: [Variant; 3] = [Variant::Base, Variant::An, Variant::RfAn];

    /// The full 2x2 property matrix including the RF-only ablation.
    pub const MATRIX: [Variant; 4] = [Variant::Base, Variant::An, Variant::RfOnly, Variant::RfAn];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "BASE",
            Variant::An => "AN",
            Variant::RfAn => "RF/AN",
            Variant::RfOnly => "RF-only",
            Variant::SegRfAn => "SEG-RF/AN",
        }
    }

    /// Whether the variant reserves batches through a proxy thread.
    pub fn is_arbitrary_n(self) -> bool {
        matches!(self, Variant::An | Variant::RfAn | Variant::SegRfAn)
    }

    /// Whether the variant's atomics can fail (and therefore retry).
    pub fn is_retry_free(self) -> bool {
        matches!(self, Variant::RfAn | Variant::RfOnly | Variant::SegRfAn)
    }

    /// Whether the variant's ticket space spans linked segments (no
    /// queue-full abort; capacity regrow never applies).
    pub fn is_segmented(self) -> bool {
        matches!(self, Variant::SegRfAn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::Base.label(), "BASE");
        assert_eq!(Variant::An.label(), "AN");
        assert_eq!(Variant::RfAn.label(), "RF/AN");
    }

    #[test]
    fn property_matrix() {
        assert!(!Variant::Base.is_arbitrary_n());
        assert!(Variant::An.is_arbitrary_n());
        assert!(Variant::RfAn.is_arbitrary_n());
        assert!(!Variant::Base.is_retry_free());
        assert!(!Variant::An.is_retry_free());
        assert!(Variant::RfAn.is_retry_free());
        assert!(Variant::SegRfAn.is_retry_free());
        assert!(Variant::SegRfAn.is_arbitrary_n());
        assert!(Variant::SegRfAn.is_segmented());
        // The paper's comparison sets stay fixed: segmented is an
        // explicitly-requested extension, never implied by ALL/MATRIX.
        assert!(!Variant::ALL.contains(&Variant::SegRfAn));
        assert!(!Variant::MATRIX.contains(&Variant::SegRfAn));
        for v in Variant::MATRIX {
            assert!(!v.is_segmented());
        }
    }

    #[test]
    fn dna_is_max_word() {
        assert_eq!(DNA, 0xFFFF_FFFF);
    }
}
