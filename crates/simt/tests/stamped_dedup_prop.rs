//! Property test: the generation-stamped cache-line table must count
//! exactly what the historical per-cycle `sort_unstable` + `dedup`
//! accounting counted, across randomized traffic, cycle boundaries, and
//! table growth.
//!
//! The stamped table never clears between cycles — a slot is live only if
//! its stamp matches the current cycle generation — so the property that
//! matters is equivalence *across many cycles in a row*, where stale
//! stamps from earlier cycles sit in the table waiting to be miscounted.

use simt::round::RoundState;

/// SplitMix64 — tiny, seedable, dependency-free PRNG (public-domain
/// algorithm; same recurrence as `java.util.SplittableRandom`).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough value in `0..bound` for property-test traffic.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The historical accounting this refactor replaced: collect every line
/// touch of the cycle, then sort + dedup and count.
fn reference_distinct(touches: &[usize]) -> u64 {
    let mut lines = touches.to_vec();
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u64
}

#[test]
fn stamped_count_equals_sort_dedup_reference() {
    let mut rng = SplitMix64(0x1cc9_2019 ^ 0xA5A5_A5A5);
    let mut rs = RoundState::new();
    for case in 0..200 {
        // Mix of dense hot-spot traffic and sparse wide traffic, with the
        // address space occasionally larger than the pre-sized table so
        // on-demand growth is exercised too.
        let space = 1 + rng.below(if case % 5 == 0 { 10_000 } else { 64 }) as usize;
        if case % 3 == 0 {
            rs.ensure_capacity(space * 16);
        }
        let cycles = 1 + rng.below(8);
        for _ in 0..cycles {
            let touches: Vec<usize> = (0..rng.below(300))
                .map(|_| rng.below(space as u64) as usize)
                .collect();
            rs.begin_cycle();
            for &line in &touches {
                rs.touch_line(line);
            }
            assert_eq!(
                rs.cycle_lines(),
                reference_distinct(&touches),
                "case {case}: stamped dedup diverged from sort+dedup \
                 over {} touches in a {space}-line space",
                touches.len(),
            );
        }
    }
}

#[test]
fn repeat_touches_never_recount_within_a_cycle() {
    let mut rng = SplitMix64(7);
    let mut rs = RoundState::new();
    for _ in 0..50 {
        rs.begin_cycle();
        let line = rng.below(1000) as usize;
        rs.touch_line(line);
        let count = rs.cycle_lines();
        for _ in 0..10 {
            rs.touch_line(line);
        }
        assert_eq!(rs.cycle_lines(), count);
    }
}
