//! Optional per-round execution traces.
//!
//! A trace records, for every scheduling round, what bounded that round on
//! the busiest compute unit — SIMD issue, exposed latency, or the memory
//! bandwidth share — plus how many wavefronts were still active. This is
//! the simulator's answer to a hardware profiler's occupancy timeline:
//! the ablation studies use it to show *why* a configuration is slow, not
//! just that it is.

/// What limited a round's duration on the busiest CU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundBound {
    /// SIMD instruction issue (unhideable work, including CAS retries).
    Issue,
    /// Exposed memory/atomic latency (not enough wavefronts to hide it).
    Latency,
    /// The CU's memory-bandwidth share (scattered traffic).
    Bandwidth,
    /// The atomic unit's throughput (lock-step atomic volleys).
    AtomicUnit,
}

/// One round's record.
#[derive(Clone, Copy, Debug)]
pub struct RoundTrace {
    /// Cycles this round added to the busiest CU.
    pub cycles: u64,
    /// Which resource bounded it.
    pub bound: RoundBound,
    /// Wavefronts still active at the start of the round.
    pub active_waves: usize,
}

/// A full run's trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-round records, in execution order.
    pub rounds: Vec<RoundTrace>,
}

impl Trace {
    /// Total cycles across rounds. Because each round records the busiest
    /// CU — which can differ between rounds — this is an *upper envelope*
    /// of the makespan (minus launch overhead), equal to it whenever one
    /// CU stays the bottleneck throughout.
    pub fn total_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.cycles).sum()
    }

    /// Fraction of cycles bounded by each resource, in the order
    /// (issue, latency, bandwidth + atomic unit).
    pub fn bound_breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_cycles().max(1) as f64;
        let mut by = [0u64; 3];
        for r in &self.rounds {
            let idx = match r.bound {
                RoundBound::Issue => 0,
                RoundBound::Latency => 1,
                RoundBound::Bandwidth | RoundBound::AtomicUnit => 2,
            };
            by[idx] += r.cycles;
        }
        (
            by[0] as f64 / total,
            by[1] as f64 / total,
            by[2] as f64 / total,
        )
    }

    /// Average active wavefronts, weighted by round duration — an
    /// occupancy measure.
    pub fn weighted_occupancy(&self) -> f64 {
        let total = self.total_cycles().max(1) as f64;
        self.rounds
            .iter()
            .map(|r| r.active_waves as f64 * r.cycles as f64)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            rounds: vec![
                RoundTrace {
                    cycles: 60,
                    bound: RoundBound::Issue,
                    active_waves: 4,
                },
                RoundTrace {
                    cycles: 30,
                    bound: RoundBound::Latency,
                    active_waves: 2,
                },
                RoundTrace {
                    cycles: 10,
                    bound: RoundBound::Bandwidth,
                    active_waves: 1,
                },
            ],
        }
    }

    #[test]
    fn totals_and_breakdown() {
        let t = sample();
        assert_eq!(t.total_cycles(), 100);
        let (i, l, b) = t.bound_breakdown();
        assert!((i - 0.6).abs() < 1e-12);
        assert!((l - 0.3).abs() < 1e-12);
        assert!((b - 0.1).abs() < 1e-12);
    }

    #[test]
    fn occupancy_weighted_by_duration() {
        let t = sample();
        // (4*60 + 2*30 + 1*10) / 100 = 3.1
        assert!((t.weighted_occupancy() - 3.1).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::default();
        assert_eq!(t.total_cycles(), 0);
        assert_eq!(t.bound_breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(t.weighted_occupancy(), 0.0);
    }
}
