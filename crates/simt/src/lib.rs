//! `simt` — a deterministic, cycle-approximate SIMT GPU simulator.
//!
//! The ICPP'19 queue paper's results are driven by four first-order
//! architectural effects of AMD GCN-class GPUs:
//!
//! 1. **Lock-step SIMT execution** — 64-lane wavefronts share a program
//!    counter; divergent lanes idle; 64 lanes CASing the same word in
//!    lock-step all observe the same old value, so exactly one wins.
//! 2. **Per-address atomic serialization** — atomics to one word are
//!    serialized device-wide; the k-th in line waits k serialization slots.
//! 3. **Zero-cost thread switching** — *latency* (memory, atomic wait) is
//!    hidden while other resident wavefronts issue, but *issue slots*
//!    (instructions, including re-issued CAS retries) are never hidden.
//! 4. **Static device memory** — no dynamic allocation inside a kernel.
//!
//! This crate models exactly those four effects and nothing more. Kernels
//! are per-wavefront state machines advanced one *work cycle* per round
//! (matching the paper's persistent-thread work-cycle structure); costs are
//! charged through an explicit [`config::CostModel`]; execution is fully
//! deterministic so tests can assert exact atomic-operation and retry
//! counts.
//!
//! ```
//! use simt::{Engine, GpuConfig, Launch, WaveCtx, WaveKernel, WaveStatus};
//!
//! /// Every lane fetch-adds 1 to a counter, once.
//! struct CountKernel { done: bool }
//! impl WaveKernel for CountKernel {
//!     fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
//!         if !self.done {
//!             let counter = ctx.buffer("counter");
//!             for _lane in 0..ctx.wave_size() {
//!                 ctx.atomic_add(counter, 0, 1);
//!             }
//!             self.done = true;
//!         }
//!         WaveStatus::Done
//!     }
//! }
//!
//! let config = GpuConfig::spectre();
//! let mut engine = Engine::new(config);
//! engine.memory_mut().alloc("counter", 1);
//! let report = engine
//!     .run(Launch::workgroups(2), |_wave| CountKernel { done: false })
//!     .unwrap();
//! let counter = engine.memory().buffer("counter");
//! assert_eq!(engine.memory().read_u32(counter, 0), 128);
//! assert_eq!(report.metrics.global_atomics, 128);
//! ```

pub mod audit;
pub mod config;
pub mod ctx;
pub mod engine;
pub mod error;
pub mod fault;
pub mod memory;
pub mod metrics;
pub mod plan;
pub mod round;
pub mod trace;

pub use audit::OpSpec;
pub use config::{CostModel, GpuConfig};
pub use ctx::{WaveClass, WaveCtx, WaveInfo, WaveKernel, WaveStatus};
pub use engine::{Engine, Launch, RunReport};
pub use error::{AbortReason, FaultKind, SimError};
pub use fault::{CuStall, FaultPlan, FaultSpec, MemPoison, WaveKill};
pub use memory::{eager_zeroing, set_eager_zeroing, Buffer, DeviceMemory};
pub use metrics::{Metrics, Profile};
pub use plan::PlanCtx;
pub use trace::{RoundBound, RoundTrace, Trace};
