//! The simulation engine: workgroup dispatch, round scheduling, and the
//! latency-hiding time model.
//!
//! # Time model
//!
//! Execution advances in *rounds*; each round, every active wavefront runs
//! one work cycle. A compute unit's time for a round is
//!
//! ```text
//! cu_round_cycles = max( ceil(Σ issue / simds_per_cu),  max latency )
//! ```
//!
//! * `Σ issue` — every instruction issued by the CU's resident wavefronts
//!   must pass through one of its SIMD issue slots; this cost is *never*
//!   hidden. CAS retries re-issue and therefore show up here: "the
//!   overhead of retrying an unsuccessful CAS cannot be hidden".
//! * `max latency` — memory/atomic wait time overlaps with other
//!   wavefronts' issues (zero-cost thread switching). With many resident
//!   wavefronts, issue dominates and latency vanishes — exactly the GPU
//!   behaviour the paper's AFA choice exploits. With a single wavefront
//!   resident, its stalls are exposed.
//!
//! The kernel's makespan is the maximum accumulated cycle count over CUs
//! plus the launch overhead; seconds follow from the configured clock.
//!
//! # Determinism
//!
//! Wavefronts execute in a fixed rotation (shifted by one each round so no
//! wavefront permanently wins every atomic race). Two runs with the same
//! config, kernel, and memory image produce byte-identical metrics.
//!
//! The scheduler keeps the active wavefronts in a dense, ascending list
//! and realizes the rotation by splitting that list at the round's offset
//! — visiting `[offset..]` then the wrap-around `[..offset]`. This visits
//! exactly the same wave sequence as scanning a `Vec<bool>` from the
//! offset, without paying O(total waves) per round in the long tail where
//! only a few waves remain active. Any change here must preserve the
//! visit order bit-for-bit; `pt-bfs`'s engine-regression test pins it.
//!
//! # Wave parking
//!
//! A kernel whose work cycle was a pure poll can register park watches
//! (see [`WaveCtx::park_until_changed`]). The engine then stops invoking
//! the kernel and instead, at the wave's exact rotation position each
//! round, replays the parked cycle's captured charges (issue, latency,
//! cache lines, metric deltas) — closed-form accrual of the identical
//! cycle the kernel would have re-executed — until a watched word's
//! visible value differs from the parked expectation, at which point the
//! wave resumes real execution *that same round, at that same position*.
//! Parking is refused (exact slow path) for cycles that wrote memory,
//! issued atomics, faulted, aborted, or finished.

use crate::config::GpuConfig;
use crate::ctx::{Watch, WaveClass, WaveCtx, WaveInfo, WaveKernel, WaveStatus};
use crate::error::{AbortReason, FaultKind, SimError};
use crate::fault::FaultPlan;
use crate::memory::DeviceMemory;
use crate::metrics::{Metrics, Profile};
use crate::plan::PlanCtx;
use crate::round::RoundState;
use crate::trace::{RoundBound, RoundTrace, Trace};

/// Launch geometry for one kernel run.
#[derive(Clone, Copy, Debug)]
pub struct Launch {
    /// GPU workgroups to launch (each `waves_per_wg` wavefronts).
    pub num_workgroups: usize,
    /// Collaborating CPU thread-groups (CHAI baseline); each behaves like
    /// a wavefront of class [`WaveClass::CpuCollab`] on its own
    /// virtual compute unit.
    pub cpu_collab_groups: usize,
    /// Safety limit on scheduling rounds.
    pub max_rounds: u64,
    /// Record a per-round [`Trace`] (costs memory proportional to rounds).
    pub trace: bool,
    /// Enable AuditMode: queue operations that open audit scopes (see
    /// [`crate::audit`]) are validated against their declared atomic
    /// budgets; a violation fails the run. Pure bookkeeping — metrics and
    /// timing are identical with or without it.
    pub audit: bool,
    /// Host worker threads for the intra-round plan phase (DESIGN.md
    /// §12). `<= 1` runs the historical fully-serial loop; `N > 1` fans
    /// the read-only [`crate::WaveKernel::plan_cycle`] pass across `N`
    /// threads while the commit phase stays serial — results are
    /// byte-identical at any value. Not clamped to the host core count
    /// here (the bench harness owns that policy), so determinism tests
    /// exercise real multi-worker planning even on small boxes.
    pub engine_workers: usize,
}

impl Launch {
    /// A plain GPU launch of `n` workgroups.
    pub fn workgroups(n: usize) -> Self {
        Launch {
            num_workgroups: n,
            cpu_collab_groups: 0,
            max_rounds: 50_000_000,
            trace: false,
            audit: false,
            engine_workers: 1,
        }
    }

    /// Enables per-round tracing for this run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Adds collaborating CPU groups (CHAI-style heterogeneous launch).
    pub fn with_cpu_collab(mut self, groups: usize) -> Self {
        self.cpu_collab_groups = groups;
        self
    }

    /// Overrides the round safety limit.
    pub fn with_max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Enables AuditMode for this run (see [`Launch::audit`]).
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Sets the plan-phase worker count (see [`Launch::engine_workers`]).
    /// `0` and `1` both mean serial.
    pub fn with_engine_workers(mut self, workers: usize) -> Self {
        self.engine_workers = workers;
        self
    }
}

/// Result of a completed kernel run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Counters accumulated during the run.
    pub metrics: Metrics,
    /// Kernel wall time in simulated seconds.
    pub seconds: f64,
    /// Final cycle count of every compute unit (GPU CUs first, then
    /// virtual CPU units).
    pub per_cu_cycles: Vec<u64>,
    /// Per-round trace, present iff the launch requested it.
    pub trace: Option<Trace>,
    /// Always-on host-side profiling counters (see [`Profile`]): arena
    /// and table footprints, park fast-path hit counts, peak per-round
    /// line traffic. Never part of any golden — purely diagnostic.
    pub profile: Profile,
}

/// A parked wavefront: the watch list that wakes it and the captured
/// charges of its (identical) polling cycle, replayed once per round.
struct Park {
    /// Words whose visible-value change wakes the wave.
    watches: Vec<Watch>,
    /// Issue cycles the polling cycle charged.
    issue: u64,
    /// Latency watermark the polling cycle charged.
    latency: u64,
    /// Distinct cache lines the polling cycle touched.
    lines: u64,
    /// Metric counters the polling cycle bumped (work_cycles included).
    delta: Metrics,
}

/// Per-launch bookkeeping for the multi-launch round loop: counters that
/// must not bleed between co-resident launches, plus the device-clock
/// snapshot taken the round the launch's last wave retires.
struct LaunchState {
    /// Counters charged by this launch's waves.
    metrics: Metrics,
    /// Park events raised by this launch's waves.
    park_events: u64,
    /// Park fast-path replays of this launch's waves.
    park_replay_cycles: u64,
    /// Waves of this launch still alive.
    waves_left: usize,
    /// Makespan snapshotted at retirement (compute/bandwidth/hot-word
    /// maxima as of that round, plus launch overhead).
    makespan: u64,
    /// Per-CU cycle state at retirement.
    cu_snapshot: Vec<u64>,
}

/// Fieldwise `after - before` of the per-cycle metric counters. Fields a
/// work cycle never touches (rounds, launches, makespan) stay zero, so
/// accruing the delta via [`Metrics::merge`] is exact.
fn metrics_delta(after: &Metrics, before: &Metrics) -> Metrics {
    Metrics {
        global_atomics: after.global_atomics - before.global_atomics,
        scheduler_atomics: after.scheduler_atomics - before.scheduler_atomics,
        cas_attempts: after.cas_attempts - before.cas_attempts,
        cas_failures: after.cas_failures - before.cas_failures,
        lds_atomics: after.lds_atomics - before.lds_atomics,
        queue_empty_retries: after.queue_empty_retries - before.queue_empty_retries,
        global_mem_ops: after.global_mem_ops - before.global_mem_ops,
        work_cycles: after.work_cycles - before.work_cycles,
        rounds: 0,
        launches: 0,
        makespan_cycles: 0,
        injected_faults: after.injected_faults - before.injected_faults,
        injected_stall_cycles: after.injected_stall_cycles - before.injected_stall_cycles,
    }
}

/// Raw-pointer handle to the per-wave kernel vector, handing each
/// plan-phase worker mutable access to *its* shard's kernels.
///
/// Soundness: the engine partitions the round's planned waves into
/// disjoint shards and each wave id appears in at most one shard, so no
/// two threads ever hold a `&mut` to the same kernel, and the engine
/// thread does not touch `kernels` while the scope is open.
struct KernelShards<K>(*mut K);

impl<K> Clone for KernelShards<K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K> Copy for KernelShards<K> {}

// SAFETY: shard disjointness (see struct docs) means each thread derives
// exclusive references only to kernels no other thread touches; `K: Send`
// (the `WaveKernel` supertrait) makes shipping that access across threads
// sound.
unsafe impl<K: Send> Send for KernelShards<K> {}

/// Runs the read-only plan pass for one shard of waves.
fn plan_shard<K: WaveKernel>(
    kernels: KernelShards<K>,
    shard: &[usize],
    infos: &[WaveInfo],
    memory: &DeviceMemory,
) {
    for &w in shard {
        // SAFETY: `w` appears in exactly one shard (see `KernelShards`).
        let kernel = unsafe { &mut *kernels.0.add(w) };
        kernel.plan_cycle(&PlanCtx::new(memory, infos[w]));
    }
}

/// Reusable per-run scheduling state, owned by the engine so multi-launch
/// algorithms (level-synchronous BFS fires thousands of kernels) never
/// reallocate it.
#[derive(Default)]
struct Scratch {
    /// Dense, ascending list of active wavefront ids.
    active: Vec<usize>,
    /// Liveness flag per wavefront, used to compact `active` after a
    /// round retires waves.
    alive: Vec<bool>,
    /// Per-CU issue cycles accumulated this round.
    round_issue: Vec<u64>,
    /// Per-CU exposed-latency watermark this round.
    round_latency: Vec<u64>,
    /// Per-CU atomic-unit occupancy this round (millicycles).
    round_atomic: Vec<u64>,
    /// Park state per wavefront (`None` = executing normally).
    parks: Vec<Option<Park>>,
    /// Watch-registration scratch handed to each work cycle.
    watches: Vec<Watch>,
    /// Plan-phase shard scratch: the active, unparked waves of the
    /// current round (parked waves replay captured charges and run no
    /// work cycle, so there is nothing to plan for them).
    plan_waves: Vec<usize>,
}

/// A simulated GPU: configuration plus device memory. Memory persists
/// across runs, so multi-launch algorithms (level-synchronous BFS) reuse
/// their buffers exactly like a real host program would.
pub struct Engine {
    config: GpuConfig,
    memory: DeviceMemory,
    round_state: RoundState,
    scratch: Scratch,
}

impl Engine {
    /// Creates an engine with empty device memory.
    pub fn new(config: GpuConfig) -> Self {
        Engine {
            config,
            memory: DeviceMemory::new(),
            round_state: RoundState::new(),
            scratch: Scratch::default(),
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Host access to device memory (allocate/init between launches).
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.memory
    }

    /// Read-only host access to device memory.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Runs one kernel to completion. `factory` builds the per-wavefront
    /// kernel state (it receives each wavefront's identity).
    ///
    /// # Errors
    /// Fails on device faults (out-of-bounds), kernel aborts (queue-full),
    /// or exceeding the round limit.
    pub fn run<K, F>(&mut self, launch: Launch, factory: F) -> Result<RunReport, SimError>
    where
        K: WaveKernel,
        F: FnMut(WaveInfo) -> K,
    {
        self.run_with_faults(launch, &FaultPlan::EMPTY, factory)
    }

    /// [`Engine::run`] under a deterministic [`FaultPlan`]. Injection is a
    /// pure overlay: with an empty plan this is exactly `run` — same wave
    /// visit order, same metrics, same cycles, bit for bit. A non-empty
    /// plan may kill waves (structured abort), stall CUs (extra cycles,
    /// recorded in `Metrics::injected_stall_cycles`), or poison memory
    /// words (abort on next kernel access).
    pub fn run_with_faults<K, F>(
        &mut self,
        launch: Launch,
        plan: &FaultPlan,
        mut factory: F,
    ) -> Result<RunReport, SimError>
    where
        K: WaveKernel,
        F: FnMut(WaveInfo) -> K,
    {
        let wgs = [launch.num_workgroups];
        let mut reports = self.run_multi(launch, &wgs, plan, |_, info| factory(info))?;
        Ok(reports.pop().expect("single launch yields one report"))
    }

    /// Runs several co-resident kernel launches that share the device:
    /// waves from all launches interleave in one deterministic round
    /// rotation, contending for the same CUs, DRAM bandwidth pool, and
    /// hot-word serialization floor. Each launch gets its own
    /// [`RunReport`] — metrics, a makespan snapshotted at the round its
    /// last wave retires, and the per-CU cycle state at that instant —
    /// so co-residents that finish early report shorter makespans than
    /// stragglers, exactly like overlapping streams on real hardware.
    ///
    /// `template` supplies the shared knobs (round limit, audit,
    /// engine workers); `launch_wgs[l]` is launch `l`'s workgroup count.
    /// `factory` receives `(launch_index, info)` where `info` carries
    /// *launch-local* `wave_id`/`workgroup`/`total_waves` (kernels see
    /// their own geometry, as if launched alone) while CU assignment
    /// continues the device-wide round-robin fill across launches.
    ///
    /// Restrictions: no CPU-collab groups and no fault plan (both are
    /// single-launch concepts; faulted queries run solo upstream). A
    /// one-element `launch_wgs` is bit-identical to [`Engine::run`].
    ///
    /// # Errors
    /// Same failure modes as [`Engine::run`]; an abort in any launch
    /// fails the whole co-resident execution.
    pub fn run_coresident<K, F>(
        &mut self,
        template: Launch,
        launch_wgs: &[usize],
        factory: F,
    ) -> Result<Vec<RunReport>, SimError>
    where
        K: WaveKernel,
        F: FnMut(usize, WaveInfo) -> K,
    {
        assert!(
            template.cpu_collab_groups == 0,
            "co-resident launches do not support CPU collab groups"
        );
        assert!(!launch_wgs.is_empty(), "need at least one launch");
        assert!(
            launch_wgs.iter().all(|&n| n > 0),
            "every co-resident launch needs at least one workgroup"
        );
        self.run_multi(template, launch_wgs, &FaultPlan::EMPTY, factory)
    }

    /// The round-loop core shared by [`Engine::run_with_faults`] (one
    /// launch, faults allowed) and [`Engine::run_coresident`] (many
    /// launches, clean). With a single launch the wave table, visit
    /// order, charges, and report are bit-identical to the historical
    /// single-launch loop — the pt-bfs engine-regression goldens pin it.
    fn run_multi<K, F>(
        &mut self,
        launch: Launch,
        launch_wgs: &[usize],
        plan: &FaultPlan,
        mut factory: F,
    ) -> Result<Vec<RunReport>, SimError>
    where
        K: WaveKernel,
        F: FnMut(usize, WaveInfo) -> K,
    {
        let num_launches = launch_wgs.len();
        assert!(
            num_launches == 1 || (plan.is_empty() && launch.cpu_collab_groups == 0),
            "faults and CPU collab are single-launch only"
        );
        let gpu_waves: usize = launch_wgs
            .iter()
            .map(|&n| n * self.config.waves_per_wg)
            .sum();
        let total_waves = gpu_waves + launch.cpu_collab_groups;
        assert!(total_waves > 0, "launch must contain at least one group");
        let num_cus = self.config.num_cus + launch.cpu_collab_groups;

        // Build wave table. GPU workgroups are distributed round-robin
        // over CUs in launch order (matching how a hardware dispatcher
        // fills the device as streams arrive); each CPU collab group gets
        // its own virtual unit. `wave_id`/`workgroup`/`total_waves` stay
        // launch-local so a kernel's queue-slot partitioning is the same
        // whether it runs alone or co-resident.
        let mut infos = Vec::with_capacity(total_waves);
        let mut launch_of = Vec::with_capacity(total_waves);
        let mut global_wg = 0usize;
        for (l, &wgs) in launch_wgs.iter().enumerate() {
            let local_total =
                wgs * self.config.waves_per_wg + if l == 0 { launch.cpu_collab_groups } else { 0 };
            for wg in 0..wgs {
                for w in 0..self.config.waves_per_wg {
                    infos.push(WaveInfo {
                        wave_id: wg * self.config.waves_per_wg + w,
                        workgroup: wg,
                        cu: global_wg % self.config.num_cus,
                        wave_size: self.config.wave_size,
                        total_waves: local_total,
                        class: WaveClass::Gpu,
                    });
                    launch_of.push(l);
                }
                global_wg += 1;
            }
        }
        for g in 0..launch.cpu_collab_groups {
            infos.push(WaveInfo {
                wave_id: launch_wgs[0] * self.config.waves_per_wg + g,
                workgroup: launch_wgs[0] + g,
                cu: self.config.num_cus + g,
                wave_size: self.config.wave_size,
                total_waves,
                class: WaveClass::CpuCollab,
            });
            launch_of.push(0);
        }

        let mut kernels: Vec<K> = infos
            .iter()
            .zip(&launch_of)
            .map(|(&i, &l)| factory(l, i))
            .collect();

        let Scratch {
            active,
            alive,
            round_issue,
            round_latency,
            round_atomic,
            parks,
            watches,
            plan_waves,
        } = &mut self.scratch;
        active.clear();
        active.extend(0..total_waves);
        alive.clear();
        alive.resize(total_waves, true);
        round_issue.clear();
        round_issue.resize(num_cus, 0);
        round_latency.clear();
        round_latency.resize(num_cus, 0);
        round_atomic.clear();
        round_atomic.resize(num_cus, 0);
        parks.clear();
        parks.resize_with(total_waves, || None);
        self.round_state
            .ensure_capacity(self.memory.allocated_words());

        let workers = launch.engine_workers.max(1);
        // Per-launch accounting: counters charge to the acting wave's
        // launch; device-wide quantities (per-CU clocks, bandwidth and
        // hot-word floors) are shared and snapshotted per launch at the
        // round its last wave retires.
        let mut states: Vec<LaunchState> = launch_wgs
            .iter()
            .map(|&wgs| LaunchState {
                metrics: Metrics::default(),
                park_events: 0,
                park_replay_cycles: 0,
                waves_left: wgs * self.config.waves_per_wg,
                makespan: 0,
                cu_snapshot: Vec::new(),
            })
            .collect();
        states[0].waves_left += launch.cpu_collab_groups;
        let mut newly_done: Vec<usize> = Vec::new();
        let mut profile = Profile {
            engine_workers: workers as u64,
            ..Profile::default()
        };
        let mut cu_cycles = vec![0u64; num_cus];
        let mut device_bw_millicycles: u64 = 0;
        let mut device_hot_millicycles: u64 = 0;
        let mut round_lines: u64;
        let mut trace = launch.trace.then(Trace::default);
        let mut round: u64 = 0;

        // Fault-injection overlay. With an empty plan `faults_on` is false
        // and every injection site below is a single untaken branch, so
        // the simulated schedule and timing are bit-identical to `run`.
        let faults_on = !plan.is_empty();
        let fplan = if faults_on {
            self.memory.clear_poisons();
            let mut p = plan.clone();
            p.normalize();
            p
        } else {
            FaultPlan::EMPTY
        };
        let mut next_kill = 0usize;
        let mut next_poison = 0usize;
        let mut round_kills: Vec<usize> = Vec::new();

        while !active.is_empty() {
            if round >= launch.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    limit: launch.max_rounds,
                });
            }
            self.round_state.begin_round();
            self.memory.begin_round();
            round_issue.iter_mut().for_each(|c| *c = 0);
            round_latency.iter_mut().for_each(|c| *c = 0);
            round_lines = 0;
            round_atomic.iter_mut().for_each(|c| *c = 0);

            if faults_on {
                // Collect this round's wave-kills and arm this round's
                // poisons (both lists are sorted by round).
                round_kills.clear();
                while next_kill < fplan.wave_kills.len()
                    && fplan.wave_kills[next_kill].round <= round
                {
                    if fplan.wave_kills[next_kill].round == round {
                        round_kills.push(fplan.wave_kills[next_kill].wave);
                    }
                    next_kill += 1;
                }
                while next_poison < fplan.mem_poisons.len()
                    && fplan.mem_poisons[next_poison].round <= round
                {
                    let p = &fplan.mem_poisons[next_poison];
                    if let Some(buf) = self.memory.try_buffer(&p.buffer) {
                        if let Ok(addr) = self.memory.flat_addr(buf, p.index) {
                            self.memory.arm_poison(addr, p.round);
                            states[0].metrics.injected_faults += 1;
                        }
                    }
                    next_poison += 1;
                }
            }

            // ---- plan phase (DESIGN.md §12) ----
            // Fan the active, unparked waves out across host workers for
            // a read-only planning pass (decode lane state, copy CSR edge
            // chunks, predict stale queue-slot pickups, prefetch). Purely
            // a cache warmer: nothing in it is observable in the
            // simulation, and the commit phase below is the historical
            // serial loop verbatim, so results are byte-identical at any
            // worker count. Parked waves replay captured charges without
            // a work cycle, so they have nothing to plan. Runs after
            // poison arming: plan reads are fault-blind either way, and
            // the cached data is consumed through validated accessors
            // that observe this round's poisons in commit order.
            if workers > 1 {
                plan_waves.clear();
                plan_waves.extend(active.iter().copied().filter(|&w| parks[w].is_none()));
                if !plan_waves.is_empty() {
                    profile.plan_rounds += 1;
                    profile.planned_waves += plan_waves.len() as u64;
                    let shard_len = plan_waves.len().div_ceil(workers);
                    let memory = &self.memory;
                    let infos_ref = infos.as_slice();
                    let shards = KernelShards(kernels.as_mut_ptr());
                    let mut rest = plan_waves.chunks(shard_len);
                    let first = rest.next().unwrap_or(&[]);
                    if plan_waves.len() > shard_len {
                        std::thread::scope(|scope| {
                            for shard in rest {
                                scope.spawn(move || plan_shard(shards, shard, infos_ref, memory));
                            }
                            // The engine thread takes the first shard
                            // instead of idling on the join.
                            plan_shard(shards, first, infos_ref, memory);
                        });
                    } else {
                        plan_shard(shards, first, infos_ref, memory);
                    }
                }
            }

            let active_at_start = active.len();
            // Rotate execution order so atomic arrival ranks are fair:
            // visit active ids >= offset in order, then wrap. `active` is
            // kept sorted, so this is the same sequence the historical
            // full scan `w = (i + offset) % total_waves` produced.
            let offset = (round as usize) % total_waves;
            let split = active.partition_point(|&w| w < offset);
            let mut retired = false;
            for pos in (split..active.len()).chain(0..split) {
                let w = active[pos];
                let info = infos[w];
                let state = &mut states[launch_of[w]];
                if faults_on && !round_kills.is_empty() && round_kills.contains(&w) {
                    // The abort discards metrics; the kill is recorded in
                    // the structured error itself.
                    return Err(SimError::KernelAbort {
                        reason: AbortReason::InjectedFault {
                            kind: FaultKind::WaveKill,
                            wave: w,
                            round,
                        },
                        round,
                    });
                }
                if let Some(park) = parks[w].as_ref() {
                    // Wake check at the wave's exact rotation position:
                    // identical observation ⟹ identical cycle, so replay
                    // the captured charges and move on.
                    let unchanged = park.watches.iter().all(|watch| {
                        let v = if watch.stale {
                            self.memory.stale_value(watch.addr)
                        } else {
                            self.memory.word(watch.addr)
                        };
                        v == watch.expected
                    });
                    if unchanged {
                        round_issue[info.cu] += park.issue;
                        round_latency[info.cu] = round_latency[info.cu].max(park.latency);
                        round_lines += park.lines;
                        state.metrics.merge(&park.delta);
                        state.park_replay_cycles += 1;
                        continue;
                    }
                    parks[w] = None;
                }
                watches.clear();
                self.round_state.begin_cycle();
                let before = state.metrics;
                let mut ctx = WaveCtx::new(
                    &mut self.memory,
                    &mut state.metrics,
                    &mut self.round_state,
                    &self.config.cost,
                    info,
                    watches,
                );
                ctx.audit = launch.audit;
                let status = kernels[w].work_cycle(&mut ctx);
                let issue = ctx.issue;
                let latency = ctx.latency;
                let atomic_ops = ctx.atomic_ops;
                let wrote = ctx.wrote;
                let fault = ctx.fault.take();
                let abort = ctx.abort.take();
                if let Some(e) = fault {
                    // Poison faults are detected inside DeviceMemory,
                    // which does not know the observing wave: fill in the
                    // wave here (keeping the armed round) and stamp the
                    // observation round on the abort.
                    let e = match e {
                        SimError::KernelAbort {
                            reason:
                                AbortReason::InjectedFault {
                                    kind, round: armed, ..
                                },
                            ..
                        } => SimError::KernelAbort {
                            reason: AbortReason::InjectedFault {
                                kind,
                                wave: w,
                                round: armed,
                            },
                            round,
                        },
                        other => other,
                    };
                    return Err(e);
                }
                if let Some(reason) = abort {
                    return Err(SimError::KernelAbort { reason, round });
                }
                state.metrics.work_cycles += 1;
                round_issue[info.cu] += issue;
                round_latency[info.cu] = round_latency[info.cu].max(latency);
                round_atomic[info.cu] += atomic_ops * self.config.cost.atomic_unit_milli;
                // Bandwidth: distinct cache lines this wavefront touched.
                let cycle_lines = self.round_state.cycle_lines();
                round_lines += cycle_lines;
                if status == WaveStatus::Done {
                    alive[w] = false;
                    retired = true;
                    state.waves_left -= 1;
                    if state.waves_left == 0 {
                        // The launch's device-clock snapshot happens at
                        // the end of this round, after its costs land.
                        newly_done.push(launch_of[w]);
                    }
                } else if !watches.is_empty() && !wrote && atomic_ops == 0 {
                    // A pure polling cycle: park the wave and replay these
                    // exact charges until a watched word changes.
                    state.park_events += 1;
                    parks[w] = Some(Park {
                        watches: std::mem::take(watches),
                        issue,
                        latency,
                        lines: cycle_lines,
                        delta: metrics_delta(&state.metrics, &before),
                    });
                }
            }
            if retired {
                // Compact in place; retain keeps ascending order.
                active.retain(|&w| alive[w]);
            }

            let simds = self.config.simds_per_cu as u64;
            let mut worst = (0u64, RoundBound::Issue);
            for cu in 0..num_cus {
                let issue_time = round_issue[cu].div_ceil(simds);
                // A round lasts as long as its longest per-CU pole: SIMD
                // issue, exposed latency, or the atomic unit's throughput.
                // (DRAM bandwidth is a device-wide pool, applied to the
                // makespan below.)
                let cost = issue_time
                    .max(round_latency[cu])
                    .max(round_atomic[cu] / 1000);
                cu_cycles[cu] += cost;
                if cost > worst.0 {
                    let bound = if cost == issue_time {
                        RoundBound::Issue
                    } else if cost == round_latency[cu] {
                        RoundBound::Latency
                    } else {
                        RoundBound::AtomicUnit
                    };
                    worst = (cost, bound);
                }
            }
            if faults_on {
                // Stall windows charge extra cycles to their CU. Timing
                // only: the run proceeds, the makespan grows. Each window
                // is recorded once (on entry) in `injected_faults`.
                for s in &fplan.cu_stalls {
                    if s.cu < num_cus && s.covers(round) {
                        cu_cycles[s.cu] += s.extra_cycles;
                        states[0].metrics.injected_stall_cycles += s.extra_cycles;
                        if s.from_round == round {
                            states[0].metrics.injected_faults += 1;
                        }
                    }
                }
            }
            profile.peak_round_lines = profile.peak_round_lines.max(round_lines);
            let round_bw_milli = round_lines * self.config.cost.mem_bw_line_milli;
            device_bw_millicycles += round_bw_milli;
            if round_bw_milli / 1000 > worst.0 {
                worst = (round_bw_milli / 1000, RoundBound::Bandwidth);
            }
            // The round's hottest word serializes at a single L2 slice —
            // a device-wide floor no amount of occupancy can hide.
            let round_hot_milli =
                self.round_state.max_same_address() * self.config.cost.hot_word_milli;
            device_hot_millicycles += round_hot_milli;
            if round_hot_milli / 1000 > worst.0 {
                worst = (round_hot_milli / 1000, RoundBound::AtomicUnit);
            }
            if let Some(t) = trace.as_mut() {
                t.rounds.push(RoundTrace {
                    cycles: worst.0,
                    bound: worst.1,
                    active_waves: active_at_start,
                });
            }
            // A launch whose last wave retired this round completes here:
            // it can finish no faster than the slowest CU so far and no
            // faster than the device-wide DRAM / hot-word floors — all of
            // which include the interference its co-residents caused.
            for l in newly_done.drain(..) {
                let compute = cu_cycles.iter().copied().max().unwrap_or(0);
                states[l].makespan = compute
                    .max(device_bw_millicycles / 1000)
                    .max(device_hot_millicycles / 1000)
                    + self.config.cost.launch_overhead;
                states[l].metrics.rounds = round + 1;
                states[l].cu_snapshot = cu_cycles.clone();
            }
            round += 1;
        }

        profile.arena_words = self.memory.allocated_words() as u64;
        profile.meta_bytes = self.memory.meta_bytes();
        profile.demand_zeroed_words = self.memory.demand_zeroed_words();
        profile.arena_recycled = u64::from(self.memory.was_recycled());
        profile.line_table_bytes = self.round_state.line_table_bytes();
        Ok(states
            .into_iter()
            .enumerate()
            .map(|(l, mut s)| {
                s.metrics.launches = 1;
                s.metrics.makespan_cycles = s.makespan;
                // Device-wide profile gauges are shared; the park
                // counters are this launch's own. The per-round trace
                // (device-wide by construction) rides on launch 0.
                let mut p = profile;
                p.park_events = s.park_events;
                p.park_replay_cycles = s.park_replay_cycles;
                RunReport {
                    metrics: s.metrics,
                    seconds: self.config.cycles_to_seconds(s.makespan),
                    per_cu_cycles: std::mem::take(&mut s.cu_snapshot),
                    trace: if l == 0 { trace.take() } else { None },
                    profile: p,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::memory::Buffer;

    /// Kernel that atomically increments a counter `n` times, one per
    /// work cycle, then exits.
    struct IncrKernel {
        buf: Buffer,
        remaining: u32,
    }

    impl WaveKernel for IncrKernel {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            if self.remaining == 0 {
                return WaveStatus::Done;
            }
            ctx.atomic_add(self.buf, 0, 1);
            self.remaining -= 1;
            if self.remaining == 0 {
                WaveStatus::Done
            } else {
                WaveStatus::Active
            }
        }
    }

    fn tiny_engine() -> Engine {
        let mut e = Engine::new(GpuConfig::test_tiny());
        e.memory_mut().alloc("counter", 1);
        e
    }

    #[test]
    fn all_increments_land() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let report = e
            .run(Launch::workgroups(3), |_| IncrKernel { buf, remaining: 5 })
            .unwrap();
        assert_eq!(e.memory().read_u32(buf, 0), 15);
        assert_eq!(report.metrics.global_atomics, 15);
        assert_eq!(report.metrics.rounds, 5);
        assert_eq!(report.metrics.work_cycles, 15);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run(Launch::workgroups(4), |_| IncrKernel { buf, remaining: 3 })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.per_cu_cycles, b.per_cu_cycles);
    }

    #[test]
    fn contention_slows_the_clock() {
        // Same total atomics, but concentrated on fewer rounds => more
        // same-round contention => serialization latency shows up.
        let mut dense = tiny_engine();
        let buf = dense.memory().buffer("counter");
        // 8 waves x 1 increment: all 8 atomics land in round 0.
        let r_dense = dense
            .run(Launch::workgroups(4), |_| IncrKernel { buf, remaining: 1 })
            .unwrap();
        let mut sparse = tiny_engine();
        let buf2 = sparse.memory().buffer("counter");
        // 1 wave x 4 increments: one atomic per round, zero contention.
        let r_sparse = sparse
            .run(Launch::workgroups(1), |_| IncrKernel {
                buf: buf2,
                remaining: 4,
            })
            .unwrap();
        // With unit costs: dense round 0 on the busiest CU has rank-7
        // serialization => latency 10+? >= uncontended 10.
        let dense_per_round =
            r_dense.metrics.makespan_cycles as f64 / r_dense.metrics.rounds as f64;
        let sparse_per_round =
            r_sparse.metrics.makespan_cycles as f64 / r_sparse.metrics.rounds as f64;
        assert!(
            dense_per_round > sparse_per_round,
            "contended rounds should cost more: {dense_per_round} vs {sparse_per_round}"
        );
    }

    #[test]
    fn makespan_tracks_slowest_cu() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        // 1 workgroup => only CU 0 works; CU 1 stays at zero cycles.
        let report = e
            .run(Launch::workgroups(1), |_| IncrKernel { buf, remaining: 2 })
            .unwrap();
        assert_eq!(report.per_cu_cycles.len(), 2);
        assert_eq!(report.per_cu_cycles[1], 0);
        assert!(report.per_cu_cycles[0] > 0);
    }

    struct NeverDone;
    impl WaveKernel for NeverDone {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            ctx.charge_alu(1);
            WaveStatus::Active
        }
    }

    #[test]
    fn round_limit_catches_livelock() {
        let mut e = tiny_engine();
        let err = e
            .run(Launch::workgroups(1).with_max_rounds(100), |_| NeverDone)
            .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 100 });
    }

    struct Aborter;
    impl WaveKernel for Aborter {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            ctx.abort(AbortReason::QueueFull {
                requested: 64,
                capacity: 64,
            });
            WaveStatus::Active
        }
    }

    #[test]
    fn kernel_abort_propagates_with_round() {
        let mut e = tiny_engine();
        let err = e.run(Launch::workgroups(1), |_| Aborter).unwrap_err();
        assert_eq!(
            err,
            SimError::KernelAbort {
                reason: AbortReason::QueueFull {
                    requested: 64,
                    capacity: 64,
                },
                round: 0,
            }
        );
        assert!(err.is_queue_full());
    }

    struct OobKernel {
        buf: Buffer,
    }
    impl WaveKernel for OobKernel {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            ctx.global_read(self.buf, 999);
            WaveStatus::Done
        }
    }

    #[test]
    fn device_fault_fails_run() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let err = e
            .run(Launch::workgroups(1), |_| OobKernel { buf })
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn cpu_collab_waves_get_virtual_units() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let report = e
            .run(Launch::workgroups(1).with_cpu_collab(2), |_| IncrKernel {
                buf,
                remaining: 1,
            })
            .unwrap();
        assert_eq!(e.memory().read_u32(buf, 0), 3);
        // 2 GPU CUs + 2 virtual CPU units.
        assert_eq!(report.per_cu_cycles.len(), 4);
        // CPU units pay the SVM penalty => strictly more cycles than the
        // (equally loaded) GPU unit that ran one wave.
        assert!(report.per_cu_cycles[2] > report.per_cu_cycles[0]);
    }

    #[test]
    fn more_workgroups_shorten_fixed_total_work() {
        // 12 increments split over k waves; perfect scaling halves time.
        let time_for = |wgs: usize, per_wave: u32| {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run(Launch::workgroups(wgs), |_| IncrKernel {
                buf,
                remaining: per_wave,
            })
            .unwrap()
            .metrics
            .makespan_cycles
        };
        let t1 = time_for(1, 12);
        let t4 = time_for(4, 3);
        assert!(
            t4 * 2 < t1,
            "4 waves ({t4} cycles) should be well under half of 1 wave ({t1})"
        );
    }

    #[test]
    fn trace_records_every_round() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let report = e
            .run(Launch::workgroups(2).with_trace(), |_| IncrKernel {
                buf,
                remaining: 3,
            })
            .unwrap();
        let trace = report.trace.expect("trace requested");
        assert_eq!(trace.rounds.len() as u64, report.metrics.rounds);
        // The trace follows each round's busiest CU; summing it gives an
        // upper envelope of the true makespan (a different CU may be the
        // busiest in different rounds).
        assert!(
            trace.total_cycles() + e.config().cost.launch_overhead
                >= report.metrics.makespan_cycles
        );
        assert_eq!(trace.rounds[0].active_waves, 2);
        let (i, l, b) = trace.bound_breakdown();
        assert!((i + l + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_absent_unless_requested() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let report = e
            .run(Launch::workgroups(1), |_| IncrKernel { buf, remaining: 1 })
            .unwrap();
        assert!(report.trace.is_none());
    }

    /// One wave polls a word (parking on it); the other idles a few
    /// cycles and then writes it.
    struct ParkDemo {
        buf: Buffer,
        poller: bool,
        idle: u32,
    }
    impl WaveKernel for ParkDemo {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            if self.poller {
                if ctx.global_read(self.buf, 0) != 0 {
                    return WaveStatus::Done;
                }
                ctx.park_until_changed_now(self.buf, 0);
                WaveStatus::Active
            } else if self.idle > 0 {
                self.idle -= 1;
                ctx.charge_alu(1);
                WaveStatus::Active
            } else {
                ctx.global_write(self.buf, 0, 1);
                WaveStatus::Done
            }
        }
    }

    #[test]
    fn profile_reports_park_fast_path_and_footprints() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let report = e
            .run(Launch::workgroups(2), |i| ParkDemo {
                buf,
                poller: i.wave_id == 0,
                idle: 4,
            })
            .unwrap();
        let p = report.profile;
        assert_eq!(p.park_events, 1, "the poller parked once");
        assert!(
            p.park_replay_cycles >= 3,
            "idle rounds replay the parked cycle: {p:?}"
        );
        assert_eq!(p.arena_words, 1);
        assert!(p.meta_bytes > 0);
        assert!(p.line_table_bytes > 0);
        assert!(p.peak_round_lines >= 1);
    }

    /// Kernel claiming to be retry-free while actually issuing a CAS.
    struct LyingKernel {
        buf: Buffer,
    }
    impl WaveKernel for LyingKernel {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            ctx.audit_begin(crate::audit::OpSpec::new("RF/AN", "acquire"));
            ctx.atomic_cas(self.buf, 0, 0, 1);
            ctx.audit_end();
            WaveStatus::Done
        }
    }

    #[test]
    fn audit_violation_fails_the_run() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let err = e
            .run(Launch::workgroups(1).with_audit(), |_| LyingKernel { buf })
            .unwrap_err();
        assert!(matches!(err, SimError::AuditViolation(_)), "{err}");
    }

    #[test]
    fn audit_off_ignores_scopes_and_audit_never_perturbs_metrics() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let quiet = e
            .run(Launch::workgroups(1), |_| LyingKernel { buf })
            .unwrap();
        // Audited well-behaved run matches the unaudited one field for
        // field: auditing is pure bookkeeping.
        let run = |audit: bool| {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            let launch = if audit {
                Launch::workgroups(3).with_audit()
            } else {
                Launch::workgroups(3)
            };
            e.run(launch, |_| IncrKernel { buf, remaining: 4 }).unwrap()
        };
        let plain = run(false);
        let audited = run(true);
        assert_eq!(plain.metrics, audited.metrics);
        assert_eq!(plain.per_cu_cycles, audited.per_cu_cycles);
        assert_eq!(quiet.metrics.cas_attempts, 1);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_run() {
        let run_plain = || {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run(Launch::workgroups(4), |_| IncrKernel { buf, remaining: 6 })
                .unwrap()
        };
        let run_faulted = || {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run_with_faults(Launch::workgroups(4), &FaultPlan::EMPTY, |_| IncrKernel {
                buf,
                remaining: 6,
            })
            .unwrap()
        };
        let a = run_plain();
        let b = run_faulted();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.per_cu_cycles, b.per_cu_cycles);
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(b.metrics.injected_faults, 0);
        assert_eq!(b.metrics.injected_stall_cycles, 0);
    }

    #[test]
    fn wave_kill_aborts_with_structured_reason() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let plan = FaultPlan::new().kill_wave(2, 1);
        let err = e
            .run_with_faults(Launch::workgroups(4), &plan, |_| IncrKernel {
                buf,
                remaining: 10,
            })
            .unwrap_err();
        assert_eq!(
            err,
            SimError::KernelAbort {
                reason: AbortReason::InjectedFault {
                    kind: FaultKind::WaveKill,
                    wave: 1,
                    round: 2,
                },
                round: 2,
            }
        );
    }

    #[test]
    fn kill_of_retired_wave_is_a_miss() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        // Wave 0 does 2 cycles; a kill scheduled long after termination
        // never fires and the run completes normally.
        let plan = FaultPlan::new().kill_wave(100, 0);
        let r = e
            .run_with_faults(Launch::workgroups(1), &plan, |_| IncrKernel {
                buf,
                remaining: 2,
            })
            .unwrap();
        assert_eq!(r.metrics.injected_faults, 0);
    }

    #[test]
    fn cu_stall_grows_makespan_deterministically() {
        let run = |plan: &FaultPlan| {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run_with_faults(Launch::workgroups(1), plan, |_| IncrKernel {
                buf,
                remaining: 4,
            })
            .unwrap()
        };
        let clean = run(&FaultPlan::EMPTY);
        let stalled = run(&FaultPlan::new().stall_cu(0, 1, 2, 50));
        assert_eq!(
            stalled.metrics.makespan_cycles,
            clean.metrics.makespan_cycles + 100,
            "2 rounds x 50 extra cycles on the only busy CU"
        );
        assert_eq!(stalled.metrics.injected_stall_cycles, 100);
        assert_eq!(stalled.metrics.injected_faults, 1);
        assert_eq!(stalled.per_cu_cycles[0], clean.per_cu_cycles[0] + 100);
        // Everything else is untouched.
        assert_eq!(stalled.metrics.global_atomics, clean.metrics.global_atomics);
        assert_eq!(stalled.metrics.rounds, clean.metrics.rounds);
    }

    #[test]
    fn mem_poison_faults_next_access_with_wave_attached() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let plan = FaultPlan::new().poison(1, "counter", 0);
        let err = e
            .run_with_faults(Launch::workgroups(2), &plan, |_| IncrKernel {
                buf,
                remaining: 5,
            })
            .unwrap_err();
        match err {
            SimError::KernelAbort {
                reason:
                    AbortReason::InjectedFault {
                        kind: FaultKind::MemPoison,
                        wave,
                        round: armed,
                    },
                round,
            } => {
                assert_eq!(armed, 1, "poison was armed at round 1");
                assert_eq!(round, 1, "first atomic after arming is in round 1");
                assert!(wave < 4, "observing wave is attached, got {wave}");
            }
            other => panic!("expected poison abort, got {other:?}"),
        }
    }

    #[test]
    fn poison_on_unbound_buffer_is_skipped() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let plan = FaultPlan::new().poison(0, "workqueue", 3);
        let r = e
            .run_with_faults(Launch::workgroups(1), &plan, |_| IncrKernel {
                buf,
                remaining: 2,
            })
            .unwrap();
        assert_eq!(r.metrics.injected_faults, 0);
    }

    #[test]
    fn coresident_single_launch_matches_run() {
        let solo = {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run(Launch::workgroups(3), |_| IncrKernel { buf, remaining: 5 })
                .unwrap()
        };
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let mut reports = e
            .run_coresident(Launch::workgroups(3), &[3], |_, _| IncrKernel {
                buf,
                remaining: 5,
            })
            .unwrap();
        assert_eq!(reports.len(), 1);
        let co = reports.pop().unwrap();
        assert_eq!(co.metrics, solo.metrics);
        assert_eq!(co.per_cu_cycles, solo.per_cu_cycles);
        assert_eq!(co.seconds, solo.seconds);
        // Arena-pool gauges depend on engine construction order, so
        // compare only the run-derived profile counters.
        assert_eq!(co.profile.park_events, solo.profile.park_events);
        assert_eq!(co.profile.peak_round_lines, solo.profile.peak_round_lines);
    }

    #[test]
    fn coresident_launches_split_metrics_and_overlap() {
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        // Launch 0: 1 wave x 2 increments. Launch 1: 2 waves x 7
        // increments. All share one counter.
        let reports = e
            .run_coresident(Launch::workgroups(1), &[1, 2], |l, _| IncrKernel {
                buf,
                remaining: if l == 0 { 2 } else { 7 },
            })
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(e.memory().read_u32(buf, 0), 2 + 2 * 7);
        assert_eq!(reports[0].metrics.global_atomics, 2);
        assert_eq!(reports[1].metrics.global_atomics, 14);
        assert_eq!(reports[0].metrics.launches, 1);
        // The short launch retires after 2 rounds, the long one after 7 —
        // per-launch completion tracks each launch's own retirement.
        assert_eq!(reports[0].metrics.rounds, 2);
        assert_eq!(reports[1].metrics.rounds, 7);
        assert!(reports[0].metrics.makespan_cycles < reports[1].metrics.makespan_cycles);
    }

    #[test]
    fn coresident_completion_feels_contention() {
        // The same 2-increment launch finishes later (in cycles) when a
        // heavy co-resident shares the device than when it runs alone.
        let solo = {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run(Launch::workgroups(1), |_| IncrKernel { buf, remaining: 2 })
                .unwrap()
        };
        let mut e = tiny_engine();
        let buf = e.memory().buffer("counter");
        let reports = e
            .run_coresident(Launch::workgroups(1), &[1, 4], |l, _| IncrKernel {
                buf,
                remaining: if l == 0 { 2 } else { 8 },
            })
            .unwrap();
        assert!(
            reports[0].metrics.makespan_cycles > solo.metrics.makespan_cycles,
            "co-residency contends: {} vs solo {}",
            reports[0].metrics.makespan_cycles,
            solo.metrics.makespan_cycles
        );
    }

    #[test]
    fn coresident_reports_are_deterministic() {
        let run = || {
            let mut e = tiny_engine();
            let buf = e.memory().buffer("counter");
            e.run_coresident(Launch::workgroups(1), &[2, 1, 3], |l, _| IncrKernel {
                buf,
                remaining: 3 + l as u32,
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.per_cu_cycles, y.per_cu_cycles);
            assert_eq!(x.seconds, y.seconds);
        }
    }

    #[test]
    fn launch_overhead_added_once() {
        let mut cfg = GpuConfig::test_tiny();
        cfg.cost.launch_overhead = 1000;
        let mut e = Engine::new(cfg);
        e.memory_mut().alloc("counter", 1);
        let buf = e.memory().buffer("counter");
        let r = e
            .run(Launch::workgroups(1), |_| IncrKernel { buf, remaining: 1 })
            .unwrap();
        assert!(r.metrics.makespan_cycles >= 1000);
        assert!(r.metrics.makespan_cycles < 1100);
    }
}
