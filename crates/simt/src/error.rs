//! Simulator error types and the structured abort taxonomy.
//!
//! The paper's queue deliberately turns queue-full into a kernel abort
//! ("aborts the kernel because there is insufficient space to store
//! ready tasks") so the host can retry with a larger queue. Recovery
//! code must therefore *classify* aborts; matching on message strings
//! is fragile, so aborts carry a typed [`AbortReason`].

use std::fmt;

/// The category of an injected fault (see [`crate::fault::FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A wavefront was killed at the start of a scheduling round.
    WaveKill,
    /// A compute unit was stalled for extra cycles (timing-only; never
    /// surfaces as an error, but listed here for the fault taxonomy).
    CuStall,
    /// A device memory word was poisoned; the fault fires on the next
    /// kernel access (ECC-style detected error, not silent corruption).
    MemPoison,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WaveKill => write!(f, "wave-kill"),
            FaultKind::CuStall => write!(f, "cu-stall"),
            FaultKind::MemPoison => write!(f, "mem-poison"),
        }
    }
}

/// Why a kernel aborted. Replaces the old stringly `KernelAbort(String)`
/// so recovery policies can match structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A device queue ran out of slots: a reservation reached `requested`
    /// (token index or rear position) against a queue of `capacity` slots.
    QueueFull {
        /// The slot/rear position the reservation reached.
        requested: u64,
        /// The queue's capacity in tokens.
        capacity: u32,
    },
    /// A deterministic injected fault fired (see [`crate::fault`]).
    InjectedFault {
        /// What kind of fault fired.
        kind: FaultKind,
        /// The wavefront that observed it.
        wave: usize,
        /// The scheduling round at which the fault was scheduled/armed.
        round: u64,
    },
    /// A supervisory round budget was exhausted. Raised by recovery
    /// runners that cap per-epoch rounds (distinct from the engine's own
    /// [`SimError::MaxRoundsExceeded`], which is a hard non-termination
    /// error). Carries its context like its `QueueFull` sibling so
    /// per-query service logs can report what budget was blown.
    Watchdog {
        /// The supervisory round budget that was in force.
        budget: u64,
        /// The round at which the budget was observed exhausted.
        round: u64,
    },
}

impl AbortReason {
    /// True for the queue-full classification — the retryable condition
    /// the paper's host-side regrow loop responds to.
    pub fn is_queue_full(&self) -> bool {
        matches!(self, AbortReason::QueueFull { .. })
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::QueueFull {
                requested,
                capacity,
            } => write!(f, "queue full: slot {requested} >= capacity {capacity}"),
            AbortReason::InjectedFault { kind, wave, round } => {
                write!(f, "injected {kind} fault (wave {wave}, round {round})")
            }
            AbortReason::Watchdog { budget, round } => {
                write!(
                    f,
                    "watchdog round budget {budget} exhausted at round {round}"
                )
            }
        }
    }
}

/// Errors surfaced by a simulated kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel accessed a buffer outside its bounds.
    OutOfBounds {
        /// Offending word index.
        index: usize,
        /// Buffer length in words.
        len: usize,
    },
    /// A kernel aborted (e.g. the paper's queue-full exception). The
    /// engine attaches the round at which the abort was observed so
    /// recovery code can account for lost work.
    KernelAbort {
        /// The structured abort classification.
        reason: AbortReason,
        /// The scheduling round at which the engine observed the abort.
        round: u64,
    },
    /// The engine's round limit was exceeded — almost always a kernel
    /// that fails to terminate (lost wakeup, bad termination detection).
    MaxRoundsExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// AuditMode caught a queue operation exceeding its declared atomic
    /// budget (e.g. a retry-free design issuing a CAS, or an arbitrary-n
    /// design issuing more than one reservation per wavefront op).
    AuditViolation(String),
}

impl SimError {
    /// The structured abort reason, if this error is a kernel abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            SimError::KernelAbort { reason, .. } => Some(*reason),
            _ => None,
        }
    }

    /// True when this error is a queue-full abort — the retryable
    /// condition the paper's host-side regrow loop responds to.
    pub fn is_queue_full(&self) -> bool {
        matches!(
            self,
            SimError::KernelAbort {
                reason: AbortReason::QueueFull { .. },
                ..
            }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { index, len } => {
                write!(
                    f,
                    "device access out of bounds: index {index} in buffer of {len} words"
                )
            }
            SimError::KernelAbort { reason, round } => {
                write!(f, "kernel aborted at round {round}: {reason}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "simulation exceeded {limit} rounds without terminating")
            }
            SimError::AuditViolation(detail) => write!(f, "audit violation: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::OutOfBounds { index: 5, len: 2 };
        assert!(e.to_string().contains("index 5"));
        let e = SimError::KernelAbort {
            reason: AbortReason::QueueFull {
                requested: 64,
                capacity: 64,
            },
            round: 9,
        };
        assert!(e.to_string().contains("queue full"));
        assert!(e.to_string().contains("round 9"));
        let e = SimError::MaxRoundsExceeded { limit: 10 };
        assert!(e.to_string().contains("10 rounds"));
        let e = SimError::AuditViolation("RF/AN enqueue: 2 CAS".into());
        assert!(e.to_string().contains("audit violation"));
    }

    #[test]
    fn structured_accessors() {
        let e = SimError::KernelAbort {
            reason: AbortReason::QueueFull {
                requested: 100,
                capacity: 64,
            },
            round: 3,
        };
        assert!(e.is_queue_full());
        assert_eq!(
            e.abort_reason(),
            Some(AbortReason::QueueFull {
                requested: 100,
                capacity: 64
            })
        );
        assert!(e.abort_reason().unwrap().is_queue_full());
        let wd = AbortReason::Watchdog {
            budget: 16,
            round: 16,
        };
        assert!(!wd.is_queue_full());
        assert!(wd.to_string().contains("budget 16"));
        assert!(wd.to_string().contains("round 16"));
        let e = SimError::KernelAbort {
            reason: AbortReason::InjectedFault {
                kind: FaultKind::WaveKill,
                wave: 2,
                round: 7,
            },
            round: 7,
        };
        assert!(!e.is_queue_full());
        let e = SimError::MaxRoundsExceeded { limit: 1 };
        assert!(e.abort_reason().is_none());
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::WaveKill.to_string(), "wave-kill");
        assert_eq!(FaultKind::CuStall.to_string(), "cu-stall");
        assert_eq!(FaultKind::MemPoison.to_string(), "mem-poison");
    }
}
