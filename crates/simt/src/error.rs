//! Simulator error types.

use std::fmt;

/// Errors surfaced by a simulated kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel accessed a buffer outside its bounds.
    OutOfBounds {
        /// Offending word index.
        index: usize,
        /// Buffer length in words.
        len: usize,
    },
    /// A kernel aborted (e.g. the paper's queue-full exception, which
    /// "aborts the kernel because there is insufficient space to store
    /// ready tasks").
    KernelAbort(String),
    /// The engine's round limit was exceeded — almost always a kernel
    /// that fails to terminate (lost wakeup, bad termination detection).
    MaxRoundsExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// AuditMode caught a queue operation exceeding its declared atomic
    /// budget (e.g. a retry-free design issuing a CAS, or an arbitrary-n
    /// design issuing more than one reservation per wavefront op).
    AuditViolation(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { index, len } => {
                write!(
                    f,
                    "device access out of bounds: index {index} in buffer of {len} words"
                )
            }
            SimError::KernelAbort(reason) => write!(f, "kernel aborted: {reason}"),
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "simulation exceeded {limit} rounds without terminating")
            }
            SimError::AuditViolation(detail) => write!(f, "audit violation: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::OutOfBounds { index: 5, len: 2 };
        assert!(e.to_string().contains("index 5"));
        let e = SimError::KernelAbort("queue full".into());
        assert!(e.to_string().contains("queue full"));
        let e = SimError::MaxRoundsExceeded { limit: 10 };
        assert!(e.to_string().contains("10 rounds"));
        let e = SimError::AuditViolation("RF/AN enqueue: 2 CAS".into());
        assert!(e.to_string().contains("audit violation"));
    }
}
