//! Statically allocated device memory.
//!
//! GPUs expose no dynamic allocation inside kernels (paper §3.1): every
//! buffer — including the scheduler queue — must be allocated by the host
//! before launch. [`DeviceMemory`] models this with a bump allocator over a
//! flat `u32` arena; allocation is only possible between launches, and all
//! kernel accesses are bounds-checked against their [`Buffer`] handle.

use crate::error::SimError;
use std::collections::HashMap;

/// Handle to a named device allocation (offset + length in 32-bit words).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Buffer {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl Buffer {
    /// Length of the buffer in `u32` words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The flat device address of word `index`, bounds-checked.
    #[inline]
    pub(crate) fn addr(&self, index: usize) -> Result<usize, SimError> {
        if index < self.len {
            Ok(self.offset + index)
        } else {
            Err(SimError::OutOfBounds {
                index,
                len: self.len,
            })
        }
    }
}

/// Flat, host-managed device memory.
///
/// The per-word side tables (`versions`, round-start snapshots) are flat
/// vectors indexed by device address and kept exactly as long as `words`
/// by the allocator. The snapshot table is *generation stamped*: starting
/// a round bumps `round_gen` instead of clearing anything, and a slot's
/// recorded base value is live only while its stamp matches. Rounds are
/// the simulator's innermost cadence, so this keeps the hot accessors
/// (`store`/`rmw`/`stale_load`) free of hashing and per-round clears.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    words: Vec<u32>,
    buffers: HashMap<String, Buffer>,
    /// Successful-mutation counter per word, used by the CAS staleness
    /// model: a staged reservation can ask how many successful atomics
    /// landed on a word since it read it. `0` for never-mutated words.
    versions: Vec<u64>,
    /// Generation stamp per word; `base_value[a]` is live iff
    /// `base_stamp[a] == round_gen`.
    base_stamp: Vec<u64>,
    /// Round-start snapshot of every word mutated this round (first-write
    /// records the old value). Backs the one-round visibility delay for
    /// cross-wavefront data flow: a value published in round `r` becomes
    /// observable through stale reads in round `r + 1`.
    base_value: Vec<u32>,
    /// Current visibility round. Starts at 1 so zeroed stamps are stale.
    round_gen: u64,
}

impl Default for DeviceMemory {
    fn default() -> Self {
        DeviceMemory {
            words: Vec::new(),
            buffers: HashMap::new(),
            versions: Vec::new(),
            base_stamp: Vec::new(),
            base_value: Vec::new(),
            round_gen: 1,
        }
    }
}

impl DeviceMemory {
    /// Creates an empty device memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `len` words under `name`, zero-initialized, and returns
    /// the handle. Mirrors `clCreateBuffer` before kernel launch.
    ///
    /// # Panics
    /// Panics if `name` is already allocated (host code bug).
    pub fn alloc(&mut self, name: &str, len: usize) -> Buffer {
        assert!(
            !self.buffers.contains_key(name),
            "buffer {name:?} allocated twice"
        );
        let offset = self.words.len();
        self.words.resize(offset + len, 0);
        self.versions.resize(offset + len, 0);
        self.base_stamp.resize(offset + len, 0);
        self.base_value.resize(offset + len, 0);
        let buf = Buffer { offset, len };
        self.buffers.insert(name.to_owned(), buf);
        buf
    }

    /// Allocates and initializes from a slice (host→device copy).
    pub fn alloc_init(&mut self, name: &str, data: &[u32]) -> Buffer {
        let buf = self.alloc(name, data.len());
        self.words[buf.offset..buf.offset + buf.len].copy_from_slice(data);
        buf
    }

    /// Looks up a previously allocated buffer by name.
    ///
    /// # Panics
    /// Panics if the buffer does not exist.
    pub fn buffer(&self, name: &str) -> Buffer {
        *self
            .buffers
            .get(name)
            .unwrap_or_else(|| panic!("unknown buffer {name:?}"))
    }

    /// Host-side read of one word.
    pub fn read_u32(&self, buf: Buffer, index: usize) -> u32 {
        self.words[buf.addr(index).expect("host read out of bounds")]
    }

    /// Host-side write of one word.
    pub fn write_u32(&mut self, buf: Buffer, index: usize, value: u32) {
        let addr = buf.addr(index).expect("host write out of bounds");
        self.words[addr] = value;
    }

    /// Host-side view of an entire buffer (device→host copy).
    pub fn read_slice(&self, buf: Buffer) -> &[u32] {
        &self.words[buf.offset..buf.offset + buf.len]
    }

    /// Fills a buffer with a value (e.g. painting the queue with the `dna`
    /// sentinel before launch).
    pub fn fill(&mut self, buf: Buffer, value: u32) {
        self.words[buf.offset..buf.offset + buf.len].fill(value);
    }

    /// Total allocated words.
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }

    // ---- device-side accessors used by WaveCtx (crate-internal) ----

    #[inline]
    pub(crate) fn load(&self, buf: Buffer, index: usize) -> Result<u32, SimError> {
        Ok(self.words[buf.addr(index)?])
    }

    /// Records the round-start value of `addr` if this is its first
    /// mutation this round.
    #[inline]
    fn snapshot_base(&mut self, addr: usize, old: u32) {
        if self.base_stamp[addr] != self.round_gen {
            self.base_stamp[addr] = self.round_gen;
            self.base_value[addr] = old;
        }
    }

    #[inline]
    pub(crate) fn store(&mut self, buf: Buffer, index: usize, value: u32) -> Result<(), SimError> {
        let addr = buf.addr(index)?;
        let old = self.words[addr];
        self.snapshot_base(addr, old);
        self.words[addr] = value;
        Ok(())
    }

    /// Atomic read-modify-write: applies `f` to the current value, stores
    /// the result, returns the old value. Simulator execution is
    /// sequential, so atomicity is inherent; contention *cost* is charged
    /// by the caller through the round state.
    #[inline]
    pub(crate) fn rmw(
        &mut self,
        buf: Buffer,
        index: usize,
        f: impl FnOnce(u32) -> u32,
    ) -> Result<u32, SimError> {
        let addr = buf.addr(index)?;
        let old = self.words[addr];
        let new = f(old);
        if new != old {
            self.versions[addr] += 1;
            self.snapshot_base(addr, old);
        }
        self.words[addr] = new;
        Ok(old)
    }

    /// The value a word held at the start of the current round (the
    /// one-round-delayed view other wavefronts observe).
    #[inline]
    pub(crate) fn stale_load(&self, buf: Buffer, index: usize) -> Result<u32, SimError> {
        let addr = buf.addr(index)?;
        Ok(if self.base_stamp[addr] == self.round_gen {
            self.base_value[addr]
        } else {
            self.words[addr]
        })
    }

    /// Starts a new visibility round: everything written so far becomes
    /// observable to stale reads.
    pub(crate) fn begin_round(&mut self) {
        self.round_gen += 1;
    }

    /// Mutation version of a word: how many successful (value-changing)
    /// atomics have landed on it. `0` for never-mutated words.
    #[inline]
    pub(crate) fn version(&self, buf: Buffer, index: usize) -> Result<u64, SimError> {
        let addr = buf.addr(index)?;
        Ok(self.versions[addr])
    }

    /// Flat address for contention bookkeeping.
    #[inline]
    pub(crate) fn flat_addr(&self, buf: Buffer, index: usize) -> Result<usize, SimError> {
        buf.addr(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_tracks_names() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 4);
        let b = mem.alloc("b", 2);
        assert_eq!(mem.allocated_words(), 6);
        assert_eq!(mem.read_slice(a), &[0, 0, 0, 0]);
        assert_eq!(mem.buffer("b"), b);
    }

    #[test]
    fn alloc_init_copies_data() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_init("a", &[1, 2, 3]);
        assert_eq!(mem.read_slice(a), &[1, 2, 3]);
        assert_eq!(mem.read_u32(a, 2), 3);
    }

    #[test]
    fn fill_paints_whole_buffer() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 3);
        mem.fill(a, 0xFFFF_FFFF);
        assert_eq!(mem.read_slice(a), &[u32::MAX; 3]);
    }

    #[test]
    fn rmw_returns_old_value() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1);
        mem.write_u32(a, 0, 10);
        let old = mem.rmw(a, 0, |v| v + 5).unwrap();
        assert_eq!(old, 10);
        assert_eq!(mem.read_u32(a, 0), 15);
    }

    #[test]
    fn device_load_reports_out_of_bounds() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1);
        assert!(matches!(
            mem.load(a, 1),
            Err(SimError::OutOfBounds { index: 1, len: 1 })
        ));
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_names_rejected() {
        let mut mem = DeviceMemory::new();
        mem.alloc("a", 1);
        mem.alloc("a", 1);
    }

    #[test]
    #[should_panic(expected = "unknown buffer")]
    fn unknown_buffer_panics() {
        let mem = DeviceMemory::new();
        mem.buffer("ghost");
    }

    #[test]
    fn buffers_do_not_overlap() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 2);
        let b = mem.alloc("b", 2);
        mem.write_u32(a, 1, 7);
        mem.write_u32(b, 0, 9);
        assert_eq!(mem.read_u32(a, 1), 7);
        assert_eq!(mem.read_u32(b, 0), 9);
    }

    #[test]
    fn zero_length_buffer_is_legal_but_unreadable() {
        let mut mem = DeviceMemory::new();
        let z = mem.alloc("z", 0);
        assert!(z.is_empty());
        assert!(mem.load(z, 0).is_err());
    }
}
