//! Statically allocated device memory.
//!
//! GPUs expose no dynamic allocation inside kernels (paper §3.1): every
//! buffer — including the scheduler queue — must be allocated by the host
//! before launch. [`DeviceMemory`] models this with a bump allocator over a
//! flat `u32` arena; allocation is only possible between launches, and all
//! kernel accesses are bounds-checked against their [`Buffer`] handle.

use crate::error::{AbortReason, FaultKind, SimError};
use crate::round::RoundState;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, recycled arenas are eagerly re-zeroed up front (the
/// historical behaviour) instead of zero-on-demand at allocation time.
/// Observable state is identical either way; the switch exists so the
/// benchmark harness can A/B the naive and optimized construction paths
/// in one process.
static EAGER_ZEROING: AtomicBool = AtomicBool::new(false);

/// Selects eager (true) or on-demand (false, default) re-zeroing of
/// recycled arenas. Takes effect at the next [`DeviceMemory::new`].
pub fn set_eager_zeroing(on: bool) {
    EAGER_ZEROING.store(on, Ordering::Relaxed);
}

/// Current arena re-zeroing mode (see [`set_eager_zeroing`]).
pub fn eager_zeroing() -> bool {
    EAGER_ZEROING.load(Ordering::Relaxed)
}

/// Handle to a named device allocation (offset + length in 32-bit words).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Buffer {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl Buffer {
    /// Length of the buffer in `u32` words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The flat device address of word `index`, bounds-checked.
    #[inline]
    pub(crate) fn addr(&self, index: usize) -> Result<usize, SimError> {
        if index < self.len {
            Ok(self.offset + index)
        } else {
            Err(SimError::OutOfBounds {
                index,
                len: self.len,
            })
        }
    }
}

/// Per-word bookkeeping, one entry per device word, kept in a single table
/// so the hot accessors (`rmw`, `stale_load`, rank lookup) touch one cache
/// line instead of three to five parallel arrays.
#[derive(Clone, Copy, Debug, Default)]
struct WordMeta {
    /// Successful-mutation counter, used by the CAS staleness model: a
    /// staged reservation can ask how many successful atomics landed on a
    /// word since it read it. Only deltas within one simulation are
    /// meaningful — the counter carries across arena reuses.
    version: u64,
    /// Round-visibility stamp; `base_value` is live iff
    /// `base_stamp == round_gen`.
    base_stamp: u64,
    /// Contention stamp; `rank_count` is live iff `rank_stamp` matches the
    /// engine round generation ([`RoundState::rank_gen`]).
    rank_stamp: u64,
    /// Round-start snapshot of the word, recorded at its first mutation of
    /// the round. Backs the one-round visibility delay for cross-wavefront
    /// data flow: a value published in round `r` becomes observable
    /// through stale reads in round `r + 1`.
    base_value: u32,
    /// Atomics that have targeted this word in the current round.
    rank_count: u32,
}

/// Flat, host-managed device memory.
///
/// The per-word side table ([`WordMeta`]) is a flat vector indexed by
/// device address and kept exactly as long as `words` by the allocator.
/// It is *generation stamped*: starting a round bumps `round_gen` instead
/// of clearing anything, and an entry's snapshot (or rank count) is live
/// only while its stamp matches. Rounds are the simulator's innermost
/// cadence, so this keeps the hot accessors (`store`/`rmw`/`stale_load`)
/// free of hashing and per-round clears.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    words: Vec<u32>,
    buffers: HashMap<String, Buffer>,
    /// Merged per-word metadata (version + round snapshot + atomic rank).
    meta: Vec<WordMeta>,
    /// Current visibility round. Starts at 1 on a fresh arena (so zeroed
    /// stamps are stale) and strictly above the previous life's final
    /// round on a recycled one (so *its* stamps are stale too).
    round_gen: u64,
    /// ECC-style poisoned words armed by fault injection: `(flat address,
    /// round armed)`. Kernel accesses to a poisoned word fault; host reads
    /// (`read_u32`/`read_slice`) do not, so a checkpoint snapshot can
    /// still be taken. Per-instance state — never recycled with the arena
    /// — and empty outside fault-injected runs, so the single emptiness
    /// branch on the access paths is the entire overlay cost.
    poisoned: Vec<(usize, u64)>,
    /// Length of the word-arena prefix that may still hold nonzero data
    /// from a previous life. Allocations overlapping it zero exactly the
    /// overlap (zero-on-demand); allocations past it land on pristine
    /// `alloc_zeroed` pages and pay nothing.
    dirty_words: usize,
    /// Words actually zeroed on demand by [`DeviceMemory::alloc`]
    /// (profiling counter; bounded by the previous life's footprint).
    demand_zeroed_words: u64,
    /// True if this arena came from the thread-local recycling pool.
    recycled: bool,
    /// Allocation namespace prefix (see
    /// [`DeviceMemory::set_alloc_prefix`]). Empty outside co-resident
    /// multi-launch setup, where per-launch prefixes keep otherwise
    /// identical buffer names ("nodes", "weights", …) from colliding.
    alloc_prefix: String,
}

impl Default for DeviceMemory {
    fn default() -> Self {
        Self::new()
    }
}

/// Recycled arena backing: the word and metadata vectors of the last
/// dropped [`DeviceMemory`] on this thread. Simulation points run back to
/// back on a worker thread and each allocates a fresh device memory;
/// without recycling, every point re-faults hundreds of megabytes of
/// arena pages in and unmaps them again (page-fault and `munmap` time
/// dominated experiment setup).
///
/// On reuse the *word* prefix is **not** re-zeroed up front: the arena
/// records how far its dirty prefix extends and [`DeviceMemory::alloc`]
/// zeroes exactly the part each allocation overlaps, so a run that
/// allocates less than the previous one never touches the cold tail
/// (eager mode, selectable via [`set_eager_zeroing`], restores the
/// historical whole-prefix memset for A/B benchmarking). The metadata
/// table — 8× larger and mostly cold — is never zeroed at all; its
/// staleness machinery absorbs the leftovers:
///
/// * `base_stamp` / `rank_stamp` are live only when they equal the
///   current generation, and generations are carried forward across
///   reuses (`round_gen` resumes from the arena's final value; rank
///   generations are thread-monotonic via [`RoundState`]), so a stale
///   stamp can never collide with a live one.
/// * `version` is consumed exclusively as same-run deltas (a queue
///   compares it against a version it captured earlier in the same
///   simulation), so carrying it forward monotonically is unobservable.
/// * `base_value` and `rank_count` are only read when their stamp is
///   live.
struct Arena {
    words: Vec<u32>,
    meta: Vec<WordMeta>,
    /// Final visibility round of the previous life; the next life starts
    /// above it so every stale `base_stamp` stays stale.
    round_gen: u64,
    /// How far the possibly-nonzero word prefix extends (the maximum of
    /// the previous life's own dirty prefix and its final length).
    dirty_words: usize,
}

thread_local! {
    static ARENA_POOL: std::cell::RefCell<Option<Arena>> =
        const { std::cell::RefCell::new(None) };
}

impl Drop for DeviceMemory {
    fn drop(&mut self) {
        let words = std::mem::take(&mut self.words);
        let meta = std::mem::take(&mut self.meta);
        let round_gen = self.round_gen;
        // Anything this life wrote extends the dirty prefix; dirt beyond
        // our final length (from an even earlier, larger life) persists.
        let dirty_words = self.dirty_words.max(words.len());
        ARENA_POOL.with(|pool| {
            let mut slot = pool.borrow_mut();
            // Keep the larger arena: the biggest point's block serves
            // every later point without regrowth.
            if slot
                .as_ref()
                .is_none_or(|kept| kept.words.capacity() <= words.capacity())
            {
                *slot = Some(Arena {
                    words,
                    meta,
                    round_gen,
                    dirty_words,
                });
            }
        });
    }
}

/// Extends `v` to `new_len` elements *without* an explicit memset: fresh
/// capacity comes from `alloc_zeroed`, so large tables start as
/// lazily-mapped kernel zero pages and only the pages the simulation
/// actually touches are ever faulted in. The word metadata table is 8×
/// the data arena and mostly cold (read-only buffers like the CSR edge
/// list never take a snapshot or a rank), which made the eager
/// `Vec::resize` memset the dominant setup cost of large runs.
///
/// New elements are zero when the caller maintains the arena invariant:
/// spare capacity beyond `max(len, dirty_words)` is never written, so it
/// is pristine `alloc_zeroed` memory. Growth within a recycled arena's
/// dirty prefix re-exposes previous-life words — the allocator zeroes
/// exactly the exposed overlap on demand — and the recycled *metadata*
/// table deliberately re-exposes its previous contents wholesale; see
/// [`Arena`] for why that is sound.
///
/// `T` must be valid for any bit pattern reachable here (`u32` and
/// `WordMeta` are plain integers).
fn grow_zeroed<T: Copy>(v: &mut Vec<T>, new_len: usize) {
    use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};
    if new_len > v.capacity() {
        let cap = new_len.max(v.capacity() * 2).next_power_of_two();
        let layout = Layout::array::<T>(cap).expect("device arena too large");
        // SAFETY: `cap > 0` so the layout is non-zero-sized; the block is
        // allocated by the global allocator with the exact layout a
        // `Vec<T>` of capacity `cap` deallocates with, and the used prefix
        // is copied before the old vector is dropped.
        unsafe {
            let ptr = alloc_zeroed(layout).cast::<T>();
            if ptr.is_null() {
                handle_alloc_error(layout);
            }
            let len = v.len();
            std::ptr::copy_nonoverlapping(v.as_ptr(), ptr, len);
            *v = Vec::from_raw_parts(ptr, len, cap);
        }
    }
    // SAFETY: `new_len <= capacity`, and everything between the old length
    // and `capacity` is zero by the invariant above — valid for `T`.
    unsafe { v.set_len(new_len) };
}

impl DeviceMemory {
    /// Creates an empty device memory, recycling this thread's pooled
    /// arena when one is available. A recycled arena's word prefix is
    /// zeroed on demand as allocations overlap it (or up front in eager
    /// mode) and its metadata is carried forward under the staleness
    /// rules documented on [`Arena`], so the result behaves exactly like
    /// a fresh allocation — only the page faults and the cold-tail memset
    /// are gone.
    pub fn new() -> Self {
        let (words, meta, round_gen, dirty_words, recycled) =
            ARENA_POOL.with(|pool| match pool.borrow_mut().take() {
                Some(mut arena) => {
                    let mut dirty = arena.dirty_words;
                    if eager_zeroing() && dirty > 0 {
                        // Historical behaviour for A/B benchmarking: pay
                        // the whole-prefix memset now. The dirty prefix
                        // can extend past the final length (an earlier,
                        // larger life), so expose it first; every word in
                        // it was written by `grow_zeroed`-managed code and
                        // is an initialized `u32`.
                        debug_assert!(dirty <= arena.words.capacity());
                        // SAFETY: `dirty <= capacity` and `[0, dirty)` is
                        // initialized (written in a previous life or
                        // pristine `alloc_zeroed` memory).
                        unsafe { arena.words.set_len(dirty) };
                        arena.words.fill(0);
                        dirty = 0;
                    }
                    arena.words.clear();
                    arena.meta.clear();
                    (arena.words, arena.meta, arena.round_gen + 1, dirty, true)
                }
                None => (Vec::new(), Vec::new(), 1, 0, false),
            });
        DeviceMemory {
            words,
            buffers: HashMap::new(),
            meta,
            round_gen,
            poisoned: Vec::new(),
            dirty_words,
            demand_zeroed_words: 0,
            recycled,
            alloc_prefix: String::new(),
        }
    }

    /// Sets the allocation namespace: subsequent `alloc*` calls register
    /// their buffers under `"{prefix}{name}"` (and [`DeviceMemory::buffer`]
    /// lookups do NOT apply it — hold the returned handles instead).
    /// Co-resident multi-launch hosts give each launch its own prefix so
    /// per-launch buffers with identical logical names coexist in one
    /// arena. Pass `""` to clear.
    pub fn set_alloc_prefix(&mut self, prefix: &str) {
        self.alloc_prefix = prefix.to_owned();
    }

    /// Grows the arena by `len` words and registers the handle, without
    /// establishing any particular content for the new region: within the
    /// recycled dirty prefix the words hold previous-life data, beyond it
    /// they are zero. Callers overwrite or zero the region themselves.
    fn alloc_raw(&mut self, name: &str, len: usize) -> Buffer {
        let name: std::borrow::Cow<'_, str> = if self.alloc_prefix.is_empty() {
            name.into()
        } else {
            format!("{}{}", self.alloc_prefix, name).into()
        };
        let name = name.as_ref();
        assert!(
            !self.buffers.contains_key(name),
            "buffer {name:?} allocated twice"
        );
        let offset = self.words.len();
        if offset + len > self.words.capacity() {
            // Reallocation copies only the live `[0, offset)` prefix into
            // fresh zeroed memory; the dirty tail stays behind in the old
            // block.
            self.dirty_words = self.dirty_words.min(offset);
        }
        grow_zeroed(&mut self.words, offset + len);
        grow_zeroed(&mut self.meta, offset + len);
        let buf = Buffer { offset, len };
        self.buffers.insert(name.to_owned(), buf);
        buf
    }

    /// Allocates `len` words under `name`, zero-initialized, and returns
    /// the handle. Mirrors `clCreateBuffer` before kernel launch. Only
    /// the overlap with a recycled arena's dirty prefix is actually
    /// memset (zero-on-demand); the rest is already zero.
    ///
    /// # Panics
    /// Panics if `name` is already allocated (host code bug).
    pub fn alloc(&mut self, name: &str, len: usize) -> Buffer {
        let buf = self.alloc_raw(name, len);
        let dirty_end = self.dirty_words.min(buf.offset + buf.len);
        if buf.offset < dirty_end {
            self.demand_zeroed_words += (dirty_end - buf.offset) as u64;
            self.words[buf.offset..dirty_end].fill(0);
        }
        buf
    }

    /// Allocates and initializes from a slice (host→device copy). The
    /// copy fully paints the region, so no pre-zeroing happens — one pass
    /// over the data instead of two.
    pub fn alloc_init(&mut self, name: &str, data: &[u32]) -> Buffer {
        let buf = self.alloc_raw(name, data.len());
        self.words[buf.offset..buf.offset + buf.len].copy_from_slice(data);
        buf
    }

    /// Allocates `len` words painted with `value` (e.g. the queue's `dna`
    /// sentinel). Single-pass: the fill paints directly instead of
    /// zeroing first and filling after.
    pub fn alloc_filled(&mut self, name: &str, len: usize, value: u32) -> Buffer {
        let buf = self.alloc_raw(name, len);
        self.words[buf.offset..buf.offset + buf.len].fill(value);
        buf
    }

    /// Looks up a buffer by name, returning `None` when it was never
    /// allocated. Used by fault injection, whose plans name buffers that
    /// a given kernel may not bind (such poisons are skipped).
    pub fn try_buffer(&self, name: &str) -> Option<Buffer> {
        self.buffers.get(name).copied()
    }

    /// Looks up a previously allocated buffer by name.
    ///
    /// # Panics
    /// Panics if the buffer does not exist.
    pub fn buffer(&self, name: &str) -> Buffer {
        *self
            .buffers
            .get(name)
            .unwrap_or_else(|| panic!("unknown buffer {name:?}"))
    }

    /// Host-side read of one word.
    pub fn read_u32(&self, buf: Buffer, index: usize) -> u32 {
        self.words[buf.addr(index).expect("host read out of bounds")]
    }

    /// Host-side write of one word.
    pub fn write_u32(&mut self, buf: Buffer, index: usize, value: u32) {
        let addr = buf.addr(index).expect("host write out of bounds");
        self.words[addr] = value;
    }

    /// Host-side view of an entire buffer (device→host copy).
    pub fn read_slice(&self, buf: Buffer) -> &[u32] {
        &self.words[buf.offset..buf.offset + buf.len]
    }

    /// Fills a buffer with a value (e.g. painting the queue with the `dna`
    /// sentinel before launch).
    pub fn fill(&mut self, buf: Buffer, value: u32) {
        self.words[buf.offset..buf.offset + buf.len].fill(value);
    }

    /// Total allocated words.
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }

    /// Bytes held by the per-word metadata table (profiling).
    pub fn meta_bytes(&self) -> u64 {
        (self.meta.len() * std::mem::size_of::<WordMeta>()) as u64
    }

    /// Words zeroed on demand by [`DeviceMemory::alloc`] because an
    /// allocation overlapped the recycled dirty prefix (profiling).
    pub fn demand_zeroed_words(&self) -> u64 {
        self.demand_zeroed_words
    }

    /// True if this arena was recycled from the thread-local pool
    /// (profiling).
    pub fn was_recycled(&self) -> bool {
        self.recycled
    }

    // ---- fault-injection poison overlay (crate-internal) ----

    /// Arms an ECC-style poison on flat address `addr` (armed at `round`).
    /// Idempotent per address.
    pub(crate) fn arm_poison(&mut self, addr: usize, round: u64) {
        if !self.poisoned.iter().any(|&(a, _)| a == addr) {
            self.poisoned.push((addr, round));
        }
    }

    /// Disarms every poisoned word (a fresh launch starts clean).
    pub(crate) fn clear_poisons(&mut self) {
        self.poisoned.clear();
    }

    /// Faults if `addr` is poisoned. The fast path is a single emptiness
    /// check; the wave/round placeholders in the error are filled in by
    /// the engine, which knows the observing wave.
    #[inline]
    fn check_poison(&self, addr: usize) -> Result<(), SimError> {
        if self.poisoned.is_empty() {
            return Ok(());
        }
        self.check_poison_slow(addr, 1)
    }

    #[cold]
    fn check_poison_slow(&self, addr: usize, len: usize) -> Result<(), SimError> {
        for &(p, armed) in &self.poisoned {
            if p >= addr && p < addr + len {
                return Err(SimError::KernelAbort {
                    reason: AbortReason::InjectedFault {
                        kind: FaultKind::MemPoison,
                        wave: usize::MAX,
                        round: armed,
                    },
                    round: armed,
                });
            }
        }
        Ok(())
    }

    // ---- device-side accessors used by WaveCtx (crate-internal) ----

    #[inline]
    pub(crate) fn load(&self, buf: Buffer, index: usize) -> Result<u32, SimError> {
        let addr = buf.addr(index)?;
        self.check_poison(addr)?;
        Ok(self.words[addr])
    }

    /// Bounds-checks the whole run `[start, start + len)` once and returns
    /// it as a slice — the prevalidated read path for contiguous blocks
    /// (CSR edge chunks): one check per block instead of one per word.
    #[inline]
    pub(crate) fn load_run(
        &self,
        buf: Buffer,
        start: usize,
        len: usize,
    ) -> Result<&[u32], SimError> {
        let end =
            start
                .checked_add(len)
                .filter(|&e| e <= buf.len)
                .ok_or(SimError::OutOfBounds {
                    index: start.saturating_add(len.saturating_sub(1)),
                    len: buf.len,
                })?;
        if !self.poisoned.is_empty() && len > 0 {
            self.check_poison_slow(buf.offset + start, len)?;
        }
        Ok(&self.words[buf.offset + start..buf.offset + end])
    }

    /// Records the round-start value of `addr` if this is its first
    /// mutation this round.
    #[inline]
    fn snapshot_base(&mut self, addr: usize, old: u32) {
        let m = &mut self.meta[addr];
        if m.base_stamp != self.round_gen {
            m.base_stamp = self.round_gen;
            m.base_value = old;
        }
    }

    #[inline]
    pub(crate) fn store(&mut self, buf: Buffer, index: usize, value: u32) -> Result<(), SimError> {
        let addr = buf.addr(index)?;
        self.check_poison(addr)?;
        let old = self.words[addr];
        self.snapshot_base(addr, old);
        self.words[addr] = value;
        Ok(())
    }

    /// Fused atomic read-modify-write: registers the arrival rank,
    /// applies `f`, and (on a value change) bumps the version and takes
    /// the round-start snapshot — one bounds check and one metadata
    /// lookup for the whole operation, where the unfused path paid three
    /// bounds checks and two metadata fetches per atomic. Returns
    /// `(flat address, arrival rank, old value)`; rank 0 pays no
    /// serialization delay. Simulator execution is sequential, so
    /// atomicity is inherent; contention *cost* is charged by the caller
    /// through the round state.
    #[inline]
    pub(crate) fn atomic_rmw(
        &mut self,
        buf: Buffer,
        index: usize,
        round: &mut RoundState,
        f: impl FnOnce(u32) -> u32,
    ) -> Result<(usize, u32, u32), SimError> {
        let addr = buf.addr(index)?;
        self.check_poison(addr)?;
        let gen = round.rank_gen();
        let round_gen = self.round_gen;
        let old = self.words[addr];
        let new = f(old);
        let m = &mut self.meta[addr];
        if m.rank_stamp != gen {
            m.rank_stamp = gen;
            m.rank_count = 0;
            round.note_new_address();
        }
        let rank = m.rank_count;
        m.rank_count += 1;
        round.note_count(m.rank_count);
        if new != old {
            m.version += 1;
            if m.base_stamp != round_gen {
                m.base_stamp = round_gen;
                m.base_value = old;
            }
            self.words[addr] = new;
        }
        Ok((addr, rank, old))
    }

    // ---- plan-phase accessors (parallel, read-only, fault-blind) ----
    //
    // The plan phase (DESIGN.md §12) runs concurrently over `&self` and
    // must not *observe* faults — a poisoned word faults deterministically
    // when the serial commit phase touches it, never earlier. These
    // accessors therefore bounds-check (returning `None` instead of an
    // error) and skip the poison overlay entirely.

    /// Plan-phase read of one word. `None` out of bounds; never faults.
    #[inline]
    pub(crate) fn plan_load(&self, buf: Buffer, index: usize) -> Option<u32> {
        if index < buf.len {
            Some(self.words[buf.offset + index])
        } else {
            None
        }
    }

    /// Plan-phase read of the run `[start, start + len)`. `None` if the
    /// run leaves the buffer; never faults.
    #[inline]
    pub(crate) fn plan_load_run(&self, buf: Buffer, start: usize, len: usize) -> Option<&[u32]> {
        let end = start.checked_add(len).filter(|&e| e <= buf.len)?;
        Some(&self.words[buf.offset + start..buf.offset + end])
    }

    /// Plan-phase round-stale read (see [`DeviceMemory::stale_value`]).
    /// Stale visibility is frozen for the whole round, so this predicts
    /// exactly what a commit-phase `peek_stale` of the same word will see.
    #[inline]
    pub(crate) fn plan_stale_load(&self, buf: Buffer, index: usize) -> Option<u32> {
        if index < buf.len {
            Some(self.stale_value(buf.offset + index))
        } else {
            None
        }
    }

    /// Best-effort warm of a word's arena and metadata cache lines for the
    /// commit phase. No checks, no observable effect.
    #[inline]
    pub(crate) fn prefetch(&self, buf: Buffer, index: usize) {
        if index < buf.len {
            let addr = buf.offset + index;
            std::hint::black_box(self.words[addr]);
            std::hint::black_box(self.meta[addr].version);
        }
    }

    /// Exactly the checks [`DeviceMemory::load`] performs, without the
    /// data: the commit phase runs this before serving a plan-cached word
    /// so the cached read faults (bounds, then poison) bit-identically to
    /// the live read it replaces.
    #[inline]
    pub(crate) fn validate(&self, buf: Buffer, index: usize) -> Result<(), SimError> {
        let addr = buf.addr(index)?;
        self.check_poison(addr)
    }

    /// Exactly the checks [`DeviceMemory::load_run`] performs, without the
    /// data (see [`DeviceMemory::validate`]).
    #[inline]
    pub(crate) fn validate_run(
        &self,
        buf: Buffer,
        start: usize,
        len: usize,
    ) -> Result<(), SimError> {
        start
            .checked_add(len)
            .filter(|&e| e <= buf.len)
            .ok_or(SimError::OutOfBounds {
                index: start.saturating_add(len.saturating_sub(1)),
                len: buf.len,
            })?;
        if !self.poisoned.is_empty() && len > 0 {
            self.check_poison_slow(buf.offset + start, len)?;
        }
        Ok(())
    }

    /// The value a word held at the start of the current round (the
    /// one-round-delayed view other wavefronts observe).
    #[inline]
    pub(crate) fn stale_load(&self, buf: Buffer, index: usize) -> Result<u32, SimError> {
        let addr = buf.addr(index)?;
        self.check_poison(addr)?;
        Ok(self.stale_value(addr))
    }

    /// Raw stale read by flat address — the engine's wake-check path for
    /// parked waves. The address must come from a validated `flat_addr`.
    #[inline]
    pub(crate) fn stale_value(&self, addr: usize) -> u32 {
        let m = &self.meta[addr];
        if m.base_stamp == self.round_gen {
            m.base_value
        } else {
            self.words[addr]
        }
    }

    /// Raw current-value read by flat address (wake-check path; see
    /// [`DeviceMemory::stale_value`]).
    #[inline]
    pub(crate) fn word(&self, addr: usize) -> u32 {
        self.words[addr]
    }

    /// Starts a new visibility round: everything written so far becomes
    /// observable to stale reads.
    pub(crate) fn begin_round(&mut self) {
        self.round_gen += 1;
    }

    /// Mutation version of a word: how many successful (value-changing)
    /// atomics have landed on it. `0` for never-mutated words.
    #[inline]
    pub(crate) fn version(&self, buf: Buffer, index: usize) -> Result<u64, SimError> {
        let addr = buf.addr(index)?;
        Ok(self.meta[addr].version)
    }

    /// Flat address for contention bookkeeping.
    #[inline]
    pub(crate) fn flat_addr(&self, buf: Buffer, index: usize) -> Result<usize, SimError> {
        buf.addr(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unfused RMW shape the old API exposed, for test brevity.
    fn rmw(
        mem: &mut DeviceMemory,
        buf: Buffer,
        index: usize,
        f: impl FnOnce(u32) -> u32,
    ) -> Result<u32, SimError> {
        let mut round = RoundState::new();
        mem.atomic_rmw(buf, index, &mut round, f)
            .map(|(_, _, old)| old)
    }

    #[test]
    fn alloc_zeroes_and_tracks_names() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 4);
        let b = mem.alloc("b", 2);
        assert_eq!(mem.allocated_words(), 6);
        assert_eq!(mem.read_slice(a), &[0, 0, 0, 0]);
        assert_eq!(mem.buffer("b"), b);
    }

    #[test]
    fn alloc_init_copies_data() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_init("a", &[1, 2, 3]);
        assert_eq!(mem.read_slice(a), &[1, 2, 3]);
        assert_eq!(mem.read_u32(a, 2), 3);
    }

    #[test]
    fn alloc_prefix_namespaces_identical_names() {
        let mut mem = DeviceMemory::new();
        mem.set_alloc_prefix("q0:");
        let a = mem.alloc_init("nodes", &[1, 2]);
        mem.set_alloc_prefix("q1:");
        let b = mem.alloc_init("nodes", &[3, 4, 5]);
        mem.set_alloc_prefix("");
        assert_ne!(a, b);
        assert_eq!(mem.read_slice(a), &[1, 2]);
        assert_eq!(mem.read_slice(b), &[3, 4, 5]);
        // Lookups are unprefixed: callers address the stored name.
        assert_eq!(mem.buffer("q0:nodes"), a);
        assert_eq!(mem.buffer("q1:nodes"), b);
    }

    #[test]
    fn fill_paints_whole_buffer() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 3);
        mem.fill(a, 0xFFFF_FFFF);
        assert_eq!(mem.read_slice(a), &[u32::MAX; 3]);
    }

    #[test]
    fn rmw_returns_old_value() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1);
        mem.write_u32(a, 0, 10);
        let old = rmw(&mut mem, a, 0, |v| v + 5).unwrap();
        assert_eq!(old, 10);
        assert_eq!(mem.read_u32(a, 0), 15);
    }

    #[test]
    fn device_load_reports_out_of_bounds() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1);
        assert!(matches!(
            mem.load(a, 1),
            Err(SimError::OutOfBounds { index: 1, len: 1 })
        ));
    }

    #[test]
    fn load_run_checks_bounds_once() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_init("a", &[1, 2, 3, 4]);
        assert_eq!(mem.load_run(a, 1, 3).unwrap(), &[2, 3, 4]);
        assert_eq!(mem.load_run(a, 4, 0).unwrap(), &[]);
        assert!(mem.load_run(a, 2, 3).is_err());
        assert!(mem.load_run(a, usize::MAX, 2).is_err());
    }

    #[test]
    fn stale_load_sees_round_start_value() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1);
        mem.begin_round();
        mem.store(a, 0, 7).unwrap();
        // Same round: stale view still shows the round-start value.
        assert_eq!(mem.stale_load(a, 0).unwrap(), 0);
        assert_eq!(mem.load(a, 0).unwrap(), 7);
        mem.begin_round();
        assert_eq!(mem.stale_load(a, 0).unwrap(), 7);
    }

    #[test]
    fn versions_count_value_changes_only() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1);
        // Versions carry across arena reuses, so only deltas are
        // meaningful — which is also all the queue staleness models read.
        let v0 = mem.version(a, 0).unwrap();
        rmw(&mut mem, a, 0, |v| v + 1).unwrap();
        rmw(&mut mem, a, 0, |v| v).unwrap(); // no change
        rmw(&mut mem, a, 0, |v| v + 1).unwrap();
        assert_eq!(mem.version(a, 0).unwrap(), v0 + 2);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_names_rejected() {
        let mut mem = DeviceMemory::new();
        mem.alloc("a", 1);
        mem.alloc("a", 1);
    }

    #[test]
    #[should_panic(expected = "unknown buffer")]
    fn unknown_buffer_panics() {
        let mem = DeviceMemory::new();
        mem.buffer("ghost");
    }

    #[test]
    fn arena_growth_preserves_contents_and_zeroes_new_space() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_init("a", &[7; 100]);
        // Force several capacity growths past the first block.
        let b = mem.alloc("b", 10_000);
        let c = mem.alloc("c", 300_000);
        assert_eq!(mem.read_slice(a), &[7u32; 100][..]);
        assert!(mem.read_slice(b).iter().all(|&w| w == 0));
        assert!(mem.read_slice(c).iter().all(|&w| w == 0));
        let v0 = mem.version(c, 299_999).unwrap();
        mem.write_u32(c, 299_999, 5);
        rmw(&mut mem, c, 299_999, |v| v + 1).unwrap();
        assert_eq!(mem.read_u32(c, 299_999), 6);
        assert_eq!(mem.version(c, 299_999).unwrap(), v0 + 1);
    }

    #[test]
    fn recycled_arena_is_indistinguishable_from_fresh() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1000);
        mem.fill(a, 0xDEAD_BEEF);
        rmw(&mut mem, a, 5, |v| v.wrapping_add(1)).unwrap();
        mem.begin_round();
        mem.store(a, 7, 3).unwrap();
        let gen_before = mem.round_gen;
        drop(mem); // arena returns to this thread's pool
        let mut mem2 = DeviceMemory::new();
        let b = mem2.alloc("b", 2000);
        // Words are re-zeroed; stale snapshots of the previous life are
        // invisible because the visibility round carried forward past
        // every old stamp.
        assert!(mem2.round_gen > gen_before);
        assert!(mem2.read_slice(b).iter().all(|&w| w == 0));
        assert_eq!(mem2.stale_load(b, 7).unwrap(), 0);
        assert_eq!(mem2.load(b, 7).unwrap(), 0);
        // A version delta still starts at zero changes.
        let v0 = mem2.version(b, 5).unwrap();
        rmw(&mut mem2, b, 5, |v| v).unwrap();
        assert_eq!(mem2.version(b, 5).unwrap(), v0);
    }

    #[test]
    fn grow_zeroed_is_idempotent_within_capacity() {
        let mut v: Vec<u32> = Vec::new();
        super::grow_zeroed(&mut v, 3);
        v[1] = 9;
        super::grow_zeroed(&mut v, 3);
        let cap = v.capacity();
        super::grow_zeroed(&mut v, cap);
        assert_eq!(v[1], 9);
        assert!(v.iter().enumerate().all(|(i, &w)| w == 0 || i == 1));
    }

    /// Serializes the tests that toggle or observe the process-global
    /// zeroing mode (the harness runs tests concurrently).
    static EAGER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn alloc_filled_paints_in_one_pass() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_filled("a", 4, 0xABCD);
        assert_eq!(mem.read_slice(a), &[0xABCD; 4]);
        let z = mem.alloc_filled("z", 0, 9);
        assert!(z.is_empty());
    }

    #[test]
    fn demand_zeroing_covers_exactly_the_dirty_overlap() {
        let _guard = EAGER_LOCK.lock().unwrap();
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1000);
        mem.fill(a, 7);
        drop(mem);
        let mut mem2 = DeviceMemory::new();
        assert!(mem2.was_recycled());
        // Fully inside the dirty prefix: the whole range is memset.
        let b = mem2.alloc("b", 400);
        assert!(mem2.read_slice(b).iter().all(|&w| w == 0));
        assert_eq!(mem2.demand_zeroed_words(), 400);
        // Partially overlapping: only the overlap [400, 700) pays.
        let c = mem2.alloc("c", 300);
        assert!(mem2.read_slice(c).iter().all(|&w| w == 0));
        assert_eq!(mem2.demand_zeroed_words(), 700);
    }

    #[test]
    fn realloc_leaves_the_dirty_tail_behind() {
        let _guard = EAGER_LOCK.lock().unwrap();
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1000);
        mem.fill(a, 9);
        drop(mem);
        let mut mem2 = DeviceMemory::new();
        let b = mem2.alloc("b", 100); // within the dirty prefix: memset
                                      // Growing past capacity reallocates; only the live prefix is
                                      // copied, so the rest of the old dirty prefix never needs zeroing.
        let big = mem2.alloc("big", 1 << 20);
        assert!(mem2.read_slice(b).iter().all(|&w| w == 0));
        assert!(mem2.read_slice(big).iter().all(|&w| w == 0));
        assert_eq!(mem2.demand_zeroed_words(), 100);
    }

    #[test]
    fn eager_mode_restores_upfront_zeroing() {
        let _guard = EAGER_LOCK.lock().unwrap();
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 512);
        mem.fill(a, 9);
        drop(mem);
        set_eager_zeroing(true);
        let mut mem2 = DeviceMemory::new();
        set_eager_zeroing(false);
        let b = mem2.alloc("b", 512);
        assert!(mem2.read_slice(b).iter().all(|&w| w == 0));
        assert_eq!(mem2.demand_zeroed_words(), 0, "prefix was pre-zeroed");
    }

    #[test]
    fn buffers_do_not_overlap() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 2);
        let b = mem.alloc("b", 2);
        mem.write_u32(a, 1, 7);
        mem.write_u32(b, 0, 9);
        assert_eq!(mem.read_u32(a, 1), 7);
        assert_eq!(mem.read_u32(b, 0), 9);
    }

    #[test]
    fn poisoned_word_faults_device_paths_but_not_host_reads() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc_init("a", &[1, 2, 3, 4]);
        let addr = mem.flat_addr(a, 2).unwrap();
        mem.arm_poison(addr, 5);
        for r in [
            mem.load(a, 2),
            mem.stale_load(a, 2),
            rmw(&mut mem, a, 2, |v| v + 1),
        ] {
            assert!(
                matches!(
                    r,
                    Err(SimError::KernelAbort {
                        reason: AbortReason::InjectedFault {
                            kind: FaultKind::MemPoison,
                            ..
                        },
                        ..
                    })
                ),
                "{r:?}"
            );
        }
        assert!(mem.store(a, 2, 9).is_err());
        assert!(mem.load_run(a, 1, 3).is_err());
        // Neighbours and host reads are unaffected.
        assert_eq!(mem.load(a, 1).unwrap(), 2);
        assert!(mem.load_run(a, 0, 2).is_ok());
        assert_eq!(mem.read_u32(a, 2), 3);
        assert_eq!(mem.read_slice(a), &[1, 2, 3, 4]);
        mem.clear_poisons();
        assert_eq!(mem.load(a, 2).unwrap(), 3);
    }

    #[test]
    fn recycled_arena_does_not_carry_poison() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 8);
        let addr = mem.flat_addr(a, 3).unwrap();
        mem.arm_poison(addr, 0);
        drop(mem);
        let mut mem2 = DeviceMemory::new();
        let b = mem2.alloc("b", 8);
        assert!(mem2.load(b, 3).is_ok());
    }

    #[test]
    fn zero_length_buffer_is_legal_but_unreadable() {
        let mut mem = DeviceMemory::new();
        let z = mem.alloc("z", 0);
        assert!(z.is_empty());
        assert!(mem.load(z, 0).is_err());
    }
}
