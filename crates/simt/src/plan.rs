//! Read-only context for the parallel plan phase (DESIGN.md §12).
//!
//! With `Launch::engine_workers > 1` the engine splits every scheduling
//! round in two. First a **plan phase** fans the active, unparked
//! wavefronts out across host worker threads; each wavefront's kernel
//! gets a [`PlanCtx`] — a shared, read-only view of device memory — and
//! may use it to decode its lane state, copy out the CSR edge chunks its
//! next work cycle will read, predict queue-slot pickups from round-stale
//! values (stale visibility is frozen for the whole round, so the
//! prediction is exact), and prefetch the words the commit phase will
//! touch. Then the existing **commit phase** runs serially in canonical
//! rotation order, consuming the caches through validated accessors
//! ([`crate::WaveCtx::peek_run_cached`]) that charge and fault exactly
//! like the live reads they replace.
//!
//! Nothing a kernel does with a [`PlanCtx`] is observable in the
//! simulation: no metrics, no costs, no faults, no writes. That is the
//! whole determinism argument — the plan phase is a pure cache warmer,
//! and the commit phase's operation sequence is byte-identical to the
//! serial engine's at any worker count.

use crate::ctx::WaveInfo;
use crate::memory::{Buffer, DeviceMemory};

/// Read-only device view handed to [`crate::WaveKernel::plan_cycle`].
///
/// All reads are bounds-checked (`None`/`false` out of bounds) but
/// deliberately *fault-blind*: a poisoned word must fault in commit
/// order, so plan reads skip the poison overlay entirely.
pub struct PlanCtx<'a> {
    memory: &'a DeviceMemory,
    /// Identity of the planning wavefront.
    pub info: WaveInfo,
}

impl<'a> PlanCtx<'a> {
    pub(crate) fn new(memory: &'a DeviceMemory, info: WaveInfo) -> Self {
        PlanCtx { memory, info }
    }

    /// Current value of one word. Only sound as a *cache source* for
    /// buffers that are never written during the run (CSR topology); for
    /// mutable words it is a hint only.
    pub fn peek(&self, buf: Buffer, index: usize) -> Option<u32> {
        self.memory.plan_load(buf, index)
    }

    /// Copies the run `[start, start + len)` into `out` (cleared first).
    /// Returns false — leaving `out` empty — if the run leaves the buffer.
    pub fn peek_run(&self, buf: Buffer, start: usize, len: usize, out: &mut Vec<u32>) -> bool {
        out.clear();
        match self.memory.plan_load_run(buf, start, len) {
            Some(words) => {
                out.extend_from_slice(words);
                true
            }
            None => false,
        }
    }

    /// Round-stale value of one word — exactly what a commit-phase stale
    /// read of the same word will observe this round, making queue-slot
    /// arrival predictions exact.
    pub fn peek_stale(&self, buf: Buffer, index: usize) -> Option<u32> {
        self.memory.plan_stale_load(buf, index)
    }

    /// Warms the cache lines (word + metadata) the commit phase will
    /// touch at `index`. No observable effect.
    pub fn prefetch(&self, buf: Buffer, index: usize) {
        self.memory.prefetch(buf, index);
    }
}
