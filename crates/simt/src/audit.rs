//! AuditMode: machine-checked per-operation atomic budgets.
//!
//! The paper's headline claims are *structural*: the RF/AN queue issues
//! exactly one global fetch-add per wavefront queue operation (arbitrary-n)
//! and never a CAS (retry-free), while the traditional designs pay CAS
//! retries. Benchmarks demonstrate the consequences; AuditMode checks the
//! structure itself. A queue operation opens a scope declaring its atomic
//! budget ([`OpSpec`], via `WaveCtx::audit_begin`), the context counts every
//! global atomic issued while the scope is open, and closing the scope
//! (`WaveCtx::audit_end`) validates the counts — a violation fails the whole
//! run with [`SimError::AuditViolation`].
//!
//! Auditing is pure bookkeeping: it never touches metrics, issue slots, or
//! latency, so an audited run is cycle-identical to an unaudited one (the
//! engine-regression goldens pin this).

use crate::error::SimError;
use crate::metrics::Metrics;

/// Declared atomic budget of one wavefront queue operation.
///
/// `None` leaves a dimension unconstrained (BASE's per-lane CAS count
/// depends on occupancy and staleness, so its spec does not pin it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSpec {
    /// Variant label for diagnostics (e.g. `"RF/AN"`).
    pub variant: &'static str,
    /// Operation label for diagnostics (`"acquire"` / `"enqueue"`).
    pub op: &'static str,
    /// Exact number of non-failing global atomics (fetch-add/sub/
    /// exchange/min) the operation may issue.
    pub afa: Option<u64>,
    /// Exact number of real CAS operations the operation may issue.
    pub cas: Option<u64>,
    /// Whether staleness-modeled CAS retry storms are legal in-scope.
    pub storms_allowed: bool,
    /// Whether queue-empty retries are legal in-scope.
    pub empty_retries_allowed: bool,
}

impl OpSpec {
    /// The strictest spec: zero atomics of any kind, no retries. Relax
    /// dimensions with the builder methods.
    pub fn new(variant: &'static str, op: &'static str) -> Self {
        OpSpec {
            variant,
            op,
            afa: Some(0),
            cas: Some(0),
            storms_allowed: false,
            empty_retries_allowed: false,
        }
    }

    /// Permits exactly `n` fetch-add-family atomics.
    pub fn afa_exact(mut self, n: u64) -> Self {
        self.afa = Some(n);
        self
    }

    /// Permits exactly `n` CAS operations.
    pub fn cas_exact(mut self, n: u64) -> Self {
        self.cas = Some(n);
        self
    }

    /// Leaves the CAS count unconstrained (BASE's per-lane loops).
    pub fn any_cas(mut self) -> Self {
        self.cas = None;
        self
    }

    /// Permits staleness-modeled CAS retry storms.
    pub fn allow_storms(mut self) -> Self {
        self.storms_allowed = true;
        self
    }

    /// Permits queue-empty retries.
    pub fn allow_empty_retries(mut self) -> Self {
        self.empty_retries_allowed = true;
        self
    }
}

/// Live counters for one open audit scope.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AuditScope {
    pub(crate) spec: OpSpec,
    pub(crate) afa: u64,
    pub(crate) cas: u64,
    pub(crate) storms: u64,
    pub(crate) empty_retries: u64,
}

impl AuditScope {
    pub(crate) fn new(spec: OpSpec) -> Self {
        AuditScope {
            spec,
            afa: 0,
            cas: 0,
            storms: 0,
            empty_retries: 0,
        }
    }

    /// Checks the observed counts against the spec.
    pub(crate) fn validate(&self) -> Result<(), SimError> {
        let fail = |what: &str, got: u64, want: &str| {
            Err(SimError::AuditViolation(format!(
                "{} {}: issued {got} {what}, spec allows {want}",
                self.spec.variant, self.spec.op
            )))
        };
        if let Some(want) = self.spec.afa {
            if self.afa != want {
                return fail("fetch-add atomics", self.afa, &format!("exactly {want}"));
            }
        }
        if let Some(want) = self.spec.cas {
            if self.cas != want {
                return fail("CAS operations", self.cas, &format!("exactly {want}"));
            }
        }
        if !self.spec.storms_allowed && self.storms != 0 {
            return fail("CAS retry storms", self.storms, "none");
        }
        if !self.spec.empty_retries_allowed && self.empty_retries != 0 {
            return fail("queue-empty retries", self.empty_retries, "none");
        }
        Ok(())
    }
}

/// Run-level retry-free claim: a retry-free design's run must finish with
/// zero CAS attempts, zero CAS failures, and zero queue-empty retries.
/// Returns a diagnostic on the first violated counter.
pub fn check_retry_free(metrics: &Metrics) -> Result<(), String> {
    if metrics.cas_attempts != 0 {
        return Err(format!(
            "retry-free run issued {} CAS attempts",
            metrics.cas_attempts
        ));
    }
    if metrics.cas_failures != 0 {
        return Err(format!(
            "retry-free run recorded {} CAS failures",
            metrics.cas_failures
        ));
    }
    if metrics.queue_empty_retries != 0 {
        return Err(format!(
            "retry-free run recorded {} queue-empty retries",
            metrics.queue_empty_retries
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_spec_rejects_every_atomic() {
        let spec = OpSpec::new("RF/AN", "enqueue").afa_exact(1);
        let mut scope = AuditScope::new(spec);
        scope.afa = 1;
        assert!(scope.validate().is_ok());
        scope.cas = 1;
        let err = scope.validate().unwrap_err();
        assert!(err.to_string().contains("CAS operations"), "{err}");
    }

    #[test]
    fn afa_count_must_be_exact_both_ways() {
        let mut scope = AuditScope::new(OpSpec::new("RF/AN", "acquire").afa_exact(1));
        assert!(scope.validate().is_err(), "zero AFAs when one is required");
        scope.afa = 1;
        assert!(scope.validate().is_ok());
        scope.afa = 2;
        assert!(
            scope.validate().is_err(),
            "one AFA per wavefront op, not two"
        );
    }

    #[test]
    fn storms_and_empty_retries_gate_independently() {
        let mut scope = AuditScope::new(
            OpSpec::new("AN", "acquire")
                .cas_exact(1)
                .allow_storms()
                .allow_empty_retries(),
        );
        scope.cas = 1;
        scope.storms = 3;
        scope.empty_retries = 7;
        assert!(scope.validate().is_ok());
        let mut strict = AuditScope::new(OpSpec::new("RF/AN", "acquire"));
        strict.empty_retries = 1;
        assert!(strict.validate().is_err());
    }

    #[test]
    fn any_cas_leaves_count_unconstrained() {
        let mut scope = AuditScope::new(OpSpec::new("BASE", "enqueue").any_cas());
        scope.cas = 17;
        assert!(scope.validate().is_ok());
    }

    #[test]
    fn check_retry_free_flags_each_counter() {
        let mut m = Metrics::default();
        assert!(check_retry_free(&m).is_ok());
        m.cas_attempts = 1;
        assert!(check_retry_free(&m).unwrap_err().contains("CAS attempts"));
        m.cas_attempts = 0;
        m.queue_empty_retries = 2;
        assert!(check_retry_free(&m)
            .unwrap_err()
            .contains("queue-empty retries"));
    }
}
