//! The wavefront execution context — what a kernel sees during one work
//! cycle.
//!
//! A [`WaveKernel`] is a per-wavefront state machine. Each scheduling round
//! the engine calls [`WaveKernel::work_cycle`] once per active wavefront
//! with a fresh [`WaveCtx`]; the kernel performs its memory traffic and
//! atomics through the context, which:
//!
//! * executes them against device memory (sequentially, hence atomically),
//! * charges *issue* cycles (never hideable) and *latency* cycles (hidden
//!   by other resident wavefronts — see `engine`), and
//! * maintains the run [`Metrics`].
//!
//! Lane-private state lives inside the kernel struct itself; the simulator
//! only needs to see traffic that leaves the wavefront.
//!
//! # Wave parking
//!
//! Persistent-thread kernels spend their long tail re-executing an
//! *identical* polling cycle every round until a watched word changes. A
//! kernel that recognizes such a cycle can call
//! [`WaveCtx::park_until_changed`] (stale-visible watch) and/or
//! [`WaveCtx::park_until_changed_now`] (current-value watch) to declare:
//! *this work cycle read nothing but the watched words and wave-private
//! state, and its observations fully determine its behaviour*. The engine
//! then skips re-running the kernel on subsequent rounds, re-charging the
//! captured issue/latency/bandwidth/metrics verbatim, and wakes the wave —
//! at its exact rotation position — on the first round where any watched
//! word's visible value differs from the parked expectation. Because an
//! identical observation implies an identical cycle, the fast path is
//! cycle-exact, and a spurious wake merely re-executes one polling cycle
//! (which re-parks with the same charges). The engine refuses to park a
//! cycle that wrote memory or issued atomics, so a buggy caller degrades
//! to exact slow-path execution rather than wrong accounting.

use crate::audit::{AuditScope, OpSpec};
use crate::config::CostModel;
use crate::error::{AbortReason, SimError};
use crate::memory::{Buffer, DeviceMemory};
use crate::metrics::Metrics;
use crate::plan::PlanCtx;
use crate::round::{RoundState, LINE_WORDS};

/// What a wavefront reports at the end of a work cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaveStatus {
    /// The wavefront still has work (or is polling for it).
    Active,
    /// The wavefront exited its kernel.
    Done,
}

/// Which cluster a wavefront runs on. CHAI's heterogeneous BFS shares its
/// queue between GPU wavefronts and CPU threads; cross-cluster traffic
/// pays the SVM penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaveClass {
    /// An ordinary GPU wavefront.
    Gpu,
    /// A collaborating CPU thread-group (CHAI baseline): memory and atomic
    /// costs are multiplied by [`CostModel::svm_penalty`].
    CpuCollab,
}

/// Identity of one wavefront within a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveInfo {
    /// Global wavefront index within the launch.
    pub wave_id: usize,
    /// Workgroup this wavefront belongs to.
    pub workgroup: usize,
    /// Compute unit the workgroup is resident on.
    pub cu: usize,
    /// Lanes per wavefront (64 on GCN; smaller in test configs).
    pub wave_size: usize,
    /// Total wavefronts in the launch (used to normalize contention).
    pub total_waves: usize,
    /// GPU or collaborating-CPU.
    pub class: WaveClass,
}

/// A kernel instantiated once per wavefront.
///
/// `Send` because the engine's plan phase (DESIGN.md §12) moves mutable
/// access to each kernel onto a worker thread for the duration of one
/// read-only planning pass; kernels are plain per-wavefront state, so the
/// bound is free in practice.
pub trait WaveKernel: Send {
    /// Executes one work cycle (one pass through the persistent-thread
    /// loop of the paper's Algorithm 1). Returns whether the wavefront
    /// remains active.
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus;

    /// Parallel plan phase of one round (only called when the launch asks
    /// for more than one engine worker). Runs concurrently with other
    /// waves' `plan_cycle`s against a shared read-only memory view,
    /// *before* any wave's `work_cycle` of the same round. A kernel may
    /// cache immutable-buffer reads for [`WaveCtx::peek_run_cached`] /
    /// [`WaveCtx::peek_cached`] and issue prefetches; it must not make
    /// its `work_cycle` behaviour depend on anything a concurrent wave
    /// could change. The default does nothing (planning is purely an
    /// optimization — correctness never requires it).
    fn plan_cycle(&mut self, ctx: &PlanCtx<'_>) {
        let _ = ctx;
    }
}

/// One word a parked wave watches, with the value it observed when it
/// parked. The wave wakes the round any watch's visible value differs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watch {
    /// Flat device address (validated at registration).
    pub(crate) addr: usize,
    /// Value observed at park time under this watch's visibility.
    pub(crate) expected: u32,
    /// True for round-stale visibility, false for current-value.
    pub(crate) stale: bool,
}

/// Execution context for one work cycle of one wavefront.
pub struct WaveCtx<'a> {
    pub(crate) memory: &'a mut DeviceMemory,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) round: &'a mut RoundState,
    pub(crate) cost: &'a CostModel,
    pub(crate) info: WaveInfo,
    /// Issue cycles accumulated this work cycle (summed).
    pub(crate) issue: u64,
    /// Latency watermark this work cycle (independent ops pipeline, so we
    /// keep the max, including serialization delay).
    pub(crate) latency: u64,
    /// First device fault, if any (kernel keeps running with zeros, the
    /// engine fails the run afterwards — mirrors GPU fault semantics but
    /// deterministically).
    pub(crate) fault: Option<SimError>,
    /// Kernel-requested abort (queue-full exception), already classified.
    pub(crate) abort: Option<AbortReason>,
    /// Global atomics issued this work cycle (feeds the per-CU atomic-unit
    /// throughput pool).
    pub(crate) atomic_ops: u64,
    /// Words this cycle asked to park on (engine-owned scratch; a
    /// non-empty list at cycle end requests parking).
    pub(crate) watches: &'a mut Vec<Watch>,
    /// True once the cycle stored to device memory; such a cycle is never
    /// parkable (its re-execution would not be idempotent).
    pub(crate) wrote: bool,
    /// Whether AuditMode is on for this run (set by the engine from
    /// `Launch::audit`); when off, `audit_begin` is a no-op.
    pub(crate) audit: bool,
    /// The open audit scope, if a queue operation is being audited.
    pub(crate) audit_scope: Option<AuditScope>,
}

impl<'a> WaveCtx<'a> {
    pub(crate) fn new(
        memory: &'a mut DeviceMemory,
        metrics: &'a mut Metrics,
        round: &'a mut RoundState,
        cost: &'a CostModel,
        info: WaveInfo,
        watches: &'a mut Vec<Watch>,
    ) -> Self {
        WaveCtx {
            memory,
            metrics,
            round,
            cost,
            info,
            issue: 0,
            latency: 0,
            fault: None,
            abort: None,
            atomic_ops: 0,
            watches,
            wrote: false,
            audit: false,
            audit_scope: None,
        }
    }

    #[inline]
    fn touch_line(&mut self, buf: Buffer, index: usize) {
        if let Ok(addr) = self.memory.flat_addr(buf, index) {
            self.round.touch_line(addr / LINE_WORDS);
        }
    }

    /// Identity of the executing wavefront.
    pub fn info(&self) -> WaveInfo {
        self.info
    }

    /// Lanes per wavefront.
    pub fn wave_size(&self) -> usize {
        self.info.wave_size
    }

    /// Looks up a named device buffer (kernel-argument binding).
    pub fn buffer(&self, name: &str) -> Buffer {
        self.memory.buffer(name)
    }

    /// Multiplier for memory/atomic costs on this wavefront's cluster.
    #[inline]
    fn penalty(&self) -> u64 {
        match self.info.class {
            WaveClass::Gpu => 1,
            WaveClass::CpuCollab => self.cost.svm_penalty,
        }
    }

    #[inline]
    fn record_fault(&mut self, e: SimError) {
        if self.fault.is_none() {
            self.fault = Some(e);
        }
    }

    /// Charges `n` ALU instructions (wave-uniform bookkeeping work).
    pub fn charge_alu(&mut self, n: u64) {
        self.issue += n * self.cost.alu_issue;
    }

    /// Wave-coalesced global load: one memory transaction for the whole
    /// wavefront (e.g. a broadcast read of the queue `Front`).
    pub fn global_read(&mut self, buf: Buffer, index: usize) -> u32 {
        let p = self.penalty();
        self.issue += self.cost.mem_issue * p;
        self.latency = self.latency.max(self.cost.mem_latency * p);
        self.metrics.global_mem_ops += 1;
        self.touch_line(buf, index);
        match self.memory.load(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Per-lane scattered global load (e.g. each lane fetching a different
    /// slot or edge). Lock-step lanes share one *instruction* — the issue
    /// cost is an address-math slot — while the per-lane transaction lands
    /// on the memory system as a distinct cache line plus latency.
    pub fn global_read_lane(&mut self, buf: Buffer, index: usize) -> u32 {
        self.issue += self.cost.alu_issue * self.penalty();
        self.latency = self.latency.max(self.cost.mem_latency * self.penalty());
        self.metrics.global_mem_ops += 1;
        self.touch_line(buf, index);
        match self.memory.load(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Wave-coalesced global load observing the *round-start* value: data
    /// another wavefront published this round is not yet visible (the
    /// one-work-cycle communication latency between wavefronts). Use for
    /// dequeue-side polls of producer-published state.
    pub fn global_read_stale(&mut self, buf: Buffer, index: usize) -> u32 {
        let p = self.penalty();
        self.issue += self.cost.mem_issue * p;
        self.latency = self.latency.max(self.cost.mem_latency * p);
        self.metrics.global_mem_ops += 1;
        self.touch_line(buf, index);
        match self.memory.stale_load(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Per-lane variant of [`WaveCtx::global_read_stale`] (same lock-step
    /// cost structure as [`WaveCtx::global_read_lane`]).
    pub fn global_read_lane_stale(&mut self, buf: Buffer, index: usize) -> u32 {
        self.issue += self.cost.alu_issue * self.penalty();
        self.latency = self.latency.max(self.cost.mem_latency * self.penalty());
        self.metrics.global_mem_ops += 1;
        self.touch_line(buf, index);
        match self.memory.stale_load(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Wave-coalesced global store.
    pub fn global_write(&mut self, buf: Buffer, index: usize, value: u32) {
        let p = self.penalty();
        self.issue += self.cost.mem_issue * p;
        self.latency = self.latency.max(self.cost.mem_latency * p);
        self.metrics.global_mem_ops += 1;
        self.touch_line(buf, index);
        self.wrote = true;
        if let Err(e) = self.memory.store(buf, index, value) {
            self.record_fault(e);
        }
    }

    /// Per-lane scattered global store (lock-step cost structure; see
    /// [`WaveCtx::global_read_lane`]).
    pub fn global_write_lane(&mut self, buf: Buffer, index: usize, value: u32) {
        self.issue += self.cost.alu_issue * self.penalty();
        self.latency = self.latency.max(self.cost.mem_latency * self.penalty());
        self.metrics.global_mem_ops += 1;
        self.touch_line(buf, index);
        self.wrote = true;
        if let Err(e) = self.memory.store(buf, index, value) {
            self.record_fault(e);
        }
    }

    /// Counts one fetch-add-family atomic against the open audit scope.
    /// Placed in the public non-CAS entry points (not `global_atomic`) so
    /// a CAS — which routes through `global_atomic` too — is not
    /// double-counted as an AFA.
    #[inline]
    fn audit_count_afa(&mut self) {
        if let Some(scope) = self.audit_scope.as_mut() {
            scope.afa += 1;
        }
    }

    /// Global atomic fetch-add. Never fails; the k-th same-address atomic
    /// in a round pays `k * atomic_serialize` extra (hideable) latency.
    pub fn atomic_add(&mut self, buf: Buffer, index: usize, delta: u32) -> u32 {
        self.audit_count_afa();
        self.global_atomic(buf, index, |v| v.wrapping_add(delta))
    }

    /// Global atomic fetch-sub (wrapping).
    pub fn atomic_sub(&mut self, buf: Buffer, index: usize, delta: u32) -> u32 {
        self.audit_count_afa();
        self.global_atomic(buf, index, |v| v.wrapping_sub(delta))
    }

    /// Global atomic exchange.
    pub fn atomic_exchange(&mut self, buf: Buffer, index: usize, value: u32) -> u32 {
        self.audit_count_afa();
        self.global_atomic(buf, index, |_| value)
    }

    /// Global atomic min (claim operation of min-directed workloads:
    /// BFS levels, SSSP distances, component labels).
    pub fn atomic_min(&mut self, buf: Buffer, index: usize, value: u32) -> u32 {
        self.audit_count_afa();
        self.global_atomic(buf, index, |v| v.min(value))
    }

    /// Global atomic max (claim operation of max-directed workloads,
    /// e.g. best-contribution PageRank-delta). Same AFA class and cost
    /// model as [`WaveCtx::atomic_min`].
    pub fn atomic_max(&mut self, buf: Buffer, index: usize, value: u32) -> u32 {
        self.audit_count_afa();
        self.global_atomic(buf, index, |v| v.max(value))
    }

    fn global_atomic(&mut self, buf: Buffer, index: usize, f: impl FnOnce(u32) -> u32) -> u32 {
        let p = self.penalty();
        self.metrics.global_atomics += 1;
        // Instruction replay + atomic-ALU time are charged through the
        // per-CU atomic-unit pool (sub-cycle per op; see CostModel).
        self.atomic_ops += p; // SVM atomics occupy the unit longer
                              // Fused rank + version + snapshot + store: one bounds check and
                              // one metadata fetch for the whole atomic.
        let (addr, rank, old) = match self.memory.atomic_rmw(buf, index, self.round, f) {
            Ok(t) => t,
            Err(e) => {
                self.record_fault(e);
                return 0;
            }
        };
        self.round.touch_line(addr / LINE_WORDS);
        // The memory partition pipelines same-address atomics up to its
        // queue depth; beyond that the requester perceives no additional
        // wait (throughput costs surface as the issuing waves' own issue
        // slots instead).
        let pipelined_rank = u64::from(rank).min(self.cost.atomic_pipe_depth);
        let wait = (self.cost.atomic_latency + pipelined_rank * self.cost.atomic_serialize) * p;
        self.latency = self.latency.max(wait);
        old
    }

    /// Global compare-and-swap. Succeeds iff the word still holds
    /// `expected`; returns the value observed (callers compare against
    /// `expected` to detect failure, as in OpenCL's `atomic_cmpxchg`).
    ///
    /// Failures are counted — they are the retry overhead the paper's
    /// design eliminates — and like every atomic, a CAS occupies an issue
    /// slot whether it succeeds or not: *that* cost is never hidden.
    pub fn atomic_cas(&mut self, buf: Buffer, index: usize, expected: u32, new: u32) -> u32 {
        if let Some(scope) = self.audit_scope.as_mut() {
            scope.cas += 1;
        }
        self.metrics.cas_attempts += 1;
        let observed = self.global_atomic(buf, index, |v| if v == expected { new } else { v });
        if observed != expected {
            self.metrics.cas_failures += 1;
        }
        observed
    }

    /// Charges one coalesced memory transaction per touched cache line for
    /// a contiguous run of `len` words starting at `start`, without
    /// reading values — pair with [`WaveCtx::peek`]/[`WaveCtx::peek_stale`]
    /// to observe the data. This is how lock-step lanes accessing
    /// consecutive addresses (monitored queue slots, CSR edge chunks)
    /// hit memory: one transaction per line, not one per lane.
    pub fn charge_coalesced_access(&mut self, buf: Buffer, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first_line = start / LINE_WORDS;
        let last_line = (start + len - 1) / LINE_WORDS;
        let txns = (last_line - first_line + 1) as u64;
        let p = self.penalty();
        // One lock-step instruction plus an address replay per extra line;
        // the data movement itself is bandwidth + latency.
        self.issue += (self.cost.alu_issue * txns) * p;
        self.latency = self.latency.max(self.cost.mem_latency * p);
        self.metrics.global_mem_ops += txns;
        for line in first_line..=last_line {
            let idx = line * LINE_WORDS;
            // Touch via a representative word (clamped into the run so the
            // address is in bounds).
            let idx = idx.max(start).min(start + len - 1);
            self.touch_line(buf, idx);
        }
    }

    /// Charges `txns` cache-resident read transactions: issue slots and a
    /// short L2 latency, but no DRAM bandwidth. This is the cost of
    /// polling lines that nobody has written since the last poll — the
    /// RF/AN sentinel check, which the paper stresses is "a non-atomic
    /// global memory read" and cheap precisely because the line stays
    /// valid in cache until a producer writes it.
    pub fn charge_cached_access(&mut self, txns: u64) {
        if txns == 0 {
            return;
        }
        let p = self.penalty();
        self.issue += self.cost.mem_issue * txns * p;
        self.latency = self.latency.max(self.cost.mem_latency / 4 * p);
        self.metrics.global_mem_ops += txns;
    }

    /// Zero-cost data observation; only valid alongside a
    /// [`WaveCtx::charge_coalesced_access`] covering the same words.
    pub fn peek(&mut self, buf: Buffer, index: usize) -> u32 {
        match self.memory.load(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Zero-cost observation of `len` consecutive words starting at
    /// `start`, appended into `out` (cleared first): the prevalidated
    /// companion of [`WaveCtx::charge_coalesced_access`] for contiguous
    /// blocks like CSR edge chunks — one bounds check per block instead of
    /// one per word. Faults (leaving `out` empty) if the run leaves the
    /// buffer.
    pub fn peek_run(&mut self, buf: Buffer, start: usize, len: usize, out: &mut Vec<u32>) {
        out.clear();
        match self.memory.load_run(buf, start, len) {
            Ok(words) => out.extend_from_slice(words),
            Err(e) => self.record_fault(e),
        }
    }

    /// Commit-phase twin of [`WaveCtx::peek_run`] for a block the plan
    /// phase already copied out of an *immutable* buffer: performs
    /// exactly the bounds + poison validation of the live read (so fault
    /// injection is observed bit-identically, in commit order), then
    /// serves the words from `cached` without touching the arena. The
    /// caller guarantees `cached` holds the words `[start, start + len)`
    /// of `buf` — only sound for buffers never written during the run
    /// (debug builds verify the copy against the arena).
    pub fn peek_run_cached(
        &mut self,
        buf: Buffer,
        start: usize,
        len: usize,
        cached: &[u32],
        out: &mut Vec<u32>,
    ) {
        out.clear();
        debug_assert_eq!(cached.len(), len);
        match self.memory.validate_run(buf, start, len) {
            Ok(()) => {
                debug_assert_eq!(
                    Some(cached),
                    self.memory.plan_load_run(buf, start, len),
                    "plan cache diverged from device memory (mutable buffer cached?)"
                );
                out.extend_from_slice(cached);
            }
            Err(e) => self.record_fault(e),
        }
    }

    /// Commit-phase twin of [`WaveCtx::peek`] for a single plan-cached
    /// word of an immutable buffer (see [`WaveCtx::peek_run_cached`]).
    pub fn peek_cached(&mut self, buf: Buffer, index: usize, cached: u32) -> u32 {
        match self.memory.validate(buf, index) {
            Ok(()) => {
                debug_assert_eq!(
                    Some(cached),
                    self.memory.plan_load(buf, index),
                    "plan cache diverged from device memory (mutable buffer cached?)"
                );
                cached
            }
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Round-stale zero-cost observation (see [`WaveCtx::peek`] and
    /// [`WaveCtx::global_read_stale`]).
    pub fn peek_stale(&mut self, buf: Buffer, index: usize) -> u32 {
        match self.memory.stale_load(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Zero-cost store companion of [`WaveCtx::charge_coalesced_access`].
    pub fn poke(&mut self, buf: Buffer, index: usize, value: u32) {
        self.wrote = true;
        if let Err(e) = self.memory.store(buf, index, value) {
            self.record_fault(e);
        }
    }

    /// Registers a *stale-visibility* park watch on one word (see the
    /// module docs on wave parking). Calling this declares the whole work
    /// cycle a pure poll: its observable inputs are exactly the registered
    /// watch words, so the engine may replay its charges without
    /// re-executing it until a watched word's stale-visible value differs
    /// from the value observed now. Out-of-bounds watches fault.
    pub fn park_until_changed(&mut self, buf: Buffer, index: usize) {
        match self.memory.flat_addr(buf, index) {
            Ok(addr) => {
                let expected = self.memory.stale_value(addr);
                self.watches.push(Watch {
                    addr,
                    expected,
                    stale: true,
                });
            }
            Err(e) => self.record_fault(e),
        }
    }

    /// Current-value variant of [`WaveCtx::park_until_changed`], for
    /// watches on words the cycle reads with non-stale loads (e.g. a
    /// pending-work counter): the wave wakes the round the word's current
    /// value, sampled at this wave's rotation position, differs.
    pub fn park_until_changed_now(&mut self, buf: Buffer, index: usize) {
        match self.memory.flat_addr(buf, index) {
            Ok(addr) => {
                let expected = self.memory.word(addr);
                self.watches.push(Watch {
                    addr,
                    expected,
                    stale: false,
                });
            }
            Err(e) => self.record_fault(e),
        }
    }

    /// Mutation version of a word — how many value-changing atomics have
    /// landed on it. Free of charge: it piggybacks on a read the caller
    /// performs anyway and exists to support the CAS staleness model
    /// (stage a version with your read; compare at CAS time).
    pub fn atomic_version(&mut self, buf: Buffer, index: usize) -> u64 {
        match self.memory.version(buf, index) {
            Ok(v) => v,
            Err(e) => {
                self.record_fault(e);
                0
            }
        }
    }

    /// Charges a CAS retry storm: a reservation whose read-to-CAS window
    /// was invalidated `delta` times burns `min(delta, cas_storm_cap)`
    /// failed attempts before winning. Each failure is a dependent
    /// re-read + re-CAS chain — unhideable issue, the cost the paper
    /// eliminates. The per-failure charge scales with the contention
    /// *density* (`delta / total wavefronts`): a retry only stretches when
    /// competitors keep landing inside the retry window, which requires a
    /// large fraction of the device to be hammering the same word.
    /// Returns the number of failures charged.
    pub fn charge_cas_retry_storm(&mut self, delta: u64) -> u64 {
        let storms = delta.min(self.cost.cas_storm_cap);
        if let Some(scope) = self.audit_scope.as_mut() {
            scope.storms += storms;
        }
        if storms > 0 {
            self.metrics.cas_attempts += storms;
            self.metrics.cas_failures += storms;
            self.metrics.global_atomics += storms;
            let waves = self.info.total_waves.max(1) as u64;
            let density_num = delta.min(waves);
            self.issue += storms * self.cost.cas_retry_issue * self.penalty() * density_num / waves;
        }
        storms
    }

    /// Charges `n` workgroup-local (LDS) atomics. The *values* of local
    /// aggregation live in the kernel's own wave-private state (a
    /// workgroup is one wavefront here); only the cost and count are
    /// simulated. LDS atomics serialize within the LDS banks — cheap, and
    /// free of global-memory contention.
    pub fn lds_atomics(&mut self, n: u64) {
        self.metrics.lds_atomics += n;
        self.issue += n * self.cost.lds_atomic;
    }

    /// Attributes the last `n` global atomics to the task scheduler
    /// (queue reservations and retries). Feeds the Figure 5 ratio.
    pub fn count_scheduler_atomics(&mut self, n: u64) {
        self.metrics.scheduler_atomics += n;
    }

    /// Records `n` queue-operation retries caused by exceptions (the
    /// traditional queue's dequeue-on-empty). Feeds Figure 1 / Figure 5.
    pub fn count_queue_empty_retries(&mut self, n: u64) {
        if let Some(scope) = self.audit_scope.as_mut() {
            scope.empty_retries += n;
        }
        self.metrics.queue_empty_retries += n;
    }

    /// Opens an audit scope for one wavefront queue operation declaring its
    /// atomic budget (see [`crate::audit`]). A no-op unless the launch
    /// enabled AuditMode. Scopes do not nest: a new `audit_begin` replaces
    /// any scope still open (an aborting operation may leave its scope
    /// unvalidated — harmless, since the abort fails the run anyway).
    pub fn audit_begin(&mut self, spec: OpSpec) {
        if self.audit {
            self.audit_scope = Some(AuditScope::new(spec));
        }
    }

    /// Amends the open scope's expected AFA count — for operations whose
    /// budget is decided mid-flight (e.g. a steal scan that only reserves
    /// when it finds backlog).
    pub fn audit_expect_afa(&mut self, n: u64) {
        if let Some(scope) = self.audit_scope.as_mut() {
            scope.spec.afa = Some(n);
        }
    }

    /// Amends the open scope's expected CAS count (AN's single proxy CAS,
    /// declared only on the path that reaches the reservation).
    pub fn audit_expect_cas(&mut self, n: u64) {
        if let Some(scope) = self.audit_scope.as_mut() {
            scope.spec.cas = Some(n);
        }
    }

    /// Closes the open audit scope and validates the observed counts
    /// against its spec; a violation is recorded as a device fault and
    /// fails the run with [`SimError::AuditViolation`].
    pub fn audit_end(&mut self) {
        if let Some(scope) = self.audit_scope.take() {
            if let Err(e) = scope.validate() {
                self.record_fault(e);
            }
        }
    }

    /// Raises the paper's queue-full exception: "When a queue full
    /// exception occurs the problem is too large for the allocated queue
    /// size" — the kernel aborts, it does not retry. The reason is a
    /// structured [`AbortReason`] so host-side recovery can match on it;
    /// the engine attaches the observing round. The first reason wins.
    pub fn abort(&mut self, reason: AbortReason) {
        if self.abort.is_none() {
            self.abort = Some(reason);
        }
    }

    /// Issue cycles accumulated so far in this work cycle (visible for
    /// tests and custom cost probes).
    pub fn issue_cycles(&self) -> u64 {
        self.issue
    }

    /// Latency watermark accumulated so far in this work cycle.
    pub fn latency_cycles(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostModel;

    fn harness() -> (DeviceMemory, Metrics, RoundState, CostModel, Vec<Watch>) {
        let mut mem = DeviceMemory::new();
        mem.alloc("buf", 8);
        (
            mem,
            Metrics::default(),
            RoundState::new(),
            CostModel::unit(),
            Vec::new(),
        )
    }

    fn info() -> WaveInfo {
        WaveInfo {
            wave_id: 0,
            workgroup: 0,
            cu: 0,
            wave_size: 4,
            total_waves: 2,
            class: WaveClass::Gpu,
        }
    }

    #[test]
    fn afa_returns_old_and_never_fails() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        assert_eq!(ctx.atomic_add(buf, 0, 5), 0);
        assert_eq!(ctx.atomic_add(buf, 0, 5), 5);
        assert_eq!(m.global_atomics, 2);
        assert_eq!(m.cas_attempts, 0);
    }

    #[test]
    fn cas_success_and_failure_accounting() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        // success: word holds 0
        assert_eq!(ctx.atomic_cas(buf, 0, 0, 7), 0);
        // failure: word now holds 7, expected 0
        assert_eq!(ctx.atomic_cas(buf, 0, 0, 9), 7);
        assert_eq!(m.cas_attempts, 2);
        assert_eq!(m.cas_failures, 1);
        assert_eq!(m.global_atomics, 2);
        assert_eq!(mem.read_u32(buf, 0), 7);
    }

    #[test]
    fn serialization_latency_grows_with_rank() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.atomic_add(buf, 0, 1); // rank 0: latency 10
        assert_eq!(ctx.latency_cycles(), 10);
        ctx.atomic_add(buf, 0, 1); // rank 1: latency 10 + 1
        assert_eq!(ctx.latency_cycles(), 11);
        ctx.atomic_add(buf, 1, 1); // different word: rank 0 again
        assert_eq!(ctx.latency_cycles(), 11);
    }

    #[test]
    fn issue_accumulates_latency_watermarks() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.global_read(buf, 0);
        ctx.global_read(buf, 1);
        ctx.charge_alu(3);
        assert_eq!(ctx.issue_cycles(), 1 + 1 + 3);
        assert_eq!(ctx.latency_cycles(), 10); // max, not sum
    }

    #[test]
    fn cpu_collab_pays_svm_penalty() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let cpu = WaveInfo {
            class: WaveClass::CpuCollab,
            ..info()
        };
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, cpu, &mut w);
        ctx.atomic_add(buf, 0, 1);
        // SVM atomics occupy the atomic unit longer and expose longer
        // latency (the issue slot cost lives in the unit pool).
        assert_eq!(ctx.atomic_ops, cost.svm_penalty);
        assert_eq!(ctx.latency_cycles(), cost.atomic_latency * cost.svm_penalty);
    }

    #[test]
    fn out_of_bounds_records_fault_and_returns_zero() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        assert_eq!(ctx.global_read(buf, 99), 0);
        assert!(matches!(ctx.fault, Some(SimError::OutOfBounds { .. })));
    }

    #[test]
    fn abort_keeps_first_reason() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.abort(AbortReason::QueueFull {
            requested: 10,
            capacity: 8,
        });
        ctx.abort(AbortReason::Watchdog {
            budget: 4,
            round: 4,
        });
        assert_eq!(
            ctx.abort,
            Some(AbortReason::QueueFull {
                requested: 10,
                capacity: 8
            })
        );
    }

    #[test]
    fn lds_atomics_counted_and_cheap() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.lds_atomics(4);
        assert_eq!(ctx.issue_cycles(), 4 * cost.lds_atomic);
        assert_eq!(ctx.latency_cycles(), 0);
        assert_eq!(m.lds_atomics, 4);
    }

    #[test]
    fn atomic_min_and_exchange() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.atomic_exchange(buf, 0, 42);
        assert_eq!(ctx.atomic_min(buf, 0, 17), 42);
        assert_eq!(mem.read_u32(buf, 0), 17);
    }

    #[test]
    fn peek_run_matches_per_word_peeks() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        mem.write_u32(buf, 2, 5);
        mem.write_u32(buf, 3, 6);
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        let mut out = Vec::new();
        ctx.peek_run(buf, 2, 2, &mut out);
        assert_eq!(out, vec![5, 6]);
        assert_eq!(ctx.issue_cycles(), 0, "peek_run is a zero-cost observer");
        // Overrunning the buffer faults and yields nothing.
        ctx.peek_run(buf, 6, 3, &mut out);
        assert!(out.is_empty());
        assert!(matches!(ctx.fault, Some(SimError::OutOfBounds { .. })));
    }

    #[test]
    fn park_watches_capture_expected_values() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        mem.write_u32(buf, 1, 9);
        mem.begin_round();
        mem.store(buf, 1, 11).unwrap(); // written this round
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.park_until_changed(buf, 1); // stale view: still 9
        ctx.park_until_changed_now(buf, 1); // current view: 11
        assert_eq!(w.len(), 2);
        assert!(w[0].stale && w[0].expected == 9);
        assert!(!w[1].stale && w[1].expected == 11);
    }

    #[test]
    fn audit_scope_counts_and_validates() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.audit = true;
        ctx.audit_begin(OpSpec::new("RF/AN", "enqueue").afa_exact(1));
        ctx.atomic_add(buf, 0, 3);
        ctx.audit_end();
        assert!(ctx.fault.is_none(), "one AFA matches the spec");
        // A CAS inside a retry-free scope is a violation.
        ctx.audit_begin(OpSpec::new("RF/AN", "acquire").afa_exact(0));
        ctx.atomic_cas(buf, 0, 3, 4);
        ctx.audit_end();
        assert!(
            matches!(ctx.fault, Some(SimError::AuditViolation(_))),
            "{:?}",
            ctx.fault
        );
    }

    #[test]
    fn audit_disabled_scopes_are_noops() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.audit_begin(OpSpec::new("RF/AN", "acquire"));
        ctx.atomic_cas(buf, 0, 0, 1); // would violate if auditing
        ctx.audit_end();
        assert!(ctx.fault.is_none());
    }

    #[test]
    fn audit_expectations_amend_open_scope() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.audit = true;
        ctx.audit_begin(OpSpec::new("AN", "acquire").allow_empty_retries());
        ctx.audit_expect_cas(1);
        ctx.atomic_cas(buf, 0, 0, 1);
        ctx.count_queue_empty_retries(3);
        ctx.audit_end();
        assert!(ctx.fault.is_none(), "{:?}", ctx.fault);
    }

    #[test]
    fn data_atomics_outside_scopes_are_unaudited() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        ctx.audit = true;
        // SSSP's relaxation atomics run between queue ops — no open scope.
        ctx.atomic_min(buf, 0, 5);
        ctx.atomic_cas(buf, 1, 0, 2);
        assert!(ctx.fault.is_none());
        assert!(ctx.audit_scope.is_none());
    }

    #[test]
    fn writes_mark_cycle_unparkable() {
        let (mut mem, mut m, mut r, cost, mut w) = harness();
        let buf = mem.buffer("buf");
        let mut ctx = WaveCtx::new(&mut mem, &mut m, &mut r, &cost, info(), &mut w);
        assert!(!ctx.wrote);
        ctx.poke(buf, 0, 1);
        assert!(ctx.wrote);
    }
}
