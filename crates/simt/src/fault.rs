//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a fixed schedule of faults the engine consults each
//! round. Like `AuditMode`, injection is a *pure overlay*: an empty plan
//! takes zero branches in the hot loop beyond a single cheapness check,
//! so all pinned engine goldens stay bit-identical (tested in
//! `engine::tests` and `pt-bfs/tests/engine_regression.rs`).
//!
//! Three fault kinds are modeled:
//!
//! * **Wave-kill** — at round R, when wavefront `wave` comes up in the
//!   issue rotation, the run aborts with a structured
//!   [`AbortReason::InjectedFault`]. Models a preempted/killed workgroup.
//! * **CU stall** — compute unit `cu` is charged `extra_cycles` per round
//!   for a window of rounds. Timing-only: the run completes, but the
//!   makespan and per-CU cycle counters reflect the stall (recorded in
//!   `Metrics::injected_stall_cycles`). Models clock throttling or a
//!   noisy co-tenant.
//! * **Memory poison** — at round R a named buffer word is armed; the
//!   next *kernel* access (load, store, or RMW) faults with a structured
//!   error. Host reads do not fault, so a checkpoint snapshot can still
//!   be taken. Models a detected (ECC-style) memory error, not silent
//!   corruption — which is what makes byte-identical recovery possible.
//!
//! Faults are transient: after an abort, recovery code calls
//! [`FaultPlan::expire_through`] to drop already-fired faults so the
//! retried launch makes progress (a cosmic ray does not strike twice at
//! the same round).

use crate::error::{AbortReason, FaultKind};

/// Kill wavefront `wave` when it is issued at round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveKill {
    /// Scheduling round at which the kill fires.
    pub round: u64,
    /// Global wavefront index to kill.
    pub wave: usize,
}

/// Charge compute unit `cu` an extra `extra_cycles` per round for
/// `rounds` rounds starting at `from_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuStall {
    /// Compute unit to stall.
    pub cu: usize,
    /// First round of the stall window.
    pub from_round: u64,
    /// Window length in rounds.
    pub rounds: u64,
    /// Extra cycles charged per round inside the window.
    pub extra_cycles: u64,
}

impl CuStall {
    /// True when `round` falls inside this stall window.
    pub fn covers(&self, round: u64) -> bool {
        round >= self.from_round && round < self.from_round.saturating_add(self.rounds)
    }
}

/// Poison word `index` of buffer `buffer` at round `round`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemPoison {
    /// Round at which the word is armed.
    pub round: u64,
    /// Name of the buffer (as registered with `DeviceMemory::alloc`).
    /// Unknown names are skipped — plans stay portable across kernels.
    pub buffer: String,
    /// Word index within the buffer.
    pub index: usize,
}

/// A deterministic fault schedule consulted by the engine each round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Wave-kill faults.
    pub wave_kills: Vec<WaveKill>,
    /// CU stall windows.
    pub cu_stalls: Vec<CuStall>,
    /// Memory poison faults.
    pub mem_poisons: Vec<MemPoison>,
}

/// Bounds for [`FaultPlan::seeded`]: how many faults of each kind to
/// draw and the ranges to draw them from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Number of wave-kill faults.
    pub wave_kills: u32,
    /// Number of CU stall windows.
    pub cu_stalls: u32,
    /// Number of memory poison faults.
    pub mem_poisons: u32,
    /// Rounds are drawn from `[0, max_round)`.
    pub max_round: u64,
    /// Waves are drawn from `[0, waves)`.
    pub waves: usize,
    /// CUs are drawn from `[0, cus)`.
    pub cus: usize,
    /// Stall windows last `[1, max_stall_rounds]` rounds.
    pub max_stall_rounds: u64,
    /// Stall windows charge `[1, max_stall_cycles]` extra cycles/round.
    pub max_stall_cycles: u64,
    /// Buffer poisons target (skipped if the kernel never allocs it).
    pub poison_buffer: String,
    /// Poison indices are drawn from `[0, poison_words)`.
    pub poison_words: usize,
}

impl FaultPlan {
    /// The empty plan: injection disabled, bit-identical timing.
    pub const EMPTY: FaultPlan = FaultPlan {
        wave_kills: Vec::new(),
        cu_stalls: Vec::new(),
        mem_poisons: Vec::new(),
    };

    /// An empty plan (same as [`FaultPlan::EMPTY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no faults are scheduled — the engine takes its
    /// fault-free fast path.
    pub fn is_empty(&self) -> bool {
        self.wave_kills.is_empty() && self.cu_stalls.is_empty() && self.mem_poisons.is_empty()
    }

    /// Total scheduled faults.
    pub fn len(&self) -> usize {
        self.wave_kills.len() + self.cu_stalls.len() + self.mem_poisons.len()
    }

    /// Schedule a wave-kill (builder style).
    pub fn kill_wave(mut self, round: u64, wave: usize) -> Self {
        self.wave_kills.push(WaveKill { round, wave });
        self
    }

    /// Schedule a CU stall window (builder style).
    pub fn stall_cu(mut self, cu: usize, from_round: u64, rounds: u64, extra_cycles: u64) -> Self {
        self.cu_stalls.push(CuStall {
            cu,
            from_round,
            rounds,
            extra_cycles,
        });
        self
    }

    /// Schedule a memory poison (builder style).
    pub fn poison(mut self, round: u64, buffer: impl Into<String>, index: usize) -> Self {
        self.mem_poisons.push(MemPoison {
            round,
            buffer: buffer.into(),
            index,
        });
        self
    }

    /// Draw a deterministic fault schedule from `seed`. The same seed and
    /// spec always produce the identical plan, regardless of thread count
    /// or host — the basis of the chaos differential tests.
    pub fn seeded(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..spec.wave_kills {
            plan.wave_kills.push(WaveKill {
                round: rng.below(spec.max_round.max(1)),
                wave: rng.below(spec.waves.max(1) as u64) as usize,
            });
        }
        for _ in 0..spec.cu_stalls {
            plan.cu_stalls.push(CuStall {
                cu: rng.below(spec.cus.max(1) as u64) as usize,
                from_round: rng.below(spec.max_round.max(1)),
                rounds: 1 + rng.below(spec.max_stall_rounds.max(1)),
                extra_cycles: 1 + rng.below(spec.max_stall_cycles.max(1)),
            });
        }
        for _ in 0..spec.mem_poisons {
            plan.mem_poisons.push(MemPoison {
                round: rng.below(spec.max_round.max(1)),
                buffer: spec.poison_buffer.clone(),
                index: rng.below(spec.poison_words.max(1) as u64) as usize,
            });
        }
        // Deterministic ordering regardless of draw order.
        plan.normalize();
        plan
    }

    /// Sort faults by round so engine-side consumption is in-order.
    pub fn normalize(&mut self) {
        self.wave_kills.sort_by_key(|k| (k.round, k.wave));
        self.cu_stalls
            .sort_by_key(|s| (s.from_round, s.cu, s.rounds, s.extra_cycles));
        self.mem_poisons
            .sort_by(|a, b| (a.round, &a.buffer, a.index).cmp(&(b.round, &b.buffer, b.index)));
    }

    /// Drop transient faults (kills and poisons) scheduled at or before
    /// `round`: they have fired (or been overtaken by the abort) and must
    /// not re-fire when the failed launch is retried. Stall windows stay —
    /// they never abort, so replaying them is harmless and keeps timing
    /// deterministic.
    pub fn expire_through(&self, round: u64) -> FaultPlan {
        FaultPlan {
            wave_kills: self
                .wave_kills
                .iter()
                .copied()
                .filter(|k| k.round > round)
                .collect(),
            cu_stalls: self.cu_stalls.clone(),
            mem_poisons: self
                .mem_poisons
                .iter()
                .filter(|p| p.round > round)
                .cloned()
                .collect(),
        }
    }

    /// The abort reason a fired fault of `kind` maps to.
    pub fn abort_reason(kind: FaultKind, wave: usize, round: u64) -> AbortReason {
        AbortReason::InjectedFault { kind, wave, round }
    }
}

/// Minimal SplitMix64 (Steele et al.) — `simt` is dependency-free, so it
/// carries its own copy rather than depending on `ptq_graph::rng`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (bound > 0), via 128-bit multiply.
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            wave_kills: 3,
            cu_stalls: 2,
            mem_poisons: 2,
            max_round: 100,
            waves: 8,
            cus: 4,
            max_stall_rounds: 10,
            max_stall_cycles: 50,
            poison_buffer: "workqueue".into(),
            poison_words: 64,
        }
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::EMPTY.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::EMPTY.len(), 0);
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = FaultPlan::seeded(42, &spec());
        let b = FaultPlan::seeded(42, &spec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        let c = FaultPlan::seeded(43, &spec());
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_respects_bounds() {
        let plan = FaultPlan::seeded(7, &spec());
        for k in &plan.wave_kills {
            assert!(k.round < 100);
            assert!(k.wave < 8);
        }
        for s in &plan.cu_stalls {
            assert!(s.cu < 4);
            assert!(s.from_round < 100);
            assert!((1..=10).contains(&s.rounds));
            assert!((1..=50).contains(&s.extra_cycles));
        }
        for p in &plan.mem_poisons {
            assert!(p.round < 100);
            assert!(p.index < 64);
            assert_eq!(p.buffer, "workqueue");
        }
    }

    #[test]
    fn expire_drops_fired_transients_keeps_stalls() {
        let plan = FaultPlan::new()
            .kill_wave(5, 0)
            .kill_wave(20, 1)
            .poison(3, "q", 0)
            .poison(30, "q", 1)
            .stall_cu(0, 2, 10, 5);
        let pruned = plan.expire_through(10);
        assert_eq!(pruned.wave_kills, vec![WaveKill { round: 20, wave: 1 }]);
        assert_eq!(pruned.mem_poisons.len(), 1);
        assert_eq!(pruned.mem_poisons[0].round, 30);
        assert_eq!(pruned.cu_stalls.len(), 1);
    }

    #[test]
    fn stall_window_coverage() {
        let s = CuStall {
            cu: 0,
            from_round: 10,
            rounds: 3,
            extra_cycles: 1,
        };
        assert!(!s.covers(9));
        assert!(s.covers(10));
        assert!(s.covers(12));
        assert!(!s.covers(13));
    }

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::new()
            .kill_wave(1, 2)
            .stall_cu(0, 0, 5, 10)
            .poison(2, "workqueue", 7);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }
}
