//! GPU hardware configurations and the cycle-cost model.
//!
//! The two presets mirror the paper's test hardware (§5.4):
//!
//! * [`GpuConfig::fiji`] — AMD Radeon R9 Fury, 56 CUs, discrete memory;
//!   the paper launches 224 workgroups of 64 threads (4 per CU) = 14,336
//!   persistent threads.
//! * [`GpuConfig::spectre`] — AMD Radeon R7 APU, 8 CUs, shared CPU-GPU
//!   memory; 32 workgroups = 2,048 persistent threads.
//!
//! Cost-model values are in cycles and are *calibration knobs*, not claims
//! about GCN microarchitecture: the reproduction needs the relative costs
//! (atomic latency ≫ issue cost, serialization per contender, unhideable
//! re-issue on CAS failure) to be right, not the absolute values.

/// Hardware shape + cost model for one simulated GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Marketing/codename used in reports ("Fiji", "Spectre").
    pub name: &'static str,
    /// Number of compute units.
    pub num_cus: usize,
    /// SIMD engines per CU (GCN has 4; each issues one wavefront op/cycle).
    pub simds_per_cu: usize,
    /// Threads per wavefront (64 on all GCN parts).
    pub wave_size: usize,
    /// Wavefronts per workgroup. The paper uses workgroups of exactly one
    /// wavefront "to avoid barriers".
    pub waves_per_wg: usize,
    /// Workgroup slots per CU ("launched 4 workgroups on each CU to
    /// facilitate zero-cost thread switching").
    pub wgs_per_cu: usize,
    /// Core clock in GHz, used to convert cycles to seconds.
    pub clock_ghz: f64,
    /// Cycle costs.
    pub cost: CostModel,
}

impl GpuConfig {
    /// AMD Radeon R9 Fury ("Fiji"): 56 CUs @ ~1.05 GHz, discrete HBM.
    pub fn fiji() -> Self {
        GpuConfig {
            name: "Fiji",
            num_cus: 56,
            simds_per_cu: 4,
            wave_size: 64,
            waves_per_wg: 1,
            wgs_per_cu: 4,
            clock_ghz: 1.05,
            cost: CostModel::discrete(),
        }
    }

    /// AMD Radeon R7 APU ("Spectre"): 8 CUs @ ~0.72 GHz, shared DDR3.
    pub fn spectre() -> Self {
        GpuConfig {
            name: "Spectre",
            num_cus: 8,
            simds_per_cu: 4,
            wave_size: 64,
            waves_per_wg: 1,
            wgs_per_cu: 4,
            clock_ghz: 0.72,
            cost: CostModel::integrated(),
        }
    }

    /// A tiny configuration for unit tests: 2 CUs, 4-lane waves, unit-ish
    /// costs so expected cycle counts can be computed by hand.
    pub fn test_tiny() -> Self {
        GpuConfig {
            name: "TestTiny",
            num_cus: 2,
            simds_per_cu: 1,
            wave_size: 4,
            waves_per_wg: 1,
            wgs_per_cu: 2,
            clock_ghz: 1.0,
            cost: CostModel::unit(),
        }
    }

    /// Maximum resident wavefronts for this configuration.
    pub fn max_waves(&self) -> usize {
        self.num_cus * self.wgs_per_cu * self.waves_per_wg
    }

    /// Maximum persistent threads (the paper's headline 14,336 / 2,048).
    pub fn max_threads(&self) -> usize {
        self.max_waves() * self.wave_size
    }

    /// The workgroup counts used for the paper's scalability sweeps
    /// (Figures 4–5): powers of two up to the device maximum, plus the
    /// maximum itself.
    pub fn workgroup_sweep(&self) -> Vec<usize> {
        let max = self.num_cus * self.wgs_per_cu;
        let mut pts = Vec::new();
        let mut w = 1;
        while w < max {
            pts.push(w);
            w *= 2;
        }
        pts.push(max);
        pts
    }

    /// Converts an accumulated cycle count to seconds at this clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Converts a wall-clock duration in seconds back to cycles at this
    /// clock (rounding toward zero). Inverse of [`cycles_to_seconds`];
    /// used by serving layers that budget deadlines in simulated cycles.
    ///
    /// Saturates: a duration past `u64::MAX` cycles (or a NaN/negative
    /// input, which no simulated clock produces) clamps to the range
    /// bounds instead of hitting the float→int cast's platform-defined
    /// edge. Debug builds assert the input was finite and non-negative so
    /// a corrupted duration is caught at the conversion site.
    ///
    /// [`cycles_to_seconds`]: GpuConfig::cycles_to_seconds
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        debug_assert!(
            seconds.is_finite() && seconds >= 0.0,
            "seconds_to_cycles: durations are finite and non-negative, got {seconds}"
        );
        // `as` already saturates (NaN -> 0), making release builds safe
        // on the same inputs the debug assertion flags.
        (seconds * self.clock_ghz * 1e9) as u64
    }
}

/// Cycle costs for the operations a kernel can perform.
///
/// *Issue* costs occupy SIMD instruction slots and can never be hidden;
/// *latency* costs overlap with other resident wavefronts' issues
/// (zero-cost thread switching). This split is the heart of the paper's
/// argument: "While the latency of both AFA and CAS atomic operations can
/// be hidden by a GPU, the overhead of retrying an unsuccessful CAS cannot
/// be hidden."
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Issue cycles for one ALU instruction (work-cycle bookkeeping).
    pub alu_issue: u64,
    /// Issue cycles for one wave-coalesced global memory operation.
    pub mem_issue: u64,
    /// Latency cycles for a global memory operation.
    pub mem_latency: u64,
    /// Device-wide DRAM cost of one 64-byte cache line, in *milli-cycles*
    /// (the memory system is a shared pool: a single resident wavefront
    /// can use all of it, which is why low occupancy is latency-bound
    /// rather than bandwidth-bound). The kernel makespan can never beat
    /// `total distinct lines x mem_bw_line_milli / 1000`. This is what
    /// separates coalesced traffic (the synthetic tree's contiguous
    /// children) from scattered traffic (a social graph's random edges).
    pub mem_bw_line_milli: u64,
    /// Atomic-unit occupancy per global atomic, in milli-cycles: the L2
    /// atomic ALUs process operations at a fixed rate (instruction replay
    /// included), so a compute unit's round can never be shorter than
    /// `atomics x atomic_unit_milli / 1000` — this throughput, not SIMD
    /// issue, is what a 64-lane lock-step CAS volley saturates.
    pub atomic_unit_milli: u64,
    /// Latency cycles for an uncontended global atomic.
    pub atomic_latency: u64,
    /// Extra latency per preceding same-address atomic in the same round
    /// (the serialization queue at the memory partition).
    pub atomic_serialize: u64,
    /// Pipeline depth of the atomic unit: same-address serialization
    /// latency saturates after this many queued ops.
    pub atomic_pipe_depth: u64,
    /// Cost of a workgroup-local (LDS) atomic; no global serialization.
    pub lds_atomic: u64,
    /// Unhideable issue cycles charged per CAS retry caused by contention
    /// (the dependent re-read + re-CAS chain that the paper argues "cannot
    /// be hidden"). Used by the CAS retry-storm model: a staged
    /// reservation that finds its word mutated `d` times retries
    /// `min(d, cas_storm_cap)` times.
    pub cas_retry_issue: u64,
    /// Cap on retry-storm length per staged CAS (bounded by how many
    /// retries fit in one work cycle on real hardware).
    pub cas_storm_cap: u64,
    /// Device-wide serialization cost, in milli-cycles, per atomic that
    /// targets the round's hottest word. Atomics to one word are handled
    /// by a single L2 slice and cannot be spread across compute units —
    /// this is the resource a shared queue counter saturates, and the
    /// reason per-lane (BASE) designs stop scaling while per-wavefront
    /// (proxy) designs do not.
    pub hot_word_milli: u64,
    /// Host-side kernel launch overhead in device cycles. Charged once per
    /// `Engine::run`, it is what makes level-synchronous implementations
    /// (Rodinia) pay dearly on deep graphs.
    pub launch_overhead: u64,
    /// Multiplier applied to memory/atomic costs of [`super::WaveClass::CpuCollab`]
    /// wavefronts — the cross-cluster (SVM) atomic penalty CHAI pays on
    /// integrated parts.
    pub svm_penalty: u64,
}

impl CostModel {
    /// Costs for a discrete GPU (long latencies, fast clock).
    pub fn discrete() -> Self {
        CostModel {
            alu_issue: 1,
            mem_issue: 4,
            // Effective load-to-use latency including memory-system
            // queueing under load.
            mem_latency: 1_300,
            // The line pool models the L2 interface (~2 TB/s on Fiji);
            // DRAM-side reuse filtering is folded in.
            mem_bw_line_milli: 30,
            atomic_unit_milli: 250,
            atomic_latency: 250,
            atomic_serialize: 2,
            atomic_pipe_depth: 64,
            lds_atomic: 8,
            cas_retry_issue: 240,
            cas_storm_cap: 64,
            hot_word_milli: 450,
            launch_overhead: 12_000,
            svm_penalty: 8,
        }
    }

    /// Costs for an integrated APU (shorter path to DRAM, slower clock,
    /// cheaper cross-device atomics — the APU is the part CHAI targets).
    pub fn integrated() -> Self {
        CostModel {
            alu_issue: 1,
            mem_issue: 4,
            mem_latency: 600,
            // L2/DRAM interface pool; the APU's shared path is narrow.
            mem_bw_line_milli: 400,
            atomic_unit_milli: 250,
            atomic_latency: 160,
            atomic_serialize: 2,
            atomic_pipe_depth: 32,
            lds_atomic: 8,
            cas_retry_issue: 28,
            cas_storm_cap: 32,
            hot_word_milli: 400,
            launch_overhead: 9_000,
            svm_penalty: 4,
        }
    }

    /// Unit costs for hand-checkable tests.
    pub fn unit() -> Self {
        CostModel {
            alu_issue: 1,
            mem_issue: 1,
            mem_latency: 10,
            mem_bw_line_milli: 1_000,
            atomic_unit_milli: 1_000,
            atomic_latency: 10,
            atomic_serialize: 1,
            atomic_pipe_depth: 4,
            lds_atomic: 1,
            cas_retry_issue: 2,
            cas_storm_cap: 4,
            hot_word_milli: 0,
            launch_overhead: 0,
            svm_penalty: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thread_counts() {
        assert_eq!(GpuConfig::fiji().max_threads(), 14_336);
        assert_eq!(GpuConfig::spectre().max_threads(), 2_048);
        assert_eq!(GpuConfig::fiji().max_waves(), 224);
        assert_eq!(GpuConfig::spectre().max_waves(), 32);
    }

    #[test]
    fn sweep_ends_at_max_and_is_increasing() {
        let sweep = GpuConfig::fiji().workgroup_sweep();
        assert_eq!(*sweep.first().unwrap(), 1);
        assert_eq!(*sweep.last().unwrap(), 224);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        let sweep = GpuConfig::spectre().workgroup_sweep();
        assert_eq!(sweep, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let fiji = GpuConfig::fiji();
        assert!((fiji.cycles_to_seconds(1_050_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(fiji.seconds_to_cycles(1.0), 1_050_000_000);
        let tiny = GpuConfig::test_tiny();
        let cycles = 123_456_789;
        assert_eq!(
            tiny.seconds_to_cycles(tiny.cycles_to_seconds(cycles)),
            cycles
        );
    }

    #[test]
    fn seconds_to_cycles_saturates_at_the_boundaries() {
        let tiny = GpuConfig::test_tiny(); // 1.0 GHz: seconds * 1e9
        assert_eq!(tiny.seconds_to_cycles(0.0), 0);
        // Largest duration still inside u64 at 1 GHz: u64::MAX cycles is
        // ~1.8e10 seconds; one cycle under the float-representable edge
        // converts without clamping...
        let edge_seconds = (u64::MAX as f64) / 1e9;
        assert_eq!(tiny.seconds_to_cycles(edge_seconds * 0.5), u64::MAX / 2 + 1);
        // ...and anything past it clamps to u64::MAX instead of wrapping.
        assert_eq!(tiny.seconds_to_cycles(edge_seconds * 4.0), u64::MAX);
        assert_eq!(tiny.seconds_to_cycles(f64::MAX), u64::MAX);
        // Sub-cycle durations round toward zero.
        assert_eq!(tiny.seconds_to_cycles(0.4e-9), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    #[cfg(debug_assertions)]
    fn seconds_to_cycles_rejects_nan_in_debug() {
        GpuConfig::test_tiny().seconds_to_cycles(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    #[cfg(debug_assertions)]
    fn seconds_to_cycles_rejects_negative_in_debug() {
        GpuConfig::test_tiny().seconds_to_cycles(-1.0);
    }

    #[test]
    fn latency_dwarfs_issue_in_real_presets() {
        for cost in [CostModel::discrete(), CostModel::integrated()] {
            assert!(cost.atomic_latency * 1000 > 10 * cost.atomic_unit_milli);
            assert!(cost.mem_latency > 10 * cost.mem_issue);
        }
    }
}
