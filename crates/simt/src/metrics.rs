//! Run metrics: the counters behind the paper's Figures 1 and 5.
//!
//! The paper's key quantitative arguments are counting arguments — "the
//! BASE queue requires over 60× more atomic operations than the proposed
//! queue" (Fig 5), "retries caused by CAS failure" (Fig 1) — so the
//! simulator counts every atomic, every CAS failure, and every
//! queue-operation retry exactly and deterministically.

/// Counters accumulated over one kernel run (or summed over several, for
/// level-synchronous baselines that relaunch per level).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Global atomic operations issued (AFA + CAS attempts + exchanges).
    pub global_atomics: u64,
    /// Subset of `global_atomics` issued by the task scheduler itself
    /// (queue reservations and their retries — the paper's Figure 5
    /// denominator is the proposed design's count of these).
    pub scheduler_atomics: u64,
    /// CAS operations attempted (subset of `global_atomics`).
    pub cas_attempts: u64,
    /// CAS operations that failed — each implies an unhideable re-issue.
    pub cas_failures: u64,
    /// Workgroup-local (LDS) atomic operations; cheap, but counted for the
    /// ablation studies.
    pub lds_atomics: u64,
    /// Queue-operation retries caused by *exceptions* (queue-empty in the
    /// traditional design). Kernel-reported.
    pub queue_empty_retries: u64,
    /// Global memory operations (loads + stores).
    pub global_mem_ops: u64,
    /// Work cycles executed across all wavefronts.
    pub work_cycles: u64,
    /// Scheduling rounds the engine ran.
    pub rounds: u64,
    /// Kernel launches (1 for persistent kernels; #levels for Rodinia).
    pub launches: u64,
    /// Device cycles of the slowest compute unit — the kernel makespan.
    pub makespan_cycles: u64,
    /// Faults injected by the run's `FaultPlan` (poisons armed, stall
    /// windows entered; wave-kills abort the run, so they surface in the
    /// structured error instead). Zero unless fault injection is on.
    pub injected_faults: u64,
    /// Extra CU cycles charged by injected stall windows. Zero unless
    /// fault injection is on.
    pub injected_stall_cycles: u64,
}

impl Metrics {
    /// Total retry overhead: CAS failures plus queue-exception retries.
    /// This is the quantity the proposed RF/AN design drives to zero.
    pub fn total_retries(&self) -> u64 {
        self.cas_failures + self.queue_empty_retries
    }

    /// CAS failure rate in `[0, 1]`.
    pub fn cas_failure_rate(&self) -> f64 {
        if self.cas_attempts == 0 {
            0.0
        } else {
            self.cas_failures as f64 / self.cas_attempts as f64
        }
    }

    /// Accumulates another run's counters (used by multi-launch baselines).
    pub fn merge(&mut self, other: &Metrics) {
        self.global_atomics += other.global_atomics;
        self.scheduler_atomics += other.scheduler_atomics;
        self.cas_attempts += other.cas_attempts;
        self.cas_failures += other.cas_failures;
        self.lds_atomics += other.lds_atomics;
        self.queue_empty_retries += other.queue_empty_retries;
        self.global_mem_ops += other.global_mem_ops;
        self.work_cycles += other.work_cycles;
        self.rounds += other.rounds;
        self.launches += other.launches;
        // Sequential launches: makespans add up.
        self.makespan_cycles += other.makespan_cycles;
        self.injected_faults += other.injected_faults;
        self.injected_stall_cycles += other.injected_stall_cycles;
    }
}

/// Always-on lightweight profiling counters, reported alongside
/// [`Metrics`] but deliberately kept out of it: goldens pin `Metrics`
/// equality bit-for-bit, while these counters describe *host-side*
/// execution mechanics (arena recycling, park replay, table footprints)
/// that performance work is allowed to change without perturbing any
/// simulated quantity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Device words allocated when the run finished.
    pub arena_words: u64,
    /// Bytes held by the per-word metadata table.
    pub meta_bytes: u64,
    /// Words zeroed on demand because an allocation overlapped a
    /// recycled arena's dirty prefix (0 on fresh arenas and under eager
    /// zeroing).
    pub demand_zeroed_words: u64,
    /// 1 if the run's arena came from the thread-local recycling pool.
    pub arena_recycled: u64,
    /// Wave-park events: pure polling cycles that entered closed-form
    /// replay.
    pub park_events: u64,
    /// Parked wave-cycles replayed without re-executing the kernel — the
    /// park fast path's hit count.
    pub park_replay_cycles: u64,
    /// Bytes held by the cache-line stamp table (bandwidth accounting).
    pub line_table_bytes: u64,
    /// Largest number of distinct cache lines touched in one round.
    pub peak_round_lines: u64,
    /// Plan-phase worker threads the run was launched with (gauge; 1 =
    /// fully serial round loop, see DESIGN.md §12).
    pub engine_workers: u64,
    /// Rounds that ran a parallel plan phase (0 when serial).
    pub plan_rounds: u64,
    /// Wave plan passes executed across all plan rounds.
    pub planned_waves: u64,
}

impl Profile {
    /// Folds another run's profile in: event counters add, footprint and
    /// peak gauges keep their maximum (the counters describe one engine,
    /// so cumulative gauges must not double-count across launches).
    pub fn merge(&mut self, other: &Profile) {
        self.arena_words = self.arena_words.max(other.arena_words);
        self.meta_bytes = self.meta_bytes.max(other.meta_bytes);
        self.demand_zeroed_words = self.demand_zeroed_words.max(other.demand_zeroed_words);
        self.arena_recycled = self.arena_recycled.max(other.arena_recycled);
        self.park_events += other.park_events;
        self.park_replay_cycles += other.park_replay_cycles;
        self.line_table_bytes = self.line_table_bytes.max(other.line_table_bytes);
        self.peak_round_lines = self.peak_round_lines.max(other.peak_round_lines);
        self.engine_workers = self.engine_workers.max(other.engine_workers);
        self.plan_rounds += other.plan_rounds;
        self.planned_waves += other.planned_waves;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_sum_both_sources() {
        let m = Metrics {
            cas_failures: 3,
            queue_empty_retries: 4,
            ..Metrics::default()
        };
        assert_eq!(m.total_retries(), 7);
    }

    #[test]
    fn failure_rate_handles_zero_attempts() {
        assert_eq!(Metrics::default().cas_failure_rate(), 0.0);
        let m = Metrics {
            cas_attempts: 8,
            cas_failures: 2,
            ..Metrics::default()
        };
        assert!((m.cas_failure_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn profile_merge_sums_events_and_maxes_gauges() {
        let mut a = Profile {
            arena_words: 100,
            meta_bytes: 800,
            demand_zeroed_words: 40,
            arena_recycled: 0,
            park_events: 2,
            park_replay_cycles: 10,
            line_table_bytes: 64,
            peak_round_lines: 5,
            engine_workers: 1,
            plan_rounds: 2,
            planned_waves: 8,
        };
        let b = Profile {
            arena_words: 50,
            meta_bytes: 400,
            demand_zeroed_words: 60,
            arena_recycled: 1,
            park_events: 3,
            park_replay_cycles: 7,
            line_table_bytes: 128,
            peak_round_lines: 9,
            engine_workers: 4,
            plan_rounds: 3,
            planned_waves: 12,
        };
        a.merge(&b);
        assert_eq!(a.arena_words, 100);
        assert_eq!(a.meta_bytes, 800);
        assert_eq!(a.demand_zeroed_words, 60);
        assert_eq!(a.arena_recycled, 1);
        assert_eq!(a.park_events, 5);
        assert_eq!(a.park_replay_cycles, 17);
        assert_eq!(a.line_table_bytes, 128);
        assert_eq!(a.peak_round_lines, 9);
        assert_eq!(a.engine_workers, 4);
        assert_eq!(a.plan_rounds, 5);
        assert_eq!(a.planned_waves, 20);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Metrics {
            global_atomics: 1,
            scheduler_atomics: 1,
            cas_attempts: 2,
            cas_failures: 1,
            lds_atomics: 5,
            queue_empty_retries: 1,
            global_mem_ops: 10,
            work_cycles: 7,
            rounds: 3,
            launches: 1,
            makespan_cycles: 100,
            injected_faults: 2,
            injected_stall_cycles: 40,
        };
        a.merge(&a.clone());
        assert_eq!(a.global_atomics, 2);
        assert_eq!(a.makespan_cycles, 200);
        assert_eq!(a.launches, 2);
        assert_eq!(a.injected_faults, 4);
        assert_eq!(a.injected_stall_cycles, 80);
    }
}
