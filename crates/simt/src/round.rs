//! Per-round atomic contention and per-cycle bandwidth bookkeeping.
//!
//! Within one scheduling round, every global atomic that targets the same
//! word queues up at that word's memory partition. The k-th arrival pays
//! `k * atomic_serialize` extra latency — this is the "contended hot spot"
//! behaviour of fetch-add the paper cites from Morrison & Afek, and it is
//! what the proxy-thread optimization attacks: one AFA per wavefront
//! instead of one per lane shortens every queue by 64×.
//!
//! # Representation
//!
//! Device addresses are small dense integers (flat word indices into
//! [`crate::DeviceMemory`]), so per-address counters live in flat tables
//! indexed by address rather than a hash map, and every table is
//! *generation stamped*: starting a round (or a work cycle) just bumps a
//! counter, and a slot is live only if its stamp matches the current
//! generation. No per-round clear, no rehashing, no allocation in the
//! steady state.
//!
//! The per-word rank table itself lives inside [`crate::DeviceMemory`]'s
//! merged word-metadata table (one cache line fetch serves the atomic's
//! value, version, round-start snapshot, *and* rank) — this struct holds
//! the round-scalar aggregates plus the per-*cache-line* bandwidth table:
//! each work cycle, the first touch of a cache line stamps it and bumps a
//! counter, replacing the historical per-wave `Vec` + `sort_unstable` +
//! `dedup` distinct-line accounting with O(1) per touch.

/// Next rank generation, process-wide. Rank stamps live in
/// [`crate::DeviceMemory`]'s pooled word-metadata table, which is reused
/// *without* re-zeroing; generations must therefore never be reused, or a
/// stale stamp from an arena's previous life could collide with a live
/// one. Every [`RoundState`] draws its starting generation here and
/// pushes the high-water mark back on each round, so any later round
/// state's generations exceed every stamp ever written.
static NEXT_RANK_GEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

thread_local! {
    /// Recycled cache-line stamp table (with its final generation): the
    /// same page-fault-avoidance as the device-memory arena pool.
    static LINE_POOL: std::cell::RefCell<Option<(Vec<u64>, u64)>> =
        const { std::cell::RefCell::new(None) };
}

/// Round-scalar contention aggregates and the stamped cache-line table.
#[derive(Debug)]
pub struct RoundState {
    /// Generation stamp per cache line; a line has been touched this work
    /// cycle iff `line_stamp[l] == line_gen`.
    line_stamp: Vec<u64>,
    /// Current work-cycle generation for `line_stamp` (bumped every cycle,
    /// never reused).
    line_gen: u64,
    /// Distinct cache lines touched in the current work cycle.
    cycle_lines: u64,
    /// Current round generation for the per-word rank stamps in
    /// [`crate::DeviceMemory`]. Drawn from the process-wide
    /// [`NEXT_RANK_GEN`] high-water mark, so it exceeds every stamp in
    /// any recycled arena (and zeroed stamps are always stale).
    gen: u64,
    /// Live distinct atomic addresses this round (maintained incrementally).
    distinct: usize,
    /// Largest live same-address atomic count this round.
    max_count: u32,
}

impl Default for RoundState {
    fn default() -> Self {
        use std::sync::atomic::Ordering;
        // A recycled line table carries its generation with it (+1 so the
        // previous life's final cycle is stale); rank generations come
        // from the process-wide counter so they can never collide with
        // stamps left in a recycled device-memory arena.
        let (line_stamp, line_gen) = LINE_POOL
            .with(|pool| pool.borrow_mut().take())
            .map(|(stamp, gen)| (stamp, gen + 1))
            .unwrap_or((Vec::new(), 1));
        RoundState {
            line_stamp,
            line_gen,
            cycle_lines: 0,
            gen: NEXT_RANK_GEN.fetch_add(1, Ordering::Relaxed),
            distinct: 0,
            max_count: 0,
        }
    }
}

impl Drop for RoundState {
    fn drop(&mut self) {
        let stamp = std::mem::take(&mut self.line_stamp);
        let gen = self.line_gen;
        LINE_POOL.with(|pool| {
            let mut slot = pool.borrow_mut();
            if slot
                .as_ref()
                .is_none_or(|(kept, _)| kept.capacity() <= stamp.capacity())
            {
                *slot = Some((stamp, gen));
            }
        });
    }
}

/// Words per 64-byte cache line (shared with [`crate::WaveCtx`]).
pub(crate) const LINE_WORDS: usize = 16;

impl RoundState {
    /// Creates an empty round state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the cache-line table for a device of `words` addressable
    /// words, so the hot path never grows it. Lines beyond this still work
    /// (the table grows on demand).
    pub fn ensure_capacity(&mut self, words: usize) {
        let lines = words.div_ceil(LINE_WORDS);
        if self.line_stamp.len() < lines {
            self.line_stamp.resize(lines, 0);
        }
    }

    /// Invalidates all per-word rank counts; called by the engine between
    /// rounds.
    pub fn begin_round(&mut self) {
        self.gen += 1;
        // Publish the high-water mark so generations drawn later (by any
        // round state, for any recycled arena) stay above our stamps.
        NEXT_RANK_GEN.fetch_max(self.gen + 1, std::sync::atomic::Ordering::Relaxed);
        self.distinct = 0;
        self.max_count = 0;
    }

    /// Starts a new work cycle: invalidates the cache-line table and
    /// resets the distinct-line counter. Called by the engine before every
    /// kernel work cycle.
    pub fn begin_cycle(&mut self) {
        self.line_gen += 1;
        self.cycle_lines = 0;
    }

    /// Registers a cache-line touch for bandwidth accounting. The first
    /// touch of a line per work cycle counts; repeats are free — exactly
    /// the distinct-line count the sort+dedup reference produced.
    #[inline]
    pub fn touch_line(&mut self, line: usize) {
        if line >= self.line_stamp.len() {
            self.line_stamp.resize(line + 1, 0);
        }
        if self.line_stamp[line] != self.line_gen {
            self.line_stamp[line] = self.line_gen;
            self.cycle_lines += 1;
        }
    }

    /// Distinct cache lines touched in the current work cycle.
    pub fn cycle_lines(&self) -> u64 {
        self.cycle_lines
    }

    /// Bytes held by the cache-line stamp table (profiling).
    pub fn line_table_bytes(&self) -> u64 {
        (self.line_stamp.len() * std::mem::size_of::<u64>()) as u64
    }

    /// The round generation used to stamp per-word rank slots in
    /// [`crate::DeviceMemory`].
    #[inline]
    pub(crate) fn rank_gen(&self) -> u64 {
        self.gen
    }

    /// Records that an address received its first atomic of this round.
    #[inline]
    pub(crate) fn note_new_address(&mut self) {
        self.distinct += 1;
    }

    /// Records an address's updated same-round atomic count.
    #[inline]
    pub(crate) fn note_count(&mut self, count: u32) {
        self.max_count = self.max_count.max(count);
    }

    /// Number of distinct contended addresses this round (diagnostics).
    pub fn distinct_addresses(&self) -> usize {
        self.distinct
    }

    /// Largest same-address atomic count this round — the queue length at
    /// the hottest L2 slice.
    pub fn max_same_address(&self) -> u64 {
        self.max_count.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;

    /// Rank bookkeeping now flows through the merged word-metadata table;
    /// exercise it the way `WaveCtx::global_atomic` does.
    fn rank(mem: &mut DeviceMemory, rs: &mut RoundState, index: usize) -> u32 {
        let buf = mem.buffer("a");
        mem.atomic_rmw(buf, index, rs, |v| v).unwrap().1
    }

    fn arena() -> DeviceMemory {
        let mut mem = DeviceMemory::new();
        mem.alloc("a", 64);
        mem
    }

    #[test]
    fn ranks_increment_per_address() {
        let mut mem = arena();
        let mut rs = RoundState::new();
        assert_eq!(rank(&mut mem, &mut rs, 10), 0);
        assert_eq!(rank(&mut mem, &mut rs, 10), 1);
        assert_eq!(rank(&mut mem, &mut rs, 10), 2);
        assert_eq!(rank(&mut mem, &mut rs, 11), 0);
    }

    #[test]
    fn max_same_address_tracks_hottest_word() {
        let mut mem = arena();
        let mut rs = RoundState::new();
        assert_eq!(rs.max_same_address(), 0);
        rank(&mut mem, &mut rs, 10);
        rank(&mut mem, &mut rs, 10);
        rank(&mut mem, &mut rs, 11);
        assert_eq!(rs.max_same_address(), 2);
    }

    #[test]
    fn begin_round_resets() {
        let mut mem = arena();
        let mut rs = RoundState::new();
        rank(&mut mem, &mut rs, 5);
        rank(&mut mem, &mut rs, 5);
        rs.begin_round();
        assert_eq!(rank(&mut mem, &mut rs, 5), 0);
        assert_eq!(rs.distinct_addresses(), 1);
    }

    #[test]
    fn stale_generations_do_not_leak_counts() {
        let mut mem = arena();
        let mut rs = RoundState::new();
        rank(&mut mem, &mut rs, 3);
        rank(&mut mem, &mut rs, 3);
        rank(&mut mem, &mut rs, 7);
        assert_eq!(rs.distinct_addresses(), 2);
        rs.begin_round();
        assert_eq!(rs.distinct_addresses(), 0);
        assert_eq!(rs.max_same_address(), 0);
        // Address 7 untouched this round: its old count must not surface.
        assert_eq!(rank(&mut mem, &mut rs, 7), 0);
        assert_eq!(rs.max_same_address(), 1);
    }

    #[test]
    fn line_touches_dedup_within_a_cycle() {
        let mut rs = RoundState::new();
        rs.begin_cycle();
        rs.touch_line(3);
        rs.touch_line(3);
        rs.touch_line(4);
        rs.touch_line(3);
        assert_eq!(rs.cycle_lines(), 2);
    }

    #[test]
    fn begin_cycle_resets_line_counts() {
        let mut rs = RoundState::new();
        rs.begin_cycle();
        rs.touch_line(9);
        rs.begin_cycle();
        assert_eq!(rs.cycle_lines(), 0);
        // The same line counts again in the new cycle.
        rs.touch_line(9);
        assert_eq!(rs.cycle_lines(), 1);
    }

    #[test]
    fn capacity_hint_matches_on_demand_growth() {
        let mut sized = RoundState::new();
        sized.ensure_capacity(100 * LINE_WORDS);
        let mut lazy = RoundState::new();
        sized.begin_cycle();
        lazy.begin_cycle();
        for line in [99, 0, 99, 42] {
            sized.touch_line(line);
            lazy.touch_line(line);
        }
        assert_eq!(sized.cycle_lines(), lazy.cycle_lines());
    }
}
