//! Per-round atomic contention bookkeeping.
//!
//! Within one scheduling round, every global atomic that targets the same
//! word queues up at that word's memory partition. The k-th arrival pays
//! `k * atomic_serialize` extra latency — this is the "contended hot spot"
//! behaviour of fetch-add the paper cites from Morrison & Afek, and it is
//! what the proxy-thread optimization attacks: one AFA per wavefront
//! instead of one per lane shortens every queue by 64×.
//!
//! # Representation
//!
//! Device addresses are small dense integers (flat word indices into
//! [`crate::DeviceMemory`]), so the per-address counters live in a flat
//! table indexed by address rather than a hash map. Rounds are extremely
//! frequent — one per simulated work cycle — so the table is *generation
//! stamped*: starting a round just bumps a counter, and a slot's count is
//! live only if its stamp matches the current generation. No per-round
//! clear, no rehashing, no allocation in the steady state.

/// Tracks, for the current round, how many atomics have already targeted
/// each flat device address.
#[derive(Debug)]
pub struct RoundState {
    /// Generation stamp per address; a slot is live iff `stamps[a] == gen`.
    stamps: Vec<u64>,
    /// Atomic count per address, valid only when the stamp is live.
    counts: Vec<u32>,
    /// Current round generation. Starts at 1 so zeroed stamps are stale.
    gen: u64,
    /// Live distinct addresses this round (maintained incrementally).
    distinct: usize,
    /// Largest live count this round (maintained incrementally).
    max_count: u32,
}

impl Default for RoundState {
    fn default() -> Self {
        RoundState {
            stamps: Vec::new(),
            counts: Vec::new(),
            gen: 1,
            distinct: 0,
            max_count: 0,
        }
    }
}

impl RoundState {
    /// Creates an empty round state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the table for a device of `words` addressable words, so
    /// the hot path never grows it. Addresses beyond this still work (the
    /// table grows on demand).
    pub fn ensure_capacity(&mut self, words: usize) {
        if self.stamps.len() < words {
            self.stamps.resize(words, 0);
            self.counts.resize(words, 0);
        }
    }

    /// Invalidates all counts; called by the engine between rounds.
    pub fn begin_round(&mut self) {
        self.gen += 1;
        self.distinct = 0;
        self.max_count = 0;
    }

    /// Registers one more atomic against `addr` and returns its arrival
    /// rank within this round (0 = first, pays no serialization delay).
    pub fn next_rank(&mut self, addr: usize) -> u32 {
        if addr >= self.stamps.len() {
            self.ensure_capacity(addr + 1);
        }
        if self.stamps[addr] != self.gen {
            self.stamps[addr] = self.gen;
            self.counts[addr] = 0;
            self.distinct += 1;
        }
        let rank = self.counts[addr];
        self.counts[addr] += 1;
        self.max_count = self.max_count.max(self.counts[addr]);
        rank
    }

    /// Number of distinct contended addresses this round (diagnostics).
    pub fn distinct_addresses(&self) -> usize {
        self.distinct
    }

    /// Largest same-address atomic count this round — the queue length at
    /// the hottest L2 slice.
    pub fn max_same_address(&self) -> u64 {
        self.max_count.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_increment_per_address() {
        let mut rs = RoundState::new();
        assert_eq!(rs.next_rank(10), 0);
        assert_eq!(rs.next_rank(10), 1);
        assert_eq!(rs.next_rank(10), 2);
        assert_eq!(rs.next_rank(11), 0);
    }

    #[test]
    fn max_same_address_tracks_hottest_word() {
        let mut rs = RoundState::new();
        assert_eq!(rs.max_same_address(), 0);
        rs.next_rank(10);
        rs.next_rank(10);
        rs.next_rank(11);
        assert_eq!(rs.max_same_address(), 2);
    }

    #[test]
    fn begin_round_resets() {
        let mut rs = RoundState::new();
        rs.next_rank(5);
        rs.next_rank(5);
        rs.begin_round();
        assert_eq!(rs.next_rank(5), 0);
        assert_eq!(rs.distinct_addresses(), 1);
    }

    #[test]
    fn stale_generations_do_not_leak_counts() {
        let mut rs = RoundState::new();
        rs.next_rank(3);
        rs.next_rank(3);
        rs.next_rank(7);
        assert_eq!(rs.distinct_addresses(), 2);
        rs.begin_round();
        assert_eq!(rs.distinct_addresses(), 0);
        assert_eq!(rs.max_same_address(), 0);
        // Address 7 untouched this round: its old count must not surface.
        assert_eq!(rs.next_rank(7), 0);
        assert_eq!(rs.max_same_address(), 1);
    }

    #[test]
    fn capacity_hint_matches_on_demand_growth() {
        let mut sized = RoundState::new();
        sized.ensure_capacity(100);
        let mut lazy = RoundState::new();
        for addr in [99, 0, 99, 42] {
            assert_eq!(sized.next_rank(addr), lazy.next_rank(addr));
        }
        assert_eq!(sized.max_same_address(), lazy.max_same_address());
        assert_eq!(sized.distinct_addresses(), lazy.distinct_addresses());
    }
}
