//! Per-round atomic contention bookkeeping.
//!
//! Within one scheduling round, every global atomic that targets the same
//! word queues up at that word's memory partition. The k-th arrival pays
//! `k * atomic_serialize` extra latency — this is the "contended hot spot"
//! behaviour of fetch-add the paper cites from Morrison & Afek, and it is
//! what the proxy-thread optimization attacks: one AFA per wavefront
//! instead of one per lane shortens every queue by 64×.

use std::collections::HashMap;

/// Tracks, for the current round, how many atomics have already targeted
/// each flat device address.
#[derive(Debug, Default)]
pub struct RoundState {
    counts: HashMap<usize, u32>,
}

impl RoundState {
    /// Creates an empty round state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all counts; called by the engine between rounds.
    pub fn begin_round(&mut self) {
        self.counts.clear();
    }

    /// Registers one more atomic against `addr` and returns its arrival
    /// rank within this round (0 = first, pays no serialization delay).
    pub fn next_rank(&mut self, addr: usize) -> u32 {
        let slot = self.counts.entry(addr).or_insert(0);
        let rank = *slot;
        *slot += 1;
        rank
    }

    /// Number of distinct contended addresses this round (diagnostics).
    pub fn distinct_addresses(&self) -> usize {
        self.counts.len()
    }

    /// Largest same-address atomic count this round — the queue length at
    /// the hottest L2 slice.
    pub fn max_same_address(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_increment_per_address() {
        let mut rs = RoundState::new();
        assert_eq!(rs.next_rank(10), 0);
        assert_eq!(rs.next_rank(10), 1);
        assert_eq!(rs.next_rank(10), 2);
        assert_eq!(rs.next_rank(11), 0);
    }

    #[test]
    fn max_same_address_tracks_hottest_word() {
        let mut rs = RoundState::new();
        assert_eq!(rs.max_same_address(), 0);
        rs.next_rank(10);
        rs.next_rank(10);
        rs.next_rank(11);
        assert_eq!(rs.max_same_address(), 2);
    }

    #[test]
    fn begin_round_resets() {
        let mut rs = RoundState::new();
        rs.next_rank(5);
        rs.next_rank(5);
        rs.begin_round();
        assert_eq!(rs.next_rank(5), 0);
        assert_eq!(rs.distinct_addresses(), 1);
    }
}
