//! Sequential fixed-point oracles for the label-propagation workloads
//! (connected components, best-contribution PageRank-delta).
//!
//! Both device workloads are *confluent*: each claims a per-vertex word
//! with a directed atomic (min for labels, max for contributions), so the
//! value lattice is totally ordered and every execution schedule
//! converges to the same least fixed point (Knaster–Tarski). These
//! oracles compute that fixed point with a plain sequential worklist —
//! the exact array every parallel run must reproduce, under any queue
//! variant and any interleaving.

use crate::csr::{Csr, VertexId};
use std::collections::VecDeque;

/// Sequential least fixed point of min-label propagation: every vertex
/// starts labelled with its own id and repeatedly adopts the minimum
/// label over its in-edges, i.e. `label[w] = min(w, min over v→w of
/// label[v])`. On an undirected (symmetric) graph this assigns every
/// vertex the smallest vertex id in its connected component.
pub fn min_label_fixpoint(graph: &Csr) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut inqueue = vec![true; n];
    let mut queue: VecDeque<u32> = (0..n as u32).collect();
    while let Some(v) = queue.pop_front() {
        inqueue[v as usize] = false;
        let label = labels[v as usize];
        for &w in graph.neighbors(v) {
            if label < labels[w as usize] {
                labels[w as usize] = label;
                if !inqueue[w as usize] {
                    inqueue[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    labels
}

/// Checks a candidate label array against [`min_label_fixpoint`].
/// Returns the first discrepancy as `Err((vertex, expected, actual))`.
pub fn validate_labels(graph: &Csr, candidate: &[u32]) -> Result<(), (VertexId, u32, u32)> {
    let reference = min_label_fixpoint(graph);
    if candidate.len() != reference.len() {
        return Err((0, reference.len() as u32, candidate.len() as u32));
    }
    for (v, (&want, &got)) in reference.iter().zip(candidate).enumerate() {
        if want != got {
            return Err((v as VertexId, want, got));
        }
    }
    Ok(())
}

/// Sequential least fixed point of decayed best-contribution push (the
/// confluent core of a delta-stepping PageRank push from one seed).
///
/// The seed starts with value `init`, everything else with 0. A vertex
/// `v` with out-degree `deg > 0` offers every out-neighbour the single
/// contribution `(value[v] / 2) / deg` — residual halved (damping), then
/// split across the out-edges — and an offer below `threshold` is
/// dropped (the delta cutoff). A neighbour adopts an offer only if it
/// *raises* its value, so the per-vertex word is the best single-path
/// contribution from the seed: a monotone system with a unique least
/// fixed point, independent of relaxation order.
///
/// # Panics
/// Panics if `source` is out of range or `threshold` is zero (a zero
/// threshold admits zero-valued offers, which can never improve anything
/// but would make "above threshold" meaningless).
pub fn decay_fixpoint(graph: &Csr, source: VertexId, init: u32, threshold: u32) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    assert!(threshold > 0, "threshold must be positive");
    let mut values = vec![0u32; n];
    values[source as usize] = init;
    let mut inqueue = vec![false; n];
    inqueue[source as usize] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        inqueue[v as usize] = false;
        let deg = graph.degree(v);
        if deg == 0 {
            continue;
        }
        let offer = (values[v as usize] / 2) / deg;
        if offer < threshold {
            continue;
        }
        for &w in graph.neighbors(v) {
            if offer > values[w as usize] {
                values[w as usize] = offer;
                if !inqueue[w as usize] {
                    inqueue[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    values
}

/// Checks a candidate contribution array against [`decay_fixpoint`].
/// Returns the first discrepancy as `Err((vertex, expected, actual))`.
pub fn validate_contributions(
    graph: &Csr,
    source: VertexId,
    init: u32,
    threshold: u32,
    candidate: &[u32],
) -> Result<(), (VertexId, u32, u32)> {
    let reference = decay_fixpoint(graph, source, init, threshold);
    if candidate.len() != reference.len() {
        return Err((0, reference.len() as u32, candidate.len() as u32));
    }
    for (v, (&want, &got)) in reference.iter().zip(candidate).enumerate() {
        if want != got {
            return Err((v as VertexId, want, got));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::weakly_connected_components;
    use crate::gen::synthetic_tree;
    use crate::CsrBuilder;

    #[test]
    fn labels_equal_min_vertex_per_component() {
        // Three components: {0,1,2}, {3,4}, {5}.
        let mut b = CsrBuilder::new(6);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(3, 4);
        let g = b.build();
        assert_eq!(min_label_fixpoint(&g), vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn labels_agree_with_union_find_on_undirected_graphs() {
        // Seeded undirected sparse graph (erdos_renyi is directed, where
        // label propagation and *weak* connectivity legitimately differ).
        let mut rng = crate::SplitMix64::seed_from_u64(17);
        let mut b = CsrBuilder::new(300);
        for _ in 0..250 {
            let a = (rng.next_u64() % 300) as u32;
            let c = (rng.next_u64() % 300) as u32;
            b.add_undirected_edge(a, c);
        }
        let g = b.build();
        let labels = min_label_fixpoint(&g);
        let comps = weakly_connected_components(&g);
        // Same partition: two vertices share a label iff they share a
        // union-find component.
        for v in 0..g.num_vertices() {
            for w in (v + 1)..g.num_vertices() {
                assert_eq!(
                    labels[v] == labels[w],
                    comps.component[v] == comps.component[w],
                    "partition mismatch at ({v}, {w})"
                );
            }
        }
    }

    #[test]
    fn label_validator_flags_divergence() {
        let g = synthetic_tree(50, 3);
        let mut bad = min_label_fixpoint(&g);
        bad[7] += 1;
        assert_eq!(validate_labels(&g, &bad), Err((7, bad[7] - 1, bad[7])));
        assert!(validate_labels(&g, &min_label_fixpoint(&g)).is_ok());
    }

    #[test]
    fn decay_halves_along_a_path() {
        // 0 → 1 → 2 (directed chain, out-degree 1 each).
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(decay_fixpoint(&g, 0, 64, 1), vec![64, 32, 16]);
    }

    #[test]
    fn threshold_cuts_the_tail() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        // Offers: 32, then 16, then 8 < 10 — dropped.
        assert_eq!(decay_fixpoint(&g, 0, 64, 10), vec![64, 32, 16, 0]);
    }

    #[test]
    fn best_path_wins_not_the_sum() {
        // Two paths into 3: a short strong one and a long weak one.
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1); // offer 32
        b.add_edge(0, 2); // (deg 2: offers are 16 each)
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let v = decay_fixpoint(&g, 0, 128, 1);
        // 0 (deg 2) offers 32 to both 1 and 2; each (deg 1) then offers
        // 16 to 3. The max (not 16 + 16) is kept — order independence
        // depends on this.
        assert_eq!(v, vec![128, 32, 32, 16]);
    }

    #[test]
    fn contribution_validator_flags_divergence() {
        let g = synthetic_tree(60, 4);
        let good = decay_fixpoint(&g, 0, 1 << 20, 4);
        assert!(validate_contributions(&g, 0, 1 << 20, 4, &good).is_ok());
        let mut bad = good.clone();
        bad[11] ^= 1;
        assert!(validate_contributions(&g, 0, 1 << 20, 4, &bad).is_err());
    }
}
