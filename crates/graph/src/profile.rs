//! Dynamic-parallelism (level) profiles — the paper's Figure 3.
//!
//! For a BFS-driven persistent-thread workload, the number of vertices that
//! become available at each level *is* the instantaneous parallelism the
//! scheduler can exploit. The paper plots these profiles for all six
//! datasets (Figure 3) and repeatedly explains speedup differences in terms
//! of whether the profile saturates the 2,048 (Spectre) or 14,336 (Fiji)
//! persistent threads.

use crate::bfs::bfs_levels;
use crate::csr::{Csr, VertexId};

/// Vertices available for thread assignment at each BFS level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelProfile {
    /// `counts[l]` = number of vertices at BFS depth `l`.
    pub counts: Vec<u64>,
    /// Vertices never reached from the chosen source.
    pub unreached: u64,
}

impl LevelProfile {
    /// Number of BFS levels (depth of the traversal + 1).
    pub fn num_levels(&self) -> usize {
        self.counts.len()
    }

    /// Largest single-level width — the peak parallelism of the workload.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Total reached vertices.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of levels whose width is at least `threads` — i.e. how much
    /// of the traversal keeps every persistent thread busy. The paper's
    /// synthetic dataset is designed so this approaches 1.0 after the first
    /// 8 levels; roadmaps sit near 0.0 on the Fiji GPU.
    pub fn saturation(&self, threads: u64) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let sat = self.counts.iter().filter(|&&c| c >= threads).count();
        sat as f64 / self.counts.len() as f64
    }

    /// Fraction of *work* (vertex visits) that happens on saturated levels.
    /// Weighting by width is a better predictor of speedup than
    /// [`Self::saturation`] because wide levels dominate runtime.
    pub fn work_saturation(&self, threads: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sat: u64 = self.counts.iter().filter(|&&c| c >= threads).sum();
        sat as f64 / total as f64
    }
}

/// Computes the per-level vertex counts for a BFS from `source`.
///
/// ```
/// use ptq_graph::{gen::synthetic_tree, level_profile};
///
/// let g = synthetic_tree(1 + 4 + 16, 4);
/// let p = level_profile(&g, 0);
/// assert_eq!(p.counts, vec![1, 4, 16]);
/// assert_eq!(p.peak(), 16);
/// ```
pub fn level_profile(graph: &Csr, source: VertexId) -> LevelProfile {
    let result = bfs_levels(graph, source);
    let mut counts = vec![0u64; result.max_level as usize + 1];
    let mut unreached = 0u64;
    for &l in &result.levels {
        if l == crate::UNREACHED {
            unreached += 1;
        } else {
            counts[l as usize] += 1;
        }
    }
    LevelProfile { counts, unreached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::gen::synthetic_tree;

    #[test]
    fn tree_profile_is_powers_of_fanout() {
        let g = synthetic_tree(1 + 4 + 16 + 64, 4);
        let p = level_profile(&g, 0);
        assert_eq!(p.counts, vec![1, 4, 16, 64]);
        assert_eq!(p.unreached, 0);
        assert_eq!(p.peak(), 64);
        assert_eq!(p.total(), 85);
    }

    #[test]
    fn saturation_counts_wide_levels() {
        let g = synthetic_tree(85, 4);
        let p = level_profile(&g, 0);
        // levels of width 1,4,16,64; threshold 10 is met by 2 of 4 levels
        assert!((p.saturation(10) - 0.5).abs() < 1e-12);
        // by work: (16+64)/85
        assert!((p.work_saturation(10) - 80.0 / 85.0).abs() < 1e-12);
    }

    #[test]
    fn unreached_vertices_are_counted() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        let p = level_profile(&g, 0);
        assert_eq!(p.counts, vec![1, 1]);
        assert_eq!(p.unreached, 1);
    }

    #[test]
    fn empty_profile_edge_cases() {
        let mut b = CsrBuilder::new(1);
        b.ensure_vertices(1);
        let g = b.build();
        let p = level_profile(&g, 0);
        assert_eq!(p.counts, vec![1]);
        assert_eq!(p.peak(), 1);
        assert_eq!(p.saturation(2), 0.0);
    }
}
