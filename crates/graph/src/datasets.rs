//! Catalog of the paper's evaluation datasets.
//!
//! Each entry knows the statistics the paper reports (so Tables 1–2 can be
//! printed side-by-side with measured values) and how to construct a
//! calibrated synthetic equivalent at any scale. `scale = 1.0` reproduces
//! the full published vertex counts; smaller scales shrink the vertex count
//! proportionally while preserving degree distribution and traversal shape,
//! which keeps CI and Criterion runs fast.

use crate::csr::Csr;
use crate::gen::{giant, roadmap, rodinia, social, synthetic_tree, RoadmapParams, SocialParams};

/// The datasets of the paper's §5.2 (Tables 1 and 2) plus the Rodinia and
/// CHAI baseline inputs of §6.4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Paper's synthetic saturating dataset: 10,485,760 vertices, fanout 4.
    Synthetic,
    /// SNAP `gplus_combined`: 107,614 vertices, 30.5M edges, avg 283.4.
    GplusCombined,
    /// SNAP `soc-LiveJournal1`: 4,847,571 vertices, 69.0M edges, avg 14.2.
    SocLiveJournal1,
    /// DIMACS `USA-road-d.NY`: 264,346 vertices, avg 2.8.
    RoadNY,
    /// DIMACS `USA-road-d.LKS`: 2,758,119 vertices, avg 2.5.
    RoadLKS,
    /// DIMACS `USA-road-d.USA`: 23,947,347 vertices, avg 2.4.
    RoadUSA,
    /// Rodinia `graph4096`: 4,096 vertices, uniform degree 1..=6.
    RodiniaGraph4096,
    /// Rodinia `graph65536`: 65,536 vertices.
    RodiniaGraph65536,
    /// Rodinia `graph1MW_6`: 1,000,000 vertices.
    RodiniaGraph1M,
    /// CHAI `NYR_input.dat`: the NY road network in CHAI's packaging.
    ChaiNYR,
    /// CHAI `USA-road-d.BAY.gr.parboil`: SF Bay Area, 321,270 vertices.
    ChaiBAY,
    /// Scale-headroom synthetic (ROADMAP item 5): 16,777,216 vertices,
    /// ~134M edges at full scale — roughly 2× the paper's largest dataset
    /// in edges and built through the streamed two-pass CSR path
    /// ([`crate::gen::giant`]) so construction never materializes an edge
    /// list.
    Giant,
}

/// Published statistics for a dataset (from the paper's tables) used for
/// calibration reporting.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Human-readable name matching the paper.
    pub name: &'static str,
    /// Vertex count at `scale = 1.0`.
    pub vertices: usize,
    /// Edge count published in the paper (approximate calibration
    /// target). `u64`: the giant family exceeds what a 32-bit `usize`
    /// host could hold, and derived sums must not wrap.
    pub edges: u64,
    /// Published mean out-degree.
    pub avg_degree: f64,
    /// Published max out-degree (0 where the paper does not report one).
    pub max_degree: u32,
    /// Published degree standard deviation (0 where not reported).
    pub std_degree: f64,
}

impl Dataset {
    /// The six datasets of the main evaluation (Tables 3–4, Figures 1/3/4).
    pub const MAIN_SIX: [Dataset; 6] = [
        Dataset::Synthetic,
        Dataset::GplusCombined,
        Dataset::SocLiveJournal1,
        Dataset::RoadNY,
        Dataset::RoadLKS,
        Dataset::RoadUSA,
    ];

    /// The three datasets of Figure 5 (retry ratios).
    pub const FIG5_THREE: [Dataset; 3] = [
        Dataset::Synthetic,
        Dataset::SocLiveJournal1,
        Dataset::RoadNY,
    ];

    /// Published statistics.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Synthetic => DatasetSpec {
                name: "Synthetic",
                vertices: 10_485_760,
                edges: 10_485_759,
                avg_degree: 4.0,
                max_degree: 4,
                std_degree: 0.0,
            },
            Dataset::GplusCombined => DatasetSpec {
                name: "gplus_combined",
                vertices: 107_614,
                edges: 30_494_866,
                avg_degree: 283.4,
                max_degree: 49_041,
                std_degree: 1_245.18,
            },
            Dataset::SocLiveJournal1 => DatasetSpec {
                name: "soc-LiveJournal1",
                vertices: 4_847_571,
                edges: 68_993_773,
                avg_degree: 14.2,
                max_degree: 20_293,
                std_degree: 36.08,
            },
            Dataset::RoadNY => DatasetSpec {
                name: "USA-road-d.NY",
                vertices: 264_346,
                edges: 733_846,
                avg_degree: 2.8,
                max_degree: 8,
                std_degree: 0.98,
            },
            Dataset::RoadLKS => DatasetSpec {
                name: "USA-road-d.LKS",
                vertices: 2_758_119,
                edges: 6_885_658,
                avg_degree: 2.5,
                max_degree: 8,
                std_degree: 0.95,
            },
            Dataset::RoadUSA => DatasetSpec {
                name: "USA-road-d.USA",
                vertices: 23_947_347,
                edges: 58_333_344,
                avg_degree: 2.4,
                max_degree: 9,
                std_degree: 0.95,
            },
            Dataset::RodiniaGraph4096 => DatasetSpec {
                name: "graph4096",
                vertices: 4_096,
                edges: 14_336, // 3.5 * 4096
                avg_degree: 3.5,
                max_degree: 6,
                std_degree: 1.7,
            },
            Dataset::RodiniaGraph65536 => DatasetSpec {
                name: "graph65536",
                vertices: 65_536,
                edges: 229_376,
                avg_degree: 3.5,
                max_degree: 6,
                std_degree: 1.7,
            },
            Dataset::RodiniaGraph1M => DatasetSpec {
                name: "graph1MW_6",
                vertices: 1_000_000,
                edges: 3_500_000,
                avg_degree: 3.5,
                max_degree: 6,
                std_degree: 1.7,
            },
            Dataset::ChaiNYR => DatasetSpec {
                name: "NYR_input.dat",
                vertices: 264_346,
                edges: 733_846,
                avg_degree: 2.8,
                max_degree: 8,
                std_degree: 0.98,
            },
            Dataset::ChaiBAY => DatasetSpec {
                name: "USA-road-d.BAY.gr.parboil",
                vertices: 321_270,
                edges: 800_172,
                avg_degree: 2.5,
                max_degree: 7,
                std_degree: 0.95,
            },
            Dataset::Giant => DatasetSpec {
                name: "giant",
                vertices: 16_777_216,
                edges: 134_217_728, // 8 * 2^24 calibration target
                avg_degree: 8.0,
                max_degree: 16, // 2 tree children + up to 14 extras
                std_degree: 4.4,
            },
        }
    }

    /// Builds the calibrated synthetic equivalent at the given scale
    /// (`0 < scale <= 1`). The BFS source for every dataset is vertex 0:
    /// the tree root, the social hub (generators place the largest degree
    /// draw at id 0), or the grid corner.
    ///
    /// ```
    /// use ptq_graph::Dataset;
    ///
    /// let g = Dataset::RoadNY.build(0.02); // 2% of 264,346 vertices
    /// let stats = g.degree_stats();
    /// assert!((stats.avg - 2.8).abs() < 0.3, "roadmap degree band");
    /// ```
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn build(self, scale: f64) -> Csr {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let spec = self.spec();
        let n = ((spec.vertices as f64 * scale) as usize).max(16);
        match self {
            Dataset::Synthetic => synthetic_tree(n, 4),
            Dataset::GplusCombined => social(SocialParams {
                vertices: n,
                avg_degree: spec.avg_degree,
                alpha: 1.45,
                max_degree: scaled_cap(spec.max_degree, scale),
                seed: 0x6005,
            }),
            Dataset::SocLiveJournal1 => social(SocialParams {
                vertices: n,
                avg_degree: spec.avg_degree,
                alpha: 1.8,
                max_degree: scaled_cap(spec.max_degree, scale),
                seed: 0x117e,
            }),
            Dataset::RoadNY => grid_for(n, 0.40, 0x0a01),
            Dataset::RoadLKS => grid_for(n, 0.25, 0x0a02),
            Dataset::RoadUSA => grid_for(n, 0.20, 0x0a03),
            Dataset::RodiniaGraph4096 => rodinia(n, 6, 0x40d1),
            Dataset::RodiniaGraph65536 => rodinia(n, 6, 0x40d2),
            Dataset::RodiniaGraph1M => rodinia(n, 6, 0x40d3),
            Dataset::ChaiNYR => grid_for(n, 0.40, 0xc4a1),
            Dataset::ChaiBAY => grid_for(n, 0.25, 0xc4a2),
            // Mean degree 8 = n-1 tree edges (mean 1) + uniform[0, 14]
            // extras (mean 7).
            Dataset::Giant => giant(n, 7, 0x61A7),
        }
    }

    /// The BFS source vertex used throughout the reproduction.
    pub fn source(self) -> u32 {
        0
    }
}

/// Max-degree caps must shrink with the graph or tiny scaled instances get
/// a single hub holding most edges.
fn scaled_cap(full_cap: u32, scale: f64) -> u32 {
    ((f64::from(full_cap) * scale.sqrt()) as u32).max(64)
}

/// Picks grid dimensions whose product approximates `n` (slightly wide, as
/// real road networks are), with a vertical keep probability chosen so the
/// mean degree lands in the DIMACS band: avg ≈ 2 + 2·keep.
fn grid_for(n: usize, keep_prob: f64, seed: u64) -> Csr {
    let rows = ((n as f64 / 1.3).sqrt().round() as usize).max(2);
    let cols = (n / rows).max(2);
    roadmap(RoadmapParams {
        rows,
        cols,
        keep_prob,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;

    const TEST_SCALE: f64 = 0.02;

    #[test]
    fn all_datasets_build_at_small_scale() {
        for ds in [
            Dataset::Synthetic,
            Dataset::GplusCombined,
            Dataset::SocLiveJournal1,
            Dataset::RoadNY,
            Dataset::RoadLKS,
            Dataset::RodiniaGraph4096,
            Dataset::RodiniaGraph65536,
            Dataset::ChaiNYR,
            Dataset::ChaiBAY,
            Dataset::Giant,
        ] {
            let g = ds.build(TEST_SCALE);
            assert!(g.num_vertices() > 0, "{ds:?} empty");
            let r = bfs_levels(&g, ds.source());
            assert!(
                r.reached > g.num_vertices() / 4,
                "{ds:?} reaches only {} of {}",
                r.reached,
                g.num_vertices()
            );
        }
    }

    #[test]
    fn synthetic_full_scale_matches_paper_exactly() {
        let spec = Dataset::Synthetic.spec();
        assert_eq!(spec.vertices, 10_485_760);
        // don't build the 10M graph here; scale 0.001 keeps shape
        let g = Dataset::Synthetic.build(0.001);
        assert_eq!(g.degree_stats().max, 4);
    }

    #[test]
    fn social_degree_shapes_differ() {
        let gplus = Dataset::GplusCombined.build(0.2);
        let lj = Dataset::SocLiveJournal1.build(0.005);
        let sg = gplus.degree_stats();
        let sl = lj.degree_stats();
        // gplus is far denser per-vertex than LiveJournal.
        assert!(sg.avg > 5.0 * sl.avg, "gplus {} vs lj {}", sg.avg, sl.avg);
        // Both heavy-tailed.
        assert!(sg.std > sg.avg);
        assert!(sl.std > sl.avg);
    }

    #[test]
    fn roadmaps_sit_in_dimacs_degree_band() {
        for ds in [Dataset::RoadNY, Dataset::RoadLKS] {
            let g = ds.build(0.1);
            let s = g.degree_stats();
            assert!(
                (2.2..=3.0).contains(&s.avg),
                "{ds:?} avg {} out of band",
                s.avg
            );
            assert!(s.max <= 4);
        }
    }

    #[test]
    fn roadmaps_are_much_deeper_than_social() {
        let road = Dataset::RoadNY.build(0.1);
        let soc = Dataset::SocLiveJournal1.build(0.005);
        let rd = bfs_levels(&road, 0).max_level;
        let sd = bfs_levels(&soc, 0).max_level;
        assert!(rd > 10 * sd, "roadmap depth {rd} not ≫ social depth {sd}");
    }

    #[test]
    fn usa_is_deeper_than_ny() {
        // Compare at equal scale fraction so USA has ~90x the vertices.
        let ny = Dataset::RoadNY.build(0.05);
        let usa = Dataset::RoadUSA.build(0.005);
        let d_ny = bfs_levels(&ny, 0).max_level;
        let d_usa = bfs_levels(&usa, 0).max_level;
        assert!(d_usa > d_ny, "usa {d_usa} vs ny {d_ny}");
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn rejects_zero_scale() {
        let _ = Dataset::Synthetic.build(0.0);
    }

    #[test]
    fn spec_names_match_paper() {
        assert_eq!(Dataset::SocLiveJournal1.spec().name, "soc-LiveJournal1");
        assert_eq!(Dataset::RoadUSA.spec().name, "USA-road-d.USA");
        assert_eq!(Dataset::RodiniaGraph1M.spec().name, "graph1MW_6");
    }
}
