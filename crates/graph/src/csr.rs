//! Compressed Sparse Row (CSR) graph storage.
//!
//! The persistent-thread BFS kernels address the graph exactly the way the
//! paper's OpenCL kernels do (`Nodes[i].StartingEdgeIndex`, `Edges[e]`), so
//! CSR is the natural representation: a row-offset array (`Nodes`) and a
//! flat adjacency array (`Edges`). Vertex ids and edge offsets are `u32` —
//! the largest dataset in the paper (soc-LiveJournal1, 69M edges) fits
//! comfortably, and halving index width matters on a GPU.

use std::fmt;

/// Vertex identifier. `u32` matches the paper's task-token payload width.
pub type VertexId = u32;

/// An immutable directed graph in CSR form.
///
/// `row_offsets` has `n + 1` entries; the out-neighbours of vertex `v` are
/// `adjacency[row_offsets[v] as usize .. row_offsets[v + 1] as usize]`.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    row_offsets: Vec<u32>,
    adjacency: Vec<VertexId>,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Why a pair of raw CSR arrays was rejected by
/// [`Csr::from_parts_checked`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// `row_offsets` was empty (it must hold `n + 1` entries).
    EmptyOffsets,
    /// The final row offset does not equal the adjacency length.
    EdgeCountMismatch {
        /// Value of the last row offset.
        last_offset: u32,
        /// Length of the adjacency array.
        edges: usize,
    },
    /// `row_offsets[at] > row_offsets[at + 1]`.
    NonMonotonic {
        /// Index of the offending offset.
        at: usize,
    },
    /// `adjacency[at]` names a vertex `>= n`.
    TargetOutOfRange {
        /// Index of the offending adjacency entry.
        at: usize,
        /// The out-of-range vertex id.
        target: u32,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CsrError::EmptyOffsets => write!(f, "row_offsets must have n+1 entries"),
            CsrError::EdgeCountMismatch { last_offset, edges } => write!(
                f,
                "last row offset ({last_offset}) must equal edge count ({edges})"
            ),
            CsrError::NonMonotonic { at } => {
                write!(f, "row offsets must be non-decreasing (violated at {at})")
            }
            CsrError::TargetOutOfRange { at, target } => {
                write!(f, "adjacency entry {at} out of range (target {target})")
            }
        }
    }
}

impl std::error::Error for CsrError {}

impl Csr {
    /// Builds a CSR graph directly from its two arrays.
    ///
    /// Intended for *trusted* producers (the builders in this crate, whose
    /// construction makes the invariants hold): the O(1) shape checks run
    /// always, but the O(V + E) monotonicity and range scans run only
    /// under `debug_assertions` — on a hundreds-of-millions-of-edges graph
    /// they would otherwise double the cost of construction. Untrusted
    /// input (file parsers, network data) must go through
    /// [`Csr::from_parts_checked`] instead.
    ///
    /// # Panics
    /// Panics if the final offset does not equal `adjacency.len()`; in
    /// debug builds, additionally panics if the offsets are not
    /// monotonically non-decreasing or any adjacency entry is out of
    /// range.
    pub fn from_parts(row_offsets: Vec<u32>, adjacency: Vec<VertexId>) -> Self {
        assert!(!row_offsets.is_empty(), "row_offsets must have n+1 entries");
        assert_eq!(
            *row_offsets.last().unwrap() as usize,
            adjacency.len(),
            "last row offset must equal edge count"
        );
        debug_assert!(
            row_offsets.windows(2).all(|w| w[0] <= w[1]),
            "row offsets must be non-decreasing"
        );
        debug_assert!(
            adjacency
                .iter()
                .all(|&v| (v as usize) < row_offsets.len() - 1),
            "adjacency entry out of range"
        );
        Self {
            row_offsets,
            adjacency,
        }
    }

    /// Fully validated construction from raw arrays, for untrusted input:
    /// every invariant is checked in every build profile, and violations
    /// come back as a structured [`CsrError`] instead of a panic.
    pub fn from_parts_checked(
        row_offsets: Vec<u32>,
        adjacency: Vec<VertexId>,
    ) -> Result<Self, CsrError> {
        if row_offsets.is_empty() {
            return Err(CsrError::EmptyOffsets);
        }
        let last = *row_offsets.last().unwrap();
        if last as usize != adjacency.len() {
            return Err(CsrError::EdgeCountMismatch {
                last_offset: last,
                edges: adjacency.len(),
            });
        }
        if let Some(at) = row_offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(CsrError::NonMonotonic { at });
        }
        let n = (row_offsets.len() - 1) as u32;
        if let Some(at) = adjacency.iter().position(|&v| v >= n) {
            return Err(CsrError::TargetOutOfRange {
                at,
                target: adjacency[at],
            });
        }
        Ok(Self {
            row_offsets,
            adjacency,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// Out-degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Offset of the first out-edge of `v` in the adjacency array.
    #[inline]
    pub fn edge_start(&self, v: VertexId) -> u32 {
        self.row_offsets[v as usize]
    }

    /// Out-neighbours of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// The raw row-offset array (`n + 1` entries). This is what gets copied
    /// into simulated device memory as the `Nodes` buffer.
    #[inline]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The raw adjacency array — the device `Edges` buffer.
    #[inline]
    pub fn adjacency(&self) -> &[VertexId] {
        &self.adjacency
    }

    /// Degree statistics over out-degrees — the `Edges Per Vertex` columns
    /// of the paper's Tables 1 and 2 (min / max / avg / std).
    pub fn degree_stats(&self) -> DegreeStats {
        let n = self.num_vertices();
        if n == 0 {
            return DegreeStats::default();
        }
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut sum_sq = 0f64;
        for v in 0..n as u32 {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += u64::from(d);
            sum_sq += f64::from(d) * f64::from(d);
        }
        let avg = sum as f64 / n as f64;
        // Population standard deviation, matching how the paper's tables
        // summarize a full dataset rather than a sample.
        let var = (sum_sq / n as f64 - avg * avg).max(0.0);
        DegreeStats {
            min,
            max,
            avg,
            std: var.sqrt(),
        }
    }

    /// Returns the transpose (all edges reversed). Useful for turning a
    /// directed edge list into the symmetric graphs roadmaps use.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut builder = CsrBuilder::with_capacity(n, self.num_edges());
        for v in 0..n as u32 {
            for &w in self.neighbors(v) {
                builder.add_edge(w, v);
            }
        }
        builder.build()
    }
}

/// Summary of an out-degree distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: u32,
    /// Largest out-degree.
    pub max: u32,
    /// Mean out-degree.
    pub avg: f64,
    /// Population standard deviation of out-degrees.
    pub std: f64,
}

/// Incremental CSR construction from an unsorted edge list.
///
/// Edges are accumulated as `(src, dst)` pairs and counting-sorted by source
/// at [`CsrBuilder::build`] time, which is `O(V + E)` and never touches a
/// comparison sort — important for the 58M-edge USA roadmap.
///
/// ```
/// use ptq_graph::CsrBuilder;
///
/// let mut b = CsrBuilder::new(3);
/// b.add_edge(0, 2);
/// b.add_edge(0, 1);
/// b.add_undirected_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.neighbors(0), &[2, 1]); // insertion order kept
/// assert_eq!(g.degree(1), 1);
/// assert_eq!(g.num_edges(), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder and pre-reserves space for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Number of vertices the finished graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `src -> dst`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push((src, dst));
    }

    /// Adds both `a -> b` and `b -> a`.
    pub fn add_undirected_edge(&mut self, a: VertexId, b: VertexId) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Grows the vertex count (never shrinks).
    pub fn ensure_vertices(&mut self, n: usize) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Finishes construction. Within a source vertex, edges keep insertion
    /// order (the counting sort is stable), so generators produce
    /// deterministic adjacency layouts.
    pub fn build(self) -> Csr {
        let n = self.num_vertices;
        let mut counts = vec![0u32; n + 1];
        for &(src, _) in &self.edges {
            counts[src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut cursor = counts;
        let mut adjacency = vec![0u32; self.edges.len()];
        for &(src, dst) in &self.edges {
            let slot = cursor[src as usize];
            adjacency[slot as usize] = dst;
            cursor[src as usize] += 1;
        }
        Csr {
            row_offsets,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn builder_counts_and_offsets() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.row_offsets(), &[0, 2, 3, 4, 4]);
    }

    #[test]
    fn neighbors_preserve_insertion_order() {
        let g = diamond();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn degree_accessors() {
        let g = diamond();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edge_start(1), 2);
    }

    #[test]
    fn degree_stats_match_hand_computation() {
        let g = diamond();
        let s = g.degree_stats();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert!((s.avg - 1.0).abs() < 1e-12);
        // degrees 2,1,1,0 -> var = (4+1+1+0)/4 - 1 = 0.5
        assert!((s.std - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Csr::from_parts(vec![0], vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.degree_stats(), DegreeStats::default());
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        // transposing twice restores the original edge multiset
        let tt = t.transpose();
        assert_eq!(tt.num_edges(), g.num_edges());
        for v in 0..4u32 {
            let mut a: Vec<_> = tt.neighbors(v).to_vec();
            let mut b: Vec<_> = g.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn undirected_edge_adds_both_directions() {
        let mut b = CsrBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_out_of_range() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 2);
    }

    // The O(V + E) scans are debug-only on the trusted path; release
    // builds rely on `from_parts_checked` for untrusted input.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_bad_offsets() {
        let _ = Csr::from_parts(vec![0, 2, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn from_parts_rejects_mismatched_lengths() {
        let _ = Csr::from_parts(vec![0, 1], vec![]);
    }

    #[test]
    fn from_parts_checked_accepts_valid_input() {
        let g = Csr::from_parts_checked(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn from_parts_checked_reports_each_violation() {
        assert_eq!(
            Csr::from_parts_checked(vec![], vec![]),
            Err(CsrError::EmptyOffsets)
        );
        assert_eq!(
            Csr::from_parts_checked(vec![0, 1], vec![]),
            Err(CsrError::EdgeCountMismatch {
                last_offset: 1,
                edges: 0
            })
        );
        assert_eq!(
            Csr::from_parts_checked(vec![0, 2, 1], vec![0]),
            Err(CsrError::NonMonotonic { at: 1 })
        );
        assert_eq!(
            Csr::from_parts_checked(vec![0, 1], vec![5]),
            Err(CsrError::TargetOutOfRange { at: 0, target: 5 })
        );
        // Errors format into readable messages.
        assert!(CsrError::NonMonotonic { at: 1 }.to_string().contains("1"));
    }

    #[test]
    fn self_loops_and_parallel_edges_are_allowed() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
    }
}
