//! Self-contained seeded random number generator.
//!
//! The whole workspace builds offline with no crates.io dependencies, so
//! the dataset generators use this small SplitMix64 implementation
//! (Steele, Lea & Flood, OOPSLA 2014 — the `java.util.SplittableRandom`
//! mixer) instead of the `rand` crate. SplitMix64 passes BigCrush, is a
//! bijection of its 64-bit state (full period), and — critically for a
//! reproduction harness — its output is pinned here by golden-value
//! tests, so every generated dataset is byte-stable across platforms,
//! Rust versions, and future PRs.

/// A SplitMix64 generator. Construction from a seed is total: every seed
/// (including 0) is valid and yields a full-period sequence.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits (the high half of `next_u64`,
    /// which carries the best-mixed bits).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u32` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + ((u64::from(self.next_u32()) * span) >> 32) as u32
    }

    /// Uniform `u32` in the closed range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u32::MAX {
            return self.next_u32();
        }
        self.range_u32(lo, hi + 1)
    }

    /// Uniform `u64` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + ((u128::from(self.next_u64()) * span) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical SplitMix64 test vectors. If these ever change, every
    /// generated dataset changes with them — do not "fix" this test by
    /// updating the constants.
    #[test]
    fn golden_sequence_seed_0() {
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(rng.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn golden_sequence_seed_1() {
        let mut rng = SplitMix64::seed_from_u64(1);
        assert_eq!(rng.next_u64(), 0x910A_2DEC_8902_5CC1);
        assert_eq!(rng.next_u64(), 0xBEEB_8DA1_658E_EC67);
        assert_eq!(rng.next_u64(), 0xF893_A2EE_FB32_555E);
        assert_eq!(rng.next_u64(), 0x71C1_8690_EE42_C90B);
    }

    #[test]
    fn golden_sequence_arbitrary_seed() {
        let mut rng = SplitMix64::seed_from_u64(0xDEAD_BEEF);
        assert_eq!(rng.next_u64(), 0x4ADF_B90F_68C9_EB9B);
        assert_eq!(rng.next_u64(), 0xDE58_6A31_41A1_0922);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.range_u32(10, 20);
            assert!((10..20).contains(&v));
            let w = rng.range_u32_inclusive(1, 6);
            assert!((1..=6).contains(&w));
            let x = rng.range_u64(0, 3);
            assert!(x < 3);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.range_u32_inclusive(1, 6) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "die roll missed a face: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn u64_range_is_unbiased_enough_for_large_spans() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let n = 1u64 << 40;
        let mut below_half = 0;
        for _ in 0..10_000 {
            if rng.range_u64(0, n) < n / 2 {
                below_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&below_half));
    }

    #[test]
    fn seeds_decorrelate() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(100);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(101);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
