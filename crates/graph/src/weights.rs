//! Edge weights and a sequential shortest-path reference.
//!
//! The queue is a *task scheduler*, not a BFS engine: the SSSP driver in
//! `pt-bfs` exercises it with a weighted label-correcting workload. This
//! module supplies deterministic weight generation and the Dijkstra
//! reference used to validate every parallel run.

use crate::csr::{Csr, VertexId};
use crate::rng::SplitMix64;
use crate::UNREACHED;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministically generates one weight per edge, uniform in
/// `1..=max_weight`, aligned with the graph's adjacency array.
pub fn random_weights(graph: &Csr, max_weight: u32, seed: u64) -> Vec<u32> {
    assert!(max_weight >= 1, "weights must be positive");
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5e55_5e55_5e55_5e55);
    (0..graph.num_edges())
        .map(|_| rng.range_u32_inclusive(1, max_weight))
        .collect()
}

/// Sequential Dijkstra over `(graph, weights)` from `source`; returns the
/// exact distance array (`UNREACHED` = `u32::MAX` for unreachable).
///
/// # Panics
/// Panics if `weights.len() != graph.num_edges()` or the source is out of
/// range.
pub fn dijkstra(graph: &Csr, weights: &[u32], source: VertexId) -> Vec<u32> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![UNREACHED; n];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let start = graph.edge_start(v) as usize;
        for (offset, &w) in graph.neighbors(v).iter().enumerate() {
            let nd = d.saturating_add(weights[start + offset]);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Checks a candidate distance array against the Dijkstra reference.
pub fn validate_distances(
    graph: &Csr,
    weights: &[u32],
    source: VertexId,
    candidate: &[u32],
) -> Result<(), (VertexId, u32, u32)> {
    let reference = dijkstra(graph, weights, source);
    if candidate.len() != reference.len() {
        return Err((0, reference.len() as u32, candidate.len() as u32));
    }
    for (v, (&want, &got)) in reference.iter().zip(candidate).enumerate() {
        if want != got {
            return Err((v as VertexId, want, got));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::gen::erdos_renyi;

    fn weighted_diamond() -> (Csr, Vec<u32>) {
        // 0 -> 1 (1), 0 -> 2 (5), 1 -> 3 (1), 2 -> 3 (1)
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        (b.build(), vec![1, 5, 1, 1])
    }

    #[test]
    fn dijkstra_picks_shortest_route() {
        let (g, w) = weighted_diamond();
        let dist = dijkstra(&g, &w, 0);
        assert_eq!(dist, vec![0, 1, 5, 2]);
    }

    #[test]
    fn unreachable_stays_unreached() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        let dist = dijkstra(&g, &[2], 0);
        assert_eq!(dist, vec![0, 2, UNREACHED]);
    }

    #[test]
    fn weights_are_deterministic_and_bounded() {
        let g = erdos_renyi(100, 400, 3);
        let a = random_weights(&g, 10, 7);
        let b = random_weights(&g, 10, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1..=10).contains(&w)));
        assert_ne!(a, random_weights(&g, 10, 8));
    }

    #[test]
    fn unit_weights_reduce_to_bfs_levels() {
        let g = erdos_renyi(200, 900, 5);
        let w = vec![1u32; g.num_edges()];
        let dist = dijkstra(&g, &w, 0);
        let bfs = crate::bfs::bfs_levels(&g, 0);
        assert_eq!(dist, bfs.levels);
    }

    #[test]
    fn validate_detects_corruption() {
        let (g, w) = weighted_diamond();
        let mut d = dijkstra(&g, &w, 0);
        assert!(validate_distances(&g, &w, 0, &d).is_ok());
        d[3] = 9;
        assert_eq!(validate_distances(&g, &w, 0, &d), Err((3, 2, 9)));
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_checked() {
        let (g, _) = weighted_diamond();
        let _ = dijkstra(&g, &[1, 2], 0);
    }
}
