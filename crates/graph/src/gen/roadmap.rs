//! Roadmap graph generator (DIMACS substitutes — paper Table 2, Fig 3d-f).
//!
//! The 9th-DIMACS road networks the paper uses are planar-ish graphs with
//! fanout between 2 and 3 (std < 1) and *enormous* BFS depth — the USA
//! graph is thousands of levels deep. That depth is what starves the
//! persistent threads: "Only the USA dataset saturates the Spectre … Thus,
//! insufficient data parallelism is a limiting factor in this category."
//!
//! A perturbed 2-D lattice reproduces this exactly: an `r × c` grid with
//! 4-neighbour connectivity has average degree just under 4; randomly
//! deleting a fraction of edges brings the mean into the observed 2.4–2.8
//! band with std ≈ 0.95, and BFS depth from a corner is `Θ(r + c)` — deep
//! and narrow, with level width growing only linearly (the diamond-shaped
//! wavefront of Figure 3d-f).

use crate::csr::{Csr, CsrBuilder, VertexId};
use crate::rng::SplitMix64;

/// Tuning knobs for [`roadmap`].
#[derive(Clone, Copy, Debug)]
pub struct RoadmapParams {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Probability of *keeping* each undirected lattice edge. 1.0 gives
    /// avg degree ≈ 4; the DIMACS band (2.4–2.8) needs 0.6–0.72.
    pub keep_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a perturbed-lattice road network (undirected: every kept edge
/// is stored in both directions, matching the DIMACS `.gr` files which list
/// each road segment twice).
///
/// To keep the graph connected despite deletions — road networks are
/// connected — a random spanning-tree skeleton (serpentine path through the
/// grid) is always kept; `keep_prob` applies to the remaining edges only.
///
/// # Panics
/// Panics if either dimension is zero or `keep_prob` is outside `[0, 1]`.
pub fn roadmap(params: RoadmapParams) -> Csr {
    let RoadmapParams {
        rows,
        cols,
        keep_prob,
        seed,
    } = params;
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    assert!(
        (0.0..=1.0).contains(&keep_prob),
        "keep_prob must be a probability"
    );
    let n = rows
        .checked_mul(cols)
        .expect("grid too large for usize arithmetic");
    assert!(n <= u32::MAX as usize, "grid exceeds u32 vertex ids");

    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0add_0add_0add_0add);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = CsrBuilder::with_capacity(n, 4 * n);

    for r in 0..rows {
        for c in 0..cols {
            // Horizontal edge to the right neighbour.
            if c + 1 < cols {
                // Serpentine skeleton: row-internal edges always kept.
                b.add_undirected_edge(id(r, c), id(r, c + 1));
            }
            // Vertical edge downwards.
            if r + 1 < rows {
                // Keep one vertical per row pair as skeleton (at the
                // serpentine turn column), the rest probabilistically.
                let turn_col = if r % 2 == 0 { cols - 1 } else { 0 };
                if c == turn_col || rng.gen_bool(keep_prob) {
                    b.add_undirected_edge(id(r, c), id(r + 1, c));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;

    fn grid(rows: usize, cols: usize, keep: f64) -> Csr {
        roadmap(RoadmapParams {
            rows,
            cols,
            keep_prob: keep,
            seed: 42,
        })
    }

    #[test]
    fn full_lattice_degree_stats() {
        let g = grid(50, 50, 1.0);
        let s = g.degree_stats();
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 2); // corners
        assert!(s.avg > 3.8, "avg {}", s.avg);
    }

    #[test]
    fn perturbed_lattice_matches_dimacs_band() {
        let g = grid(120, 120, 0.45);
        let s = g.degree_stats();
        assert!(
            (2.2..=3.0).contains(&s.avg),
            "avg degree {} outside DIMACS band",
            s.avg
        );
        assert!(s.std < 1.2, "std {} too large for a roadmap", s.std);
        assert!(s.max <= 4);
    }

    #[test]
    fn always_connected() {
        for seed in 0..5 {
            let g = roadmap(RoadmapParams {
                rows: 40,
                cols: 30,
                keep_prob: 0.1,
                seed,
            });
            let r = bfs_levels(&g, 0);
            assert_eq!(r.reached, 1200, "seed {seed} disconnected the grid");
        }
    }

    #[test]
    fn bfs_depth_scales_with_perimeter() {
        let g = grid(64, 64, 0.7);
        let r = bfs_levels(&g, 0);
        // Manhattan distance lower bound: depth >= rows + cols - 2.
        assert!(r.max_level >= 126, "depth {} too shallow", r.max_level);
        // Deleting verticals forces detours, but depth stays O(r*c/..): just
        // check it is far deeper than a social graph of the same size.
        assert!(r.max_level < 4096);
    }

    #[test]
    fn deterministic() {
        assert_eq!(grid(20, 20, 0.6), grid(20, 20, 0.6));
    }

    #[test]
    fn undirectedness() {
        let g = grid(10, 10, 0.5);
        for v in 0..g.num_vertices() as u32 {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "edge {v}->{w} missing reverse");
            }
        }
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid(1, 9, 0.0);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.max_level, 8);
        assert_eq!(r.reached, 9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_grid() {
        let _ = grid(0, 5, 1.0);
    }
}
