//! Erdős–Rényi-style random graphs for tests and property-based checks.

use crate::csr::{Csr, CsrBuilder, VertexId};
use crate::rng::SplitMix64;

/// Generates a directed G(n, m) random graph: exactly `m` edges with
/// independently uniform endpoints (self-loops and parallel edges allowed,
/// as in the multigraph variant — the BFS kernels must tolerate both).
///
/// # Panics
/// Panics if `n == 0`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n > 0, "need at least one vertex");
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xe6d0_5e6d_05e6_d05e);
    let mut b = CsrBuilder::with_capacity(n, m);
    for _ in 0..m {
        let src = rng.range_u32(0, n as u32);
        let dst = rng.range_u32(0, n as u32);
        b.add_edge(src as VertexId, dst as VertexId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 500, 9);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 100, 1), erdos_renyi(50, 100, 1));
        assert_ne!(erdos_renyi(50, 100, 1), erdos_renyi(50, 100, 2));
    }

    #[test]
    fn zero_edges_is_fine() {
        let g = erdos_renyi(10, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
