//! R-MAT recursive-matrix graph generator (Chakrabarti et al., 2004).
//!
//! The de-facto standard synthetic generator for graph-processing
//! benchmarks (Graph500 uses it): edges are placed by recursively
//! descending a 2^k × 2^k adjacency matrix with quadrant probabilities
//! `(a, b, c, d)`. Skewed parameters produce the power-law degree
//! distributions and tiny diameters of real social networks — a useful
//! alternative to [`super::social`] for stress-testing the scheduler.

use crate::csr::{Csr, CsrBuilder, VertexId};
use crate::rng::SplitMix64;

/// Parameters for [`rmat`].
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// log2 of the vertex count (n = 2^scale).
    pub scale: u32,
    /// Edges per vertex (total edges = n * edge_factor).
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ~1. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05).
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            scale: 10,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 1,
        }
    }
}

/// Generates an R-MAT graph.
///
/// # Panics
/// Panics if `scale` exceeds 31 or the quadrant probabilities are
/// degenerate.
pub fn rmat(params: RmatParams) -> Csr {
    let RmatParams {
        scale,
        edge_factor,
        a,
        b,
        c,
        seed,
    } = params;
    assert!(scale <= 31, "scale too large for u32 vertex ids");
    let d = 1.0 - a - b - c;
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "quadrant probabilities must be non-negative and sum to <= 1"
    );
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x12a7_12a7_12a7_12a7);
    let mut builder = CsrBuilder::with_capacity(n, m);
    for _ in 0..m {
        let mut src = 0u32;
        let mut dst = 0u32;
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            let r: f64 = rng.next_f64();
            if r < a {
                // upper-left: no bits set
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        builder.add_edge(src as VertexId, dst as VertexId);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;

    #[test]
    fn sizes_match_parameters() {
        let g = rmat(RmatParams {
            scale: 8,
            edge_factor: 8,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 2048);
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::default();
        assert_eq!(rmat(p), rmat(p));
        assert_ne!(rmat(p), rmat(RmatParams { seed: 2, ..p }));
    }

    #[test]
    fn skew_produces_heavy_tail() {
        let g = rmat(RmatParams {
            scale: 12,
            edge_factor: 16,
            ..Default::default()
        });
        let s = g.degree_stats();
        assert!(
            s.max as f64 > 8.0 * s.avg,
            "max {} should dwarf avg {}",
            s.max,
            s.avg
        );
    }

    #[test]
    fn low_vertex_ids_form_the_dense_core() {
        // With a = 0.57 the recursion biases both endpoints toward low
        // ids; vertex 0 sits in the densest corner and reaches most of
        // the graph in a few hops.
        let g = rmat(RmatParams {
            scale: 11,
            edge_factor: 16,
            ..Default::default()
        });
        let r = bfs_levels(&g, 0);
        assert!(r.reached > g.num_vertices() / 2);
        assert!(
            r.max_level <= 10,
            "rmat diameter too large: {}",
            r.max_level
        );
    }

    #[test]
    fn uniform_probabilities_give_uniformish_degrees() {
        let g = rmat(RmatParams {
            scale: 10,
            edge_factor: 8,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            seed: 9,
        });
        let s = g.degree_stats();
        assert!(s.std < s.avg, "uniform R-MAT should not be heavy-tailed");
    }

    #[test]
    #[should_panic(expected = "scale too large")]
    fn rejects_oversized_scale() {
        let _ = rmat(RmatParams {
            scale: 32,
            ..Default::default()
        });
    }
}
