//! Deterministic graph generators calibrated to the paper's dataset families.
//!
//! The evaluation environment has no network access to SNAP or the 9th
//! DIMACS challenge, so each dataset family is replaced by a generator that
//! reproduces the statistics the paper reports (Tables 1–2) and — more
//! importantly for the queue experiments — the *dynamic parallelism shape*
//! of Figure 3: how many vertices become available per BFS level.
//!
//! | family | generator | shape knobs |
//! |---|---|---|
//! | paper's synthetic | [`synthetic_tree`] | exact: fanout-4 tree, 10,485,760 vertices |
//! | SNAP social media | [`social`] | power-law fanout (huge std), shallow diameter |
//! | DIMACS roadmaps | [`roadmap`] | fanout 2–3, tiny std, very deep |
//! | Rodinia BFS inputs | [`rodinia`] | uniform degree 1..=2·avg, shallow |
//! | test graphs | [`erdos_renyi`] | uniform random |
//! | Graph500-style | [`rmat`] | recursive-matrix power law |
//! | scale headroom | [`giant`] | heap-tree skeleton + random extras, streamed |
//!
//! Every generator takes an explicit seed and produces identical graphs on
//! every run and platform (we rely only on the in-tree [`crate::rng::SplitMix64`]
//! with fixed seeds; its output is pinned by golden-value tests).

pub mod giant;
mod random;
mod rmat;
mod roadmap;
mod rodinia;
mod social;
mod synthetic;

pub use giant::{for_each_giant_edge, giant, giant_with_chunk};
pub use random::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use roadmap::{roadmap, RoadmapParams};
pub use rodinia::rodinia;
pub use social::{social, SocialParams};
pub use synthetic::synthetic_tree;
