//! The `giant` synthetic family: scale-headroom graphs built without
//! ever materializing an edge list (ROADMAP item 5).
//!
//! Every other generator in this crate accumulates `(src, dst)` pairs in
//! a [`CsrBuilder`](crate::CsrBuilder); at hundreds of millions of edges
//! that transient list alone costs gigabytes. The giant family instead
//! defines its edges as a *pure function* of `(seed, vertex)`: vertex `v`
//! emits its implicit binary-heap tree edges (`2v+1`, `2v+2` when in
//! range) followed by a per-vertex-seeded number of uniform random
//! extras. Because the stream is exactly replayable, it feeds the
//! two-pass [`build_streamed`](crate::stream::build_streamed) builder
//! with `O(chunk)` peak overhead — and the tree skeleton guarantees
//! every vertex is reachable from the root at depth `⌈log2 n⌉`, so BFS
//! from source 0 always covers the whole graph.

use crate::csr::{Csr, VertexId};
use crate::rng::SplitMix64;
use crate::stream::{build_streamed, DEFAULT_CHUNK_EDGES};

/// SplitMix64's odd golden-ratio increment, reused here to spread vertex
/// ids into independent per-vertex seeds.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Drives `emit` over the giant family's edge stream for `(n, seed)`:
/// for each vertex in ascending order, the heap-tree children first,
/// then `uniform[0, 2 * extra_mean]` random extra targets. Pure in its
/// arguments — replaying it yields the identical sequence, which is what
/// lets [`giant_with_chunk`] stream it twice.
///
/// Exposed so benchmarks can drive the *same* edge sequence through the
/// in-memory `CsrBuilder` path and compare construction strategies on
/// byte-identical inputs.
pub fn for_each_giant_edge(
    n: usize,
    extra_mean: u32,
    seed: u64,
    emit: &mut dyn FnMut(VertexId, VertexId),
) {
    for v in 0..n as u32 {
        for child in [2 * v as u64 + 1, 2 * v as u64 + 2] {
            if child < n as u64 {
                emit(v, child as VertexId);
            }
        }
        // Independent per-vertex stream: extras for vertex v never depend
        // on how many edges earlier vertices emitted.
        let mut rng = SplitMix64::seed_from_u64(seed ^ (u64::from(v).wrapping_mul(GOLDEN)));
        let extras = rng.range_u32_inclusive(0, 2 * extra_mean);
        for _ in 0..extras {
            emit(v, rng.range_u32(0, n as u32));
        }
    }
}

/// Builds a giant-family graph with ~`1 + extra_mean` average out-degree
/// (the tree skeleton contributes `n - 1` edges, i.e. mean 1)
/// through the streamed two-pass builder, buffering `chunk_edges` edges
/// at a time (peak transient memory is `O(chunk_edges)`).
///
/// # Panics
/// Panics if `n == 0` or the edge count exceeds `u32::MAX`.
pub fn giant_with_chunk(n: usize, extra_mean: u32, seed: u64, chunk_edges: usize) -> Csr {
    assert!(n > 0, "need at least one vertex");
    build_streamed(n, chunk_edges, |emit| {
        for_each_giant_edge(n, extra_mean, seed, emit)
    })
}

/// [`giant_with_chunk`] at the default chunk size.
pub fn giant(n: usize, extra_mean: u32, seed: u64) -> Csr {
    giant_with_chunk(n, extra_mean, seed, DEFAULT_CHUNK_EDGES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;
    use crate::csr::CsrBuilder;

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(giant(500, 6, 1), giant(500, 6, 1));
        assert_ne!(giant(500, 6, 1), giant(500, 6, 2));
    }

    #[test]
    fn streamed_matches_in_memory_builder_on_same_stream() {
        let n = 777;
        for chunk in [1usize, 7, 4096, 1 << 20] {
            let streamed = giant_with_chunk(n, 6, 0xA11, chunk);
            let mut b = CsrBuilder::new(n);
            for_each_giant_edge(n, 6, 0xA11, &mut |s, d| b.add_edge(s, d));
            let reference = b.build();
            assert_eq!(streamed, reference, "chunk={chunk}");
        }
    }

    #[test]
    fn tree_skeleton_reaches_every_vertex() {
        let n = 1000;
        let g = giant(n, 6, 7);
        let result = bfs_levels(&g, 0);
        let depth_bound = usize::BITS - n.leading_zeros(); // ceil(log2(n+1))
        for v in 0..n as u32 {
            let level = result.levels[v as usize];
            assert!(level != u32::MAX, "vertex {v} unreached");
            assert!(level <= depth_bound, "vertex {v} deeper than the tree");
        }
    }

    #[test]
    fn average_degree_tracks_extra_mean() {
        let g = giant(20_000, 6, 3);
        let stats = g.degree_stats();
        // n-1 tree edges (avg 1) + uniform[0, 2*mean] extras (avg mean).
        assert!(
            (stats.avg - 7.0).abs() < 0.25,
            "average degree {} should be near 7",
            stats.avg
        );
    }
}
