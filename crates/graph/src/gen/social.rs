//! Social-media graph generator (SNAP substitutes — paper Table 1, Fig 3b-c).
//!
//! The two SNAP datasets the paper uses have heavy-tailed fanout:
//!
//! | dataset | vertices | edges | avg | max | std |
//! |---|---|---|---|---|---|
//! | gplus_combined | 107,614 | 30,494,866 | 283.4 | 49,041 | 1,245.2 |
//! | soc-LiveJournal1 | 4,847,571 | 68,993,773 | 14.2 | 20,293 | 36.1 |
//!
//! What matters for the queue experiments is (a) the heavy-tailed degree
//! distribution — a handful of hubs enqueue enormous batches, exactly the
//! case the arbitrary-n property targets — and (b) a shallow BFS (social
//! graphs have small diameters), so parallelism ramps up within a few
//! levels (Figure 3b/3c). We sample out-degrees from a truncated discrete
//! Pareto tuned to hit a target mean, then attach edge endpoints with
//! preferential bias so high-degree vertices are also *discovered* early,
//! keeping the diameter small.

use crate::csr::{Csr, CsrBuilder, VertexId};
use crate::rng::SplitMix64;

/// Tuning knobs for [`social`].
#[derive(Clone, Copy, Debug)]
pub struct SocialParams {
    /// Number of vertices.
    pub vertices: usize,
    /// Target mean out-degree (the generator lands within a few percent).
    pub avg_degree: f64,
    /// Pareto tail exponent; smaller = heavier tail = larger std.
    /// gplus-like graphs need ~1.6, LiveJournal-like ~2.2.
    pub alpha: f64,
    /// Hard cap on a single vertex's out-degree.
    pub max_degree: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a heavy-tailed directed graph with the given parameters.
///
/// Endpoint selection mixes 50% uniform targets with 50% "preferential"
/// targets drawn from the low vertex ids (which receive the largest degree
/// draws), producing the hub-and-spoke reachability of real social graphs.
///
/// # Panics
/// Panics if `vertices == 0` or `avg_degree <= 0`.
pub fn social(params: SocialParams) -> Csr {
    let SocialParams {
        vertices,
        avg_degree,
        alpha,
        max_degree,
        seed,
    } = params;
    assert!(vertices > 0, "need at least one vertex");
    assert!(avg_degree > 0.0, "average degree must be positive");
    assert!(alpha > 1.0, "pareto tail needs alpha > 1 for a finite mean");

    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5050_c1a1_dead_beef);

    // Discrete Pareto: P(X >= k) = (x_m / k)^alpha. The mean of the
    // continuous Pareto is x_m * alpha / (alpha - 1); solve for x_m to hit
    // the requested mean, then sample by inverse transform.
    let x_m = avg_degree * (alpha - 1.0) / alpha;
    let mut degrees = vec![0u32; vertices];
    for d in degrees.iter_mut() {
        let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
        let raw = x_m / u.powf(1.0 / alpha);
        *d = (raw.round() as u64).min(u64::from(max_degree)) as u32;
    }
    // Plant the biggest draws on the lowest vertex ids so "preferential"
    // endpoint selection below can simply target small ids.
    degrees.sort_unstable_by(|a, b| b.cmp(a));

    let total_edges: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
    let mut b = CsrBuilder::with_capacity(vertices, total_edges as usize);
    let n = vertices as u64;
    for (v, &deg) in degrees.iter().enumerate() {
        for _ in 0..deg {
            let dst = if rng.gen_bool(0.5) {
                // Preferential: quadratic bias toward low ids (hubs).
                let r: f64 = rng.next_f64();
                ((r * r * n as f64) as u64).min(n - 1)
            } else {
                rng.range_u64(0, n)
            };
            b.add_edge(v as VertexId, dst as VertexId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;

    fn small_params() -> SocialParams {
        SocialParams {
            vertices: 20_000,
            avg_degree: 14.0,
            alpha: 1.8,
            max_degree: 2_000,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = social(small_params());
        let b = social(small_params());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = social(small_params());
        let b = social(SocialParams {
            seed: 8,
            ..small_params()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn mean_degree_is_near_target() {
        let g = social(small_params());
        let s = g.degree_stats();
        assert!(
            (s.avg - 14.0).abs() / 14.0 < 0.25,
            "avg degree {} too far from 14",
            s.avg
        );
    }

    #[test]
    fn degree_std_exceeds_mean_like_social_graphs() {
        // Both paper datasets have std > avg (heavy tail).
        let g = social(small_params());
        let s = g.degree_stats();
        assert!(s.std > s.avg, "std {} <= avg {}", s.std, s.avg);
    }

    #[test]
    fn bfs_from_hub_is_shallow_and_wide() {
        let g = social(small_params());
        // Vertex 0 holds the largest degree draw — the natural BFS source.
        let r = bfs_levels(&g, 0);
        assert!(r.reached > g.num_vertices() / 2, "reached {}", r.reached);
        assert!(r.max_level <= 10, "social graph too deep: {}", r.max_level);
    }

    #[test]
    fn max_degree_cap_is_respected() {
        let g = social(SocialParams {
            max_degree: 50,
            ..small_params()
        });
        assert!(g.degree_stats().max <= 50);
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn rejects_heavy_alpha() {
        let _ = social(SocialParams {
            alpha: 0.9,
            ..small_params()
        });
    }
}
