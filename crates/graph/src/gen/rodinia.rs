//! Rodinia-style BFS input generator (paper §6.4.2, Table 6).
//!
//! Rodinia's BFS ships a `graphgen` tool that assigns every vertex a degree
//! drawn uniformly from `1..=max_degree` and picks edge targets uniformly
//! at random. Its three published inputs — `graph4096`, `graph65536`, and
//! `graph1MW_6` — use `max_degree = 6` (the `_6` suffix), giving an average
//! degree of 3.5 and, crucially, a *shallow* traversal: the paper notes
//! "None of the three datasets has more than 11 levels, and have good
//! dynamic parallelism, especially for the largest dataset."

use crate::csr::{Csr, CsrBuilder, VertexId};
use crate::rng::SplitMix64;

/// Generates a Rodinia-style uniform random graph with `n` vertices whose
/// out-degrees are uniform in `1..=max_degree`.
///
/// # Panics
/// Panics if `n == 0` or `max_degree == 0`.
pub fn rodinia(n: usize, max_degree: u32, seed: u64) -> Csr {
    assert!(n > 0, "need at least one vertex");
    assert!(max_degree > 0, "max_degree must be positive");
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0d1a_0000_1a2b_c0de);
    let mut b = CsrBuilder::with_capacity(n, n * (max_degree as usize + 1) / 2);
    for v in 0..n as u32 {
        let deg = rng.range_u32_inclusive(1, max_degree);
        for _ in 0..deg {
            let dst = rng.range_u32(0, n as u32);
            b.add_edge(v as VertexId, dst);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;

    #[test]
    fn degree_bounds_hold() {
        let g = rodinia(5000, 6, 1);
        let s = g.degree_stats();
        assert!(s.min >= 1);
        assert!(s.max <= 6);
        assert!((s.avg - 3.5).abs() < 0.2, "avg {}", s.avg);
    }

    #[test]
    fn traversal_is_shallow_like_rodinia_inputs() {
        let g = rodinia(65536, 6, 2);
        let r = bfs_levels(&g, 0);
        assert!(
            r.max_level <= 16,
            "depth {} far exceeds Rodinia's 11",
            r.max_level
        );
        assert!(r.reached as f64 > 0.9 * 65536.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(rodinia(1000, 6, 3), rodinia(1000, 6, 3));
        assert_ne!(rodinia(1000, 6, 3), rodinia(1000, 6, 4));
    }

    #[test]
    fn single_vertex() {
        let g = rodinia(1, 6, 0);
        assert_eq!(g.num_vertices(), 1);
        // all edges are self-loops
        assert!(g.neighbors(0).iter().all(|&w| w == 0));
    }
}
