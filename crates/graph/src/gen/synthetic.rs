//! The paper's synthetic saturating dataset (§5.2, Figure 3a).
//!
//! "we constructed a synthetic dataset designed to keep all persistent
//! threads busy … 10,485,760 vertices, with a fanout of 4 edges per vertex.
//! After the first 8 levels, both the Spectre and Fiji GPUs are fully
//! saturated."
//!
//! A complete fanout-`f` tree truncated at `n` vertices has exactly that
//! profile: level `l` holds `f^l` vertices until the vertex budget runs
//! out, so after `log_f(threads)` levels every persistent thread stays
//! busy and queue-empty exceptions vanish — which is precisely what the
//! paper wants this dataset to isolate (atomic contention without idle
//! threads).

use crate::csr::{Csr, CsrBuilder, VertexId};

/// Builds the truncated complete `fanout`-ary tree with `n` vertices.
/// Vertex `v`'s children are `fanout*v + 1 ..= fanout*v + fanout` (when in
/// range), the classic implicit-heap layout, so no RNG is involved at all.
///
/// # Panics
/// Panics if `n == 0` or `fanout == 0`.
pub fn synthetic_tree(n: usize, fanout: u32) -> Csr {
    assert!(n > 0, "tree needs at least the root");
    assert!(fanout > 0, "fanout must be positive");
    let mut b = CsrBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 0..n as u64 {
        for c in 0..u64::from(fanout) {
            let child = v * u64::from(fanout) + 1 + c;
            if child >= n as u64 {
                break;
            }
            b.add_edge(v as VertexId, child as VertexId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_levels;
    use crate::profile::level_profile;

    #[test]
    fn full_tree_has_n_minus_1_edges() {
        let g = synthetic_tree(1 + 4 + 16, 4);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn truncation_stops_at_vertex_budget() {
        let g = synthetic_tree(7, 4); // root + 4 children + 2 grandchildren
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.neighbors(1), &[5, 6]);
    }

    #[test]
    fn every_vertex_is_reached_from_root() {
        let g = synthetic_tree(1000, 4);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.reached, 1000);
    }

    #[test]
    fn level_widths_are_powers_of_fanout() {
        let g = synthetic_tree(1 + 3 + 9 + 27, 3);
        let p = level_profile(&g, 0);
        assert_eq!(p.counts, vec![1, 3, 9, 27]);
    }

    #[test]
    fn saturates_after_log_levels_like_the_paper() {
        // Paper: fanout 4, saturation of 2048 threads after ~6 levels
        // (4^6 = 4096 > 2048).
        let g = synthetic_tree(1_000_000, 4);
        let p = level_profile(&g, 0);
        assert!(p.counts[6] >= 2048);
        assert!(p.counts[5] < 2048 * 2);
    }

    #[test]
    fn fanout_one_is_a_path() {
        let g = synthetic_tree(5, 1);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.max_level, 4);
    }

    #[test]
    fn single_vertex_tree() {
        let g = synthetic_tree(1, 4);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least the root")]
    fn zero_vertices_rejected() {
        let _ = synthetic_tree(0, 4);
    }
}
