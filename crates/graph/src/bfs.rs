//! Sequential reference BFS.
//!
//! Every simulated or multi-threaded BFS run in this workspace is validated
//! against this implementation: the parallel kernels must produce exactly
//! the same level (cost) array. The paper's BFS stores per-vertex `Costs`,
//! with the source at cost 0; unreached vertices keep [`crate::UNREACHED`].

use crate::csr::{Csr, VertexId};
use crate::UNREACHED;
use std::collections::VecDeque;

/// Outcome of a BFS traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// `levels[v]` is the BFS depth of `v`, or [`UNREACHED`].
    pub levels: Vec<u32>,
    /// Number of vertices reached (including the source).
    pub reached: usize,
    /// Depth of the deepest reached vertex.
    pub max_level: u32,
}

/// Runs a textbook queue-based BFS from `source` and returns per-vertex
/// levels.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_levels(graph: &Csr, source: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    let mut levels = vec![UNREACHED; n];
    let mut queue = VecDeque::new();
    levels[source as usize] = 0;
    queue.push_back(source);
    let mut reached = 1usize;
    let mut max_level = 0u32;
    while let Some(v) = queue.pop_front() {
        let next = levels[v as usize] + 1;
        for &w in graph.neighbors(v) {
            if levels[w as usize] == UNREACHED {
                levels[w as usize] = next;
                max_level = max_level.max(next);
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    BfsResult {
        levels,
        reached,
        max_level,
    }
}

/// Checks that `candidate` is a valid BFS level assignment for `graph` from
/// `source`, i.e. identical to the reference result. Returns the first
/// discrepancy as `Err((vertex, expected, actual))`.
pub fn validate_levels(
    graph: &Csr,
    source: VertexId,
    candidate: &[u32],
) -> Result<(), (VertexId, u32, u32)> {
    let reference = bfs_levels(graph, source);
    if candidate.len() != reference.levels.len() {
        return Err((0, reference.levels.len() as u32, candidate.len() as u32));
    }
    for (v, (&expect, &got)) in reference.levels.iter().zip(candidate).enumerate() {
        if expect != got {
            return Err((v as VertexId, expect, got));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    fn path(n: usize) -> Csr {
        let mut b = CsrBuilder::new(n);
        for i in 0..n - 1 {
            b.add_undirected_edge(i as u32, i as u32 + 1);
        }
        b.build()
    }

    #[test]
    fn path_levels_are_distances() {
        let g = path(5);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.reached, 5);
        assert_eq!(r.max_level, 4);
    }

    #[test]
    fn bfs_from_middle_of_path() {
        let g = path(5);
        let r = bfs_levels(&g, 2);
        assert_eq!(r.levels, vec![2, 1, 0, 1, 2]);
        assert_eq!(r.max_level, 2);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        let r = bfs_levels(&g, 0);
        assert_eq!(r.levels, vec![0, 1, UNREACHED, UNREACHED]);
        assert_eq!(r.reached, 2);
    }

    #[test]
    fn directed_edges_are_one_way() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(bfs_levels(&g, 1).levels, vec![UNREACHED, 0]);
    }

    #[test]
    fn shortest_path_wins_with_multiple_routes() {
        // 0 -> 1 -> 2 and 0 -> 2 directly: level(2) must be 1.
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(bfs_levels(&g, 0).levels, vec![0, 1, 1]);
    }

    #[test]
    fn validate_accepts_reference_and_rejects_corruption() {
        let g = path(4);
        let r = bfs_levels(&g, 0);
        assert!(validate_levels(&g, 0, &r.levels).is_ok());
        let mut bad = r.levels.clone();
        bad[3] = 7;
        assert_eq!(validate_levels(&g, 0, &bad), Err((3, 3, 7)));
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let g = path(4);
        assert!(validate_levels(&g, 0, &[0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_panics_on_bad_source() {
        let g = path(2);
        let _ = bfs_levels(&g, 9);
    }

    #[test]
    fn self_loop_does_not_break_bfs() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(bfs_levels(&g, 0).levels, vec![0, 1]);
    }
}
