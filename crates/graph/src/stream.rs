//! Streamed two-pass CSR construction.
//!
//! [`CsrBuilder`](crate::CsrBuilder) materializes the full `(src, dst)`
//! edge list before counting-sorting it — an extra 8 bytes per edge that
//! dominates peak memory once graphs reach hundreds of millions of edges
//! (ROADMAP item 5: a 134M-edge graph costs ~1 GiB of transient edge
//! list on top of the ~600 MiB CSR it produces). [`build_streamed`]
//! removes that transient entirely: the caller replays the edge stream
//! twice, the first pass counts degrees, the second scatters adjacency
//! through per-vertex cursors as the edges arrive, so the only
//! transient state is the `O(V)` cursor array the build needs anyway.
//!
//! The result is **byte-identical** to `CsrBuilder::build` on the same
//! edge sequence: both are stable counting sorts, and the stream replays
//! in the same order in both passes. A property test pins this across
//! chunk sizes (see `tests` below and the `prop_stream` integration
//! test).
//!
//! The stream is any closure that can be driven twice — an in-memory
//! slice, a deterministic generator (see [`crate::gen::giant`]), or a
//! file parser that reopens its input per pass:
//!
//! ```no_run
//! use ptq_graph::stream::{build_streamed, DEFAULT_CHUNK_EDGES};
//!
//! let path = "graph.edges";
//! let graph = build_streamed(1_000_000, DEFAULT_CHUNK_EDGES, |emit| {
//!     // Reopen and re-parse the file on each pass.
//!     let text = std::fs::read_to_string(path).unwrap();
//!     for line in text.lines() {
//!         let mut it = line.split_whitespace();
//!         let src: u32 = it.next().unwrap().parse().unwrap();
//!         let dst: u32 = it.next().unwrap().parse().unwrap();
//!         emit(src, dst);
//!     }
//! });
//! # let _ = graph;
//! ```

use crate::csr::{Csr, VertexId};

/// Default fill-pass buffering bound: 1M edges (8 MiB of pairs were it
/// ever buffered) — kept as the conventional value callers pass for
/// `chunk_edges`.
pub const DEFAULT_CHUNK_EDGES: usize = 1 << 20;

/// Builds a CSR graph from an edge stream replayed twice, buffering at
/// most `chunk_edges` edges at a time during the fill pass (the current
/// implementation scatters in place and buffers none — the parameter is
/// the contract's ceiling, and the output is identical for any value).
///
/// `replay` is invoked exactly twice and must emit the *same* edge
/// sequence both times (same edges, same order); divergence is detected
/// and panics rather than producing a silently wrong graph. Self-loops
/// and parallel edges are allowed, exactly as in `CsrBuilder`.
///
/// # Panics
/// Panics if `chunk_edges` is zero, if an edge endpoint is out of range,
/// if the total edge count exceeds `u32::MAX` (CSR offsets are 32-bit),
/// or if the two passes disagree.
pub fn build_streamed<F>(num_vertices: usize, chunk_edges: usize, mut replay: F) -> Csr
where
    F: FnMut(&mut dyn FnMut(VertexId, VertexId)),
{
    assert!(chunk_edges > 0, "chunk_edges must be positive");
    let n = num_vertices;

    // Pass 1: count degrees. Totals are accumulated in u64 so an
    // over-long stream is reported as "too many edges", not as a silent
    // u32 wrap.
    let mut counts = vec![0u32; n + 1];
    let mut total: u64 = 0;
    replay(&mut |src, dst| {
        assert!(
            (src as usize) < n && (dst as usize) < n,
            "edge ({src}, {dst}) out of range for {n} vertices"
        );
        counts[src as usize + 1] += 1;
        total += 1;
    });
    assert!(
        total <= u32::MAX as u64,
        "edge count {total} exceeds u32 CSR offsets"
    );

    // Exclusive prefix sum — the same loop as `CsrBuilder::build`, so the
    // offsets (and therefore the stable scatter below) match it exactly.
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let row_offsets = counts.clone();
    let mut cursor = counts;
    let mut adjacency = vec![0u32; total as usize];

    // Pass 2: replay the identical stream and scatter each edge through
    // the per-vertex cursors as it arrives. The scatter is stable and
    // sees the stream in the same order as an in-memory counting sort
    // would, so `adjacency` comes out byte-identical for *any*
    // `chunk_edges`. Profiling the giant pipeline showed an
    // intermediate chunk buffer here is pure overhead — an 8-byte copy
    // plus a flush branch per edge with nothing to amortize (the
    // scatter is one random write per edge either way) — so
    // `chunk_edges` survives only as the API's upper bound on transient
    // buffering; the implementation buffers nothing.
    let mut filled: u64 = 0;
    replay(&mut |src, dst| {
        filled += 1;
        let slot = cursor[src as usize];
        debug_assert!(
            slot < row_offsets[src as usize + 1],
            "edge stream changed between passes (vertex {src} overfilled)"
        );
        adjacency[slot as usize] = dst;
        cursor[src as usize] = slot + 1;
    });

    assert_eq!(
        filled, total,
        "edge stream changed between passes (edge count)"
    );
    assert!(
        cursor[..n] == row_offsets[1..],
        "edge stream changed between passes (per-vertex degrees)"
    );
    Csr::from_parts(row_offsets, adjacency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::rng::SplitMix64;

    /// Replays a slice as an edge stream.
    fn replay_slice<'a>(
        edges: &'a [(u32, u32)],
    ) -> impl FnMut(&mut dyn FnMut(VertexId, VertexId)) + 'a {
        move |emit| {
            for &(s, d) in edges {
                emit(s, d);
            }
        }
    }

    fn reference(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut b = CsrBuilder::with_capacity(n, edges.len());
        for &(s, d) in edges {
            b.add_edge(s, d);
        }
        b.build()
    }

    #[test]
    fn matches_in_memory_builder_across_chunk_sizes() {
        // Random multigraph with self-loops, parallel edges, and empty
        // vertices (n is larger than the number of distinct sources).
        let mut rng = SplitMix64::seed_from_u64(0xC5A);
        let n = 97;
        let edges: Vec<(u32, u32)> = (0..1013)
            .map(|_| (rng.range_u32(0, 50), rng.range_u32(0, n as u32)))
            .collect();
        let want = reference(n, &edges);
        for chunk in [1usize, 7, 1013, 4096, usize::MAX >> 1] {
            let got = build_streamed(n, chunk, replay_slice(&edges));
            assert_eq!(got.row_offsets(), want.row_offsets(), "chunk={chunk}");
            assert_eq!(got.adjacency(), want.adjacency(), "chunk={chunk}");
        }
    }

    #[test]
    fn empty_graph_and_empty_stream() {
        let g = build_streamed(0, 8, |_emit| {});
        assert_eq!(g.num_vertices(), 0);
        let g = build_streamed(5, 8, |_emit| {});
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_and_insertion_order_preserved() {
        let edges = [(0, 0), (0, 2), (0, 1), (2, 2)];
        let g = build_streamed(3, 2, replay_slice(&edges));
        assert_eq!(g.neighbors(0), &[0, 2, 1]);
        assert_eq!(g.neighbors(2), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let edges = [(0, 3)];
        let _ = build_streamed(3, 8, replay_slice(&edges));
    }

    #[test]
    #[should_panic(expected = "changed between passes")]
    fn detects_nondeterministic_streams() {
        let mut pass = 0;
        let _ = build_streamed(4, 8, move |emit| {
            pass += 1;
            emit(0, 1);
            if pass == 1 {
                emit(1, 2); // edge missing from the fill pass
            }
        });
    }
}
