//! Structural analysis utilities: connectivity, degree histograms, and
//! traversal-rate reporting.
//!
//! Used by the dataset-calibration reports (how closely a generated graph
//! matches its published counterpart goes beyond the four summary columns
//! of Tables 1–2) and by the benchmark harness for GTEPS figures.

use crate::bfs::bfs_levels;
use crate::csr::{Csr, VertexId};
use crate::UNREACHED;

/// Weakly connected components (edge direction ignored).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `component[v]` is the 0-based component id of `v` (ids are dense,
    /// assigned in order of discovery).
    pub component: Vec<u32>,
    /// Vertices per component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of weakly connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Computes weakly connected components with a union-find over all edges.
pub fn weakly_connected_components(graph: &Csr) -> Components {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            let grand = parent[parent[v as usize] as usize];
            parent[v as usize] = grand; // path halving
            v = grand;
        }
        v
    }

    for v in 0..n as u32 {
        for &w in graph.neighbors(v) {
            let rv = find(&mut parent, v);
            let rw = find(&mut parent, w);
            if rv != rw {
                parent[rw as usize] = rv;
            }
        }
    }

    let mut component = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for v in 0..n as u32 {
        let root = find(&mut parent, v);
        if component[root as usize] == u32::MAX {
            component[root as usize] = sizes.len() as u32;
            sizes.push(0);
        }
        let c = component[root as usize];
        component[v as usize] = c;
        sizes[c as usize] += 1;
    }
    Components { component, sizes }
}

/// Out-degree histogram in power-of-two buckets: `buckets[i]` counts
/// vertices with degree in `[2^(i-1)+1, 2^i]` (bucket 0 = degree 0,
/// bucket 1 = degree 1).
pub fn degree_histogram(graph: &Csr) -> Vec<usize> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..graph.num_vertices() as u32 {
        let d = graph.degree(v);
        let b = if d == 0 {
            0
        } else {
            (u32::BITS - (d - 1).leading_zeros()) as usize + 1
        };
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

/// Approximates the graph's effective diameter: the BFS depth from
/// `source`, re-rooted once at the deepest vertex found (a standard
/// double-sweep lower bound).
pub fn double_sweep_diameter(graph: &Csr, source: VertexId) -> u32 {
    let first = bfs_levels(graph, source);
    let farthest = first
        .levels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l != UNREACHED)
        .max_by_key(|(_, &l)| l)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(source);
    let second = bfs_levels(graph, farthest);
    first.max_level.max(second.max_level)
}

/// Extracts the largest weakly connected component as a standalone graph.
/// Returns the subgraph and, for each new vertex id, its original id —
/// useful for benchmarking on real datasets whose interesting structure
/// is one giant component plus debris.
pub fn largest_component_subgraph(graph: &Csr) -> (Csr, Vec<VertexId>) {
    let comps = weakly_connected_components(graph);
    let target = comps
        .sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let mut new_id = vec![u32::MAX; graph.num_vertices()];
    let mut original = Vec::new();
    for v in 0..graph.num_vertices() as u32 {
        if comps.component[v as usize] == target {
            new_id[v as usize] = original.len() as u32;
            original.push(v);
        }
    }
    let mut builder = crate::csr::CsrBuilder::new(original.len());
    for &v in &original {
        for &w in graph.neighbors(v) {
            // Within a weakly connected component every edge endpoint is
            // also in the component.
            builder.add_edge(new_id[v as usize], new_id[w as usize]);
        }
    }
    (builder.build(), original)
}

/// Traversed edges per second for a BFS that visited `edges` edges in
/// `seconds` — the standard GTEPS throughput metric (reported in
/// billions). Takes `u64` so giant-scale edge counts stay exact on
/// 32-bit `usize` hosts too.
pub fn gteps(edges: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    edges as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::gen::{erdos_renyi, roadmap, synthetic_tree, RoadmapParams};

    #[test]
    fn single_component_tree() {
        let g = synthetic_tree(500, 4);
        let c = weakly_connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 500);
    }

    #[test]
    fn disjoint_pieces_counted() {
        let mut b = CsrBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        // 4 and 5 isolated
        let g = b.build();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count(), 4);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 2]);
    }

    #[test]
    fn direction_is_ignored() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(2, 0); // only a back edge: still one component {0,2}
        let g = b.build();
        let c = weakly_connected_components(&g);
        assert_eq!(c.component[0], c.component[2]);
        assert_ne!(c.component[0], c.component[1]);
    }

    #[test]
    fn histogram_buckets_are_correct() {
        let mut b = CsrBuilder::new(4);
        // degrees: 0, 1, 2, 5
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        b.add_edge(2, 1);
        for _ in 0..5 {
            b.add_edge(3, 0);
        }
        let g = b.build();
        let h = degree_histogram(&g);
        assert_eq!(h[0], 1); // degree 0
        assert_eq!(h[1], 1); // degree 1
        assert_eq!(h[2], 1); // degree 2
        assert_eq!(h[4], 1); // degree 5 in (4, 8]
    }

    #[test]
    fn double_sweep_at_least_single_sweep() {
        let g = roadmap(RoadmapParams {
            rows: 12,
            cols: 30,
            keep_prob: 0.6,
            seed: 2,
        });
        // From the middle, the single sweep underestimates; the double
        // sweep must not be smaller.
        let mid = (6 * 30 + 15) as u32;
        let single = crate::bfs::bfs_levels(&g, mid).max_level;
        let double = double_sweep_diameter(&g, mid);
        assert!(double >= single);
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = CsrBuilder::new(7);
        // component A: 0-1-2 (triangle-ish), component B: 3-4, isolated: 5, 6
        b.add_undirected_edge(0, 1);
        b.add_edge(1, 2);
        b.add_undirected_edge(3, 4);
        let g = b.build();
        let (sub, original) = largest_component_subgraph(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(original, vec![0, 1, 2]);
        assert_eq!(sub.num_edges(), 3);
        // relabeled edges preserved
        assert_eq!(sub.neighbors(1), &[0, 2]);
    }

    #[test]
    fn gteps_math() {
        assert!((gteps(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(gteps(100, 0.0), 0.0);
    }

    #[test]
    fn random_graph_components_cover_all_vertices() {
        let g = erdos_renyi(300, 200, 5);
        let c = weakly_connected_components(&g);
        assert_eq!(c.component.len(), 300);
        let total: usize = c.sizes.iter().sum();
        assert_eq!(total, 300);
        assert!(c.component.iter().all(|&x| (x as usize) < c.count()));
    }
}
