//! Graph substrate for the ICPP'19 retry-free / arbitrary-n queue reproduction.
//!
//! The paper evaluates its concurrent queue with a persistent-thread top-down
//! BFS over six graph datasets (one synthetic, two social-media graphs from
//! SNAP, three DIMACS roadmaps) plus the datasets shipped with the Rodinia
//! and CHAI benchmark suites. This crate provides everything those
//! experiments need on the data side:
//!
//! * [`csr::Csr`] — compressed sparse row storage with degree statistics
//!   (the `Edges Per Vertex` columns of the paper's Tables 1 and 2),
//! * [`gen`] — deterministic generators calibrated to each dataset family's
//!   published statistics (fanout distribution, depth, vertex/edge counts),
//! * [`io`] — readers/writers for the DIMACS `.gr`, SNAP edge-list, and
//!   Rodinia BFS file formats so the real datasets can be dropped in,
//! * [`bfs`] — a sequential reference BFS used to validate every parallel
//!   run,
//! * [`profile`] — per-level dynamic-parallelism profiles (Figure 3), and
//! * [`stream`] — two-pass chunked CSR construction that never
//!   materializes an edge list, for the giant scale-headroom datasets.
//!
//! All generators take explicit seeds and are fully deterministic.

pub mod analysis;
pub mod bfs;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod profile;
pub mod propagate;
pub mod rng;
pub mod stream;
pub mod weights;

pub use analysis::{degree_histogram, gteps, weakly_connected_components, Components};
pub use bfs::{bfs_levels, validate_levels, BfsResult};
pub use csr::{Csr, CsrBuilder, CsrError, DegreeStats, VertexId};
pub use datasets::{Dataset, DatasetSpec};
pub use profile::{level_profile, LevelProfile};
pub use propagate::{decay_fixpoint, min_label_fixpoint, validate_contributions, validate_labels};
pub use rng::SplitMix64;
pub use stream::build_streamed;
pub use weights::{dijkstra, random_weights, validate_distances};

/// Sentinel level for vertices not reached by a BFS.
pub const UNREACHED: u32 = u32::MAX;
