//! SNAP edge-list format (<https://snap.stanford.edu/data>).
//!
//! ```text
//! # Directed graph: soc-LiveJournal1.txt
//! # Nodes: 4847571 Edges: 68993773
//! 0    1
//! 0    2
//! ```
//!
//! Lines starting with `#` are comments; every other line is a
//! whitespace-separated `src dst` pair. SNAP ids are arbitrary (not
//! necessarily dense), so the reader compacts them to `0..n` in first-seen
//! order, exactly as the paper's host code must have done to index its
//! `Nodes` array.

use super::ParseError;
use crate::csr::Csr;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Parses a SNAP edge list, remapping sparse ids densely in first-seen
/// order. Returns the graph and the dense→original id map.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Csr, Vec<u64>), ParseError> {
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut original: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let src = parse_id(parts.next(), lineno)?;
        let dst = parse_id(parts.next(), lineno)?;
        if parts.next().is_some() {
            return Err(ParseError::malformed(lineno, "more than two columns"));
        }
        let mut dense = |id: u64| -> u32 {
            *remap.entry(id).or_insert_with(|| {
                original.push(id);
                (original.len() - 1) as u32
            })
        };
        let s = dense(src);
        let d = dense(dst);
        edges.push((s, d));
    }
    let mut builder = crate::csr::CsrBuilder::with_capacity(original.len(), edges.len());
    for (s, d) in edges {
        builder.add_edge(s, d);
    }
    Ok((builder.build(), original))
}

/// Writes `graph` as a SNAP edge list using dense vertex ids.
pub fn write_edge_list<W: Write>(graph: &Csr, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# Directed graph; Nodes: {} Edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in 0..graph.num_vertices() as u32 {
        for &w in graph.neighbors(v) {
            writeln!(writer, "{v}\t{w}")?;
        }
    }
    Ok(())
}

fn parse_id(tok: Option<&str>, lineno: usize) -> Result<u64, ParseError> {
    let tok = tok.ok_or_else(|| ParseError::malformed(lineno, "missing vertex id"))?;
    tok.parse()
        .map_err(|_| ParseError::malformed(lineno, format!("invalid vertex id {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_and_compacts_sparse_ids() {
        let text = "# header\n100\t7\n7\t100\n7\t9\n";
        let (g, orig) = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(orig, vec![100, 7, 9]);
        assert_eq!(g.neighbors(0), &[1]); // 100 -> 7
        assert_eq!(g.neighbors(1), &[0, 2]); // 7 -> 100, 7 -> 9
    }

    #[test]
    fn isolated_vertices_do_not_exist_in_edge_lists() {
        let (g, _) = read_edge_list(Cursor::new("0 1\n")).unwrap();
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn rejects_extra_columns() {
        let err = read_edge_list(Cursor::new("1 2 3\n")).unwrap_err();
        assert!(err.to_string().contains("more than two columns"));
    }

    #[test]
    fn rejects_garbage_ids() {
        let err = read_edge_list(Cursor::new("a b\n")).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
    }

    #[test]
    fn rejects_missing_destination() {
        let err = read_edge_list(Cursor::new("4\n")).unwrap_err();
        assert!(err.to_string().contains("missing vertex id"));
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::erdos_renyi(30, 90, 11);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = read_edge_list(Cursor::new(buf)).unwrap();
        // Re-reading may renumber, but vertex 0 appears first in both, and
        // edge count must match; compare via sorted degree sequences.
        assert_eq!(g2.num_edges(), g.num_edges());
        let mut d1: Vec<u32> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        // write_edge_list skips isolated vertices, so compare only non-zero.
        d1.retain(|&d| d > 0);
        let mut d2: Vec<u32> = (0..g2.num_vertices() as u32)
            .map(|v| g2.degree(v))
            .collect();
        d2.retain(|&d| d > 0);
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let (g, orig) = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert!(orig.is_empty());
    }
}
