//! Rodinia BFS input format (`graph4096.txt`, `graph65536.txt`,
//! `graph1MW_6.txt`).
//!
//! ```text
//! <n_vertices>
//! <edge_start> <degree>      (n_vertices lines: one per vertex)
//! <source_vertex>
//! <n_edges>
//! <dst> <weight>             (n_edges lines: one per edge)
//! ```
//!
//! This is essentially serialized CSR, which is why Rodinia's kernels (and
//! the paper's) can consume it directly. The reader returns the graph and
//! the designated BFS source vertex.

use super::ParseError;
use crate::csr::Csr;
use std::io::{BufRead, Write};

/// Parses a Rodinia BFS graph file; returns `(graph, source_vertex)`.
pub fn read_rodinia<R: BufRead>(reader: R) -> Result<(Csr, u32), ParseError> {
    let mut tokens = Tokens::new(reader);
    let n: usize = tokens.next_num("vertex count")?;
    let mut row_offsets = Vec::with_capacity(n + 1);
    let mut expected_start = 0u64;
    for _ in 0..n {
        let start: u64 = tokens.next_num("edge start")?;
        let degree: u64 = tokens.next_num("degree")?;
        if start != expected_start {
            return Err(ParseError::malformed(
                tokens.line,
                format!("non-contiguous edge start {start}, expected {expected_start}"),
            ));
        }
        row_offsets.push(start as u32);
        expected_start = start + degree;
    }
    row_offsets.push(expected_start as u32);
    let source: u32 = tokens.next_num("source vertex")?;
    let m: usize = tokens.next_num("edge count")?;
    if m as u64 != expected_start {
        return Err(ParseError::malformed(
            tokens.line,
            format!("edge count {m} disagrees with vertex records ({expected_start})"),
        ));
    }
    let mut adjacency = Vec::with_capacity(m);
    for _ in 0..m {
        let dst: u32 = tokens.next_num("edge destination")?;
        let _weight: u32 = tokens.next_num("edge weight")?;
        if dst as usize >= n {
            return Err(ParseError::malformed(
                tokens.line,
                format!("edge destination {dst} out of range"),
            ));
        }
        adjacency.push(dst);
    }
    if source as usize >= n {
        return Err(ParseError::malformed(
            tokens.line,
            format!("source vertex {source} out of range"),
        ));
    }
    Ok((Csr::from_parts(row_offsets, adjacency), source))
}

/// Writes `graph` in Rodinia BFS format with the given `source` (weights 1).
pub fn write_rodinia<W: Write>(graph: &Csr, source: u32, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{}", graph.num_vertices())?;
    for v in 0..graph.num_vertices() as u32 {
        writeln!(writer, "{} {}", graph.edge_start(v), graph.degree(v))?;
    }
    writeln!(writer, "\n{source}")?;
    writeln!(writer, "{}", graph.num_edges())?;
    for v in 0..graph.num_vertices() as u32 {
        for &w in graph.neighbors(v) {
            writeln!(writer, "{w} 1")?;
        }
    }
    Ok(())
}

/// Whitespace tokenizer tracking line numbers for error reporting.
struct Tokens<R> {
    reader: R,
    buf: Vec<String>,
    line: usize,
}

impl<R: BufRead> Tokens<R> {
    fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            line: 0,
        }
    }

    fn next_num<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, ParseError> {
        loop {
            if let Some(tok) = self.buf.pop() {
                return tok.parse().map_err(|_| {
                    ParseError::malformed(self.line, format!("invalid {what}: {tok:?}"))
                });
            }
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ParseError::malformed(
                    self.line,
                    format!("unexpected end of file while reading {what}"),
                ));
            }
            self.line += 1;
            self.buf
                .extend(line.split_ascii_whitespace().rev().map(str::to_owned));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rodinia as gen_rodinia;
    use std::io::Cursor;

    #[test]
    fn parses_hand_written_file() {
        let text = "3\n0 2\n2 1\n3 0\n\n0\n3\n1 1\n2 1\n0 1\n";
        let (g, src) = read_rodinia(Cursor::new(text)).unwrap();
        assert_eq!(src, 0);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn roundtrip() {
        let g = gen_rodinia(500, 6, 21);
        let mut buf = Vec::new();
        write_rodinia(&g, 3, &mut buf).unwrap();
        let (g2, src) = read_rodinia(Cursor::new(buf)).unwrap();
        assert_eq!(src, 3);
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_truncated_file() {
        let err = read_rodinia(Cursor::new("2\n0 1\n")).unwrap_err();
        assert!(err.to_string().contains("unexpected end of file"));
    }

    #[test]
    fn rejects_non_contiguous_offsets() {
        let text = "2\n0 1\n5 1\n0\n2\n0 1\n0 1\n";
        let err = read_rodinia(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("non-contiguous"));
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        let text = "1\n0 1\n0\n9\n0 1\n";
        let err = read_rodinia(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("disagrees"));
    }

    #[test]
    fn rejects_out_of_range_destination() {
        let text = "1\n0 1\n0\n1\n5 1\n";
        let err = read_rodinia(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_out_of_range_source() {
        let text = "1\n0 0\n7\n0\n";
        let err = read_rodinia(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("source vertex 7 out of range"));
    }
}
