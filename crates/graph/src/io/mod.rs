//! Readers and writers for the on-disk graph formats the paper's datasets
//! ship in, so the real files can replace the calibrated generators when
//! available:
//!
//! * [`dimacs`] — 9th DIMACS implementation challenge `.gr` format
//!   (`USA-road-d.*` roadmaps),
//! * [`snap`] — SNAP whitespace-separated edge lists (`gplus_combined.txt`,
//!   `soc-LiveJournal1.txt`),
//! * [`rodinia`] — the Rodinia BFS input format (`graph4096.txt`, …).
//!
//! All readers parse from any `BufRead`, report malformed input via
//! [`ParseError`] instead of panicking, and have matching writers used by
//! the round-trip tests.

pub mod dimacs;
pub mod rodinia;
pub mod snap;

use std::fmt;

/// Error raised by the graph file parsers.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a line number and description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl ParseError {
    pub(crate) fn malformed(line: usize, reason: impl Into<String>) -> Self {
        ParseError::Malformed {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "malformed input at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}
