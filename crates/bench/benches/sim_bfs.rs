//! Criterion benchmarks of the simulated persistent-thread BFS.
//!
//! These measure *host* wall time of the simulator (a regression guard
//! for the simulator's own performance) while reporting the simulated
//! seconds of each variant as auxiliary output — one bench per headline
//! experiment regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_queue::Variant;
use pt_bfs::baseline::run_rodinia;
use pt_bfs::host::{host_bfs, HostVariant};
use pt_bfs::{run_bfs, BfsConfig};
use ptq_graph::Dataset;
use simt::GpuConfig;

/// Simulated Table-3 cells: all three variants on the saturating
/// synthetic dataset (miniature scale).
fn bench_sim_variants(c: &mut Criterion) {
    let graph = Dataset::Synthetic.build(0.002);
    let gpu = GpuConfig::spectre();
    let mut group = c.benchmark_group("sim_synthetic_spectre");
    group.sample_size(10);
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label().replace('/', "_")),
            &variant,
            |b, &v| b.iter(|| run_bfs(&gpu, &graph, 0, &BfsConfig::new(v, 32)).expect("sim ok")),
        );
    }
    group.finish();
}

/// The deep-roadmap regime (queue-empty handling dominates).
fn bench_sim_roadmap(c: &mut Criterion) {
    let graph = Dataset::RoadNY.build(0.01);
    let gpu = GpuConfig::spectre();
    let mut group = c.benchmark_group("sim_roadmap_spectre");
    group.sample_size(10);
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label().replace('/', "_")),
            &variant,
            |b, &v| b.iter(|| run_bfs(&gpu, &graph, 0, &BfsConfig::new(v, 32)).expect("sim ok")),
        );
    }
    group.finish();
}

/// The Rodinia level-synchronous baseline on its smallest dataset.
fn bench_sim_rodinia(c: &mut Criterion) {
    let graph = Dataset::RodiniaGraph4096.build(1.0);
    let gpu = GpuConfig::spectre();
    let mut group = c.benchmark_group("sim_rodinia_baseline");
    group.sample_size(10);
    group.bench_function("rodinia_graph4096", |b| {
        b.iter(|| run_rodinia(&gpu, &graph, 0, 32).expect("sim ok"))
    });
    group.bench_function("rfan_graph4096", |b| {
        b.iter(|| run_bfs(&gpu, &graph, 0, &BfsConfig::new(Variant::RfAn, 32)).expect("sim ok"))
    });
    group.finish();
}

/// Real-thread host BFS (actual parallel wall time on this machine).
fn bench_host_bfs(c: &mut Criterion) {
    let graph = ptq_graph::gen::synthetic_tree(100_000, 4);
    let mut group = c.benchmark_group("host_bfs_tree100k");
    group.sample_size(10);
    for variant in HostVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label().replace('/', "_")),
            &variant,
            |b, &v| b.iter(|| host_bfs(&graph, 0, 4, v)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_variants,
    bench_sim_roadmap,
    bench_sim_rodinia,
    bench_host_bfs
);
criterion_main!(benches);
