//! Benchmarks of the simulated persistent-thread BFS.
//!
//! These measure *host* wall time of the simulator (a regression guard
//! for the simulator's own performance) while reporting the simulated
//! seconds of each variant as auxiliary output — one bench per headline
//! experiment regime.
//!
//! Self-timed (no external harness) so the workspace builds offline:
//! `cargo bench --bench sim_bfs`.

use gpu_queue::Variant;
use pt_bfs::baseline::run_rodinia;
use pt_bfs::host::{host_bfs, HostVariant};
use pt_bfs::{run_bfs, BfsConfig};
use ptq_graph::Dataset;
use simt::GpuConfig;
use std::time::Instant;

/// Times `f` over `iters` iterations (after one warmup) and prints the
/// mean host wall time per iteration.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters as u32;
    println!("{name:<40} {per_iter:>12.2?}/iter");
}

/// Simulated Table-3 cells: all three variants on the saturating
/// synthetic dataset (miniature scale).
fn bench_sim_variants() {
    println!("-- sim_synthetic_spectre --");
    let graph = Dataset::Synthetic.build(0.002);
    let gpu = GpuConfig::spectre();
    for variant in Variant::ALL {
        bench(&variant.label().replace('/', "_"), 10, || {
            run_bfs(&gpu, &graph, 0, &BfsConfig::new(variant, 32)).expect("sim ok");
        });
    }
}

/// The deep-roadmap regime (queue-empty handling dominates).
fn bench_sim_roadmap() {
    println!("-- sim_roadmap_spectre --");
    let graph = Dataset::RoadNY.build(0.01);
    let gpu = GpuConfig::spectre();
    for variant in Variant::ALL {
        bench(&variant.label().replace('/', "_"), 10, || {
            run_bfs(&gpu, &graph, 0, &BfsConfig::new(variant, 32)).expect("sim ok");
        });
    }
}

/// The Rodinia level-synchronous baseline on its smallest dataset.
fn bench_sim_rodinia() {
    println!("-- sim_rodinia_baseline --");
    let graph = Dataset::RodiniaGraph4096.build(1.0);
    let gpu = GpuConfig::spectre();
    bench("rodinia_graph4096", 10, || {
        run_rodinia(&gpu, &graph, 0, 32).expect("sim ok");
    });
    bench("rfan_graph4096", 10, || {
        run_bfs(&gpu, &graph, 0, &BfsConfig::new(Variant::RfAn, 32)).expect("sim ok");
    });
}

/// Real-thread host BFS (actual parallel wall time on this machine).
fn bench_host_bfs() {
    println!("-- host_bfs_tree100k --");
    let graph = ptq_graph::gen::synthetic_tree(100_000, 4);
    for variant in HostVariant::ALL {
        bench(&variant.label().replace('/', "_"), 10, || {
            host_bfs(&graph, 0, 4, variant);
        });
    }
}

fn main() {
    bench_sim_variants();
    bench_sim_roadmap();
    bench_sim_rodinia();
    bench_host_bfs();
}
