//! Benchmarks of the simulated persistent-thread BFS.
//!
//! These measure *host* wall time of the simulator (a regression guard
//! for the simulator's own performance) while reporting the simulated
//! seconds of each variant as auxiliary output — one bench per headline
//! experiment regime.
//!
//! Self-timed (no external harness) so the workspace builds offline:
//! `cargo bench --bench sim_bfs`.
//!
//! The final section replays a fixed engine-throughput workload and
//! prints a `BENCH_repro.json`-shaped JSON summary (same field names as
//! the repro binary writes), so simulator-throughput trendlines can be
//! scraped from bench logs with the same tooling.

use gpu_queue::Variant;
use pt_bfs::baseline::run_rodinia;
use pt_bfs::host::{host_bfs, HostVariant};
use pt_bfs::{run_bfs, PtConfig};
use ptq_graph::Dataset;
use simt::GpuConfig;
use std::time::Instant;

/// Times `f` over `iters` iterations (after one warmup) and prints the
/// mean host wall time per iteration.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters as u32;
    println!("{name:<40} {per_iter:>12.2?}/iter");
}

/// Simulated Table-3 cells: all three variants on the saturating
/// synthetic dataset (miniature scale).
fn bench_sim_variants() {
    println!("-- sim_synthetic_spectre --");
    let graph = Dataset::Synthetic.build(0.002);
    let gpu = GpuConfig::spectre();
    for variant in Variant::ALL {
        bench(&variant.label().replace('/', "_"), 10, || {
            run_bfs(&gpu, &graph, 0, &PtConfig::new(variant, 32)).expect("sim ok");
        });
    }
}

/// The deep-roadmap regime (queue-empty handling dominates).
fn bench_sim_roadmap() {
    println!("-- sim_roadmap_spectre --");
    let graph = Dataset::RoadNY.build(0.01);
    let gpu = GpuConfig::spectre();
    for variant in Variant::ALL {
        bench(&variant.label().replace('/', "_"), 10, || {
            run_bfs(&gpu, &graph, 0, &PtConfig::new(variant, 32)).expect("sim ok");
        });
    }
}

/// The Rodinia level-synchronous baseline on its smallest dataset.
fn bench_sim_rodinia() {
    println!("-- sim_rodinia_baseline --");
    let graph = Dataset::RodiniaGraph4096.build(1.0);
    let gpu = GpuConfig::spectre();
    bench("rodinia_graph4096", 10, || {
        run_rodinia(&gpu, &graph, 0, 32).expect("sim ok");
    });
    bench("rfan_graph4096", 10, || {
        run_bfs(&gpu, &graph, 0, &PtConfig::new(Variant::RfAn, 32)).expect("sim ok");
    });
}

/// Real-thread host BFS (actual parallel wall time on this machine).
fn bench_host_bfs() {
    println!("-- host_bfs_tree100k --");
    let graph = ptq_graph::gen::synthetic_tree(100_000, 4);
    for variant in HostVariant::ALL {
        bench(&variant.label().replace('/', "_"), 10, || {
            host_bfs(&graph, 0, 4, variant);
        });
    }
}

/// Engine-throughput microbench: a fixed workload (deterministic graph
/// generators, fixed source, fixed configs — no wall-clock or RNG input),
/// reported as BENCH-shaped JSON on stdout. `rounds` is exact and
/// identical run to run; only the wall-time fields vary.
fn bench_engine_throughput() {
    println!("-- engine_throughput (BENCH-shaped JSON) --");
    let spectre = GpuConfig::spectre();
    let fiji = GpuConfig::fiji();
    let points: Vec<(&str, &GpuConfig, ptq_graph::Csr, Variant, usize)> = vec![
        (
            "synthetic_spectre_rfan",
            &spectre,
            Dataset::Synthetic.build(0.002),
            Variant::RfAn,
            32,
        ),
        (
            "roadny_spectre_an",
            &spectre,
            Dataset::RoadNY.build(0.02),
            Variant::An,
            32,
        ),
        (
            "roadny_fiji_rfan",
            &fiji,
            Dataset::RoadNY.build(0.02),
            Variant::RfAn,
            224,
        ),
        (
            "gplus_spectre_base",
            &spectre,
            Dataset::GplusCombined.build(0.05),
            Variant::Base,
            32,
        ),
    ];
    let mut experiments = Vec::new();
    let mut total_rounds = 0u64;
    let mut slowest: Option<(f64, &str)> = None;
    let start = Instant::now();
    for (name, gpu, graph, variant, wgs) in &points {
        let wall = Instant::now();
        let run = run_bfs(gpu, graph, 0, &PtConfig::new(*variant, *wgs)).expect("sim ok");
        let secs = wall.elapsed().as_secs_f64();
        total_rounds += run.metrics.rounds;
        if slowest.is_none_or(|(s, _)| secs > s) {
            slowest = Some((secs, name));
        }
        experiments.push(format!(
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}, \"rounds\": {}, \
             \"rounds_per_second\": {:.0}}}",
            run.metrics.rounds,
            run.metrics.rounds as f64 / secs.max(1e-9),
        ));
    }
    let total = start.elapsed().as_secs_f64();
    let slowest_json = match slowest {
        Some((secs, name)) => format!("{{\"name\": \"{name}\", \"seconds\": {secs:.3}}}"),
        None => "null".to_owned(),
    };
    println!(
        "{{\n  \"command\": \"bench sim_bfs\",\n  \"jobs\": 1,\n  \
         \"total_seconds\": {total:.3},\n  \"rounds_simulated\": {total_rounds},\n  \
         \"rounds_per_second\": {:.0},\n  \"slowest_point\": {slowest_json},\n  \
         \"experiments\": [\n{}\n  ]\n}}",
        total_rounds as f64 / total.max(1e-9),
        experiments.join(",\n"),
    );
}

fn main() {
    bench_sim_variants();
    bench_sim_roadmap();
    bench_sim_rodinia();
    bench_host_bfs();
    bench_engine_throughput();
}
