//! Benchmarks of the host (real-thread) queue implementations.
//!
//! Mirrors the paper's comparison on CPU hardware: the retry-free,
//! arbitrary-n design against CAS batching, per-token CAS, and a blocking
//! mutex queue, across thread counts and batch sizes.
//!
//! Self-timed (no external harness) so the workspace builds offline:
//! `cargo bench --bench host_queue` prints one line per case with the
//! mean wall time per iteration and per-element throughput.

use gpu_queue::host::{AnQueue, BaseQueue, MutexQueue, RfAnQueue, SlotTicket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const TOKENS_PER_THREAD: usize = 20_000;

/// Times `f` over `iters` iterations (after one warmup) and prints the
/// mean time per iteration plus throughput for `elements` per iteration.
fn bench(name: &str, iters: usize, elements: u64, mut f: impl FnMut()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per_iter = total / iters as u32;
    let throughput = elements as f64 / per_iter.as_secs_f64();
    println!("{name:<28} {per_iter:>12.2?}/iter   {throughput:>14.0} elems/s");
}

/// Single-threaded batch round-trip: isolates the per-operation atomic
/// cost without contention.
fn bench_single_thread() {
    println!("-- single_thread_batch32 --");
    bench("rfan", 10_000, 32, || {
        let q = RfAnQueue::new(64);
        q.enqueue_batch(&[7u32; 32]).unwrap();
        let r = q.reserve(32);
        for s in r {
            q.try_take(SlotTicket(s)).unwrap();
        }
    });
    bench("an", 10_000, 32, || {
        let q = AnQueue::new(64);
        q.push_batch(&[7u32; 32]).unwrap();
        let mut out = Vec::with_capacity(32);
        q.pop_batch(&mut out, 32);
    });
    bench("base", 10_000, 32, || {
        let q = BaseQueue::new(64);
        for i in 0..32 {
            q.push(i).unwrap();
        }
        for _ in 0..32 {
            q.try_pop().unwrap();
        }
    });
    bench("mutex", 10_000, 32, || {
        let q = MutexQueue::new(64);
        q.push_batch(&[7u32; 32]).unwrap();
        let mut out = Vec::with_capacity(32);
        q.pop_batch(&mut out, 32);
    });
}

/// Multi-threaded producer/consumer pipeline at several thread counts.
fn bench_contended() {
    println!("-- contended_pipeline --");
    for threads in [2usize, 4, 8] {
        let pairs = threads / 2;
        let total = (pairs * (TOKENS_PER_THREAD / 64) * 64) as u64;
        bench(&format!("rfan/{threads}t"), 10, total, || {
            let q = RfAnQueue::new(pairs * TOKENS_PER_THREAD);
            let taken = AtomicU64::new(0);
            let goal = total;
            std::thread::scope(|s| {
                for _ in 0..pairs {
                    s.spawn(|| {
                        let batch: Vec<u32> = (0..64).collect();
                        for _ in 0..TOKENS_PER_THREAD / 64 {
                            q.enqueue_batch(&batch).unwrap();
                        }
                    });
                    s.spawn(|| {
                        let mut pending: Vec<u64> = Vec::new();
                        loop {
                            if pending.is_empty() {
                                if taken.load(Ordering::Relaxed) >= goal {
                                    break;
                                }
                                pending.extend(q.reserve(64));
                            }
                            pending.retain(|&slot| {
                                if q.try_take(SlotTicket(slot)).is_some() {
                                    taken.fetch_add(1, Ordering::Relaxed);
                                    false
                                } else {
                                    true
                                }
                            });
                            if taken.load(Ordering::Relaxed) >= goal {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    });
                }
            });
        });
        bench(&format!("an/{threads}t"), 10, total, || {
            let q = AnQueue::new(pairs * TOKENS_PER_THREAD);
            let taken = AtomicU64::new(0);
            // producers push in 64-token chunks: goal must match the
            // actually-published multiple of 64
            let goal = total;
            std::thread::scope(|s| {
                for _ in 0..pairs {
                    s.spawn(|| {
                        let batch: Vec<u32> = (0..64).collect();
                        for _ in 0..TOKENS_PER_THREAD / 64 {
                            q.push_batch(&batch).unwrap();
                        }
                    });
                    s.spawn(|| {
                        let mut out = Vec::new();
                        while taken.load(Ordering::Relaxed) < goal {
                            out.clear();
                            let n = q.pop_batch(&mut out, 64);
                            if n > 0 {
                                taken.fetch_add(n as u64, Ordering::Relaxed);
                            }
                            std::hint::spin_loop();
                        }
                    });
                }
            });
        });
        let base_total = (pairs * TOKENS_PER_THREAD) as u64;
        bench(&format!("base/{threads}t"), 10, base_total, || {
            let q = BaseQueue::new(pairs * TOKENS_PER_THREAD);
            let taken = AtomicU64::new(0);
            let goal = base_total;
            std::thread::scope(|s| {
                for _ in 0..pairs {
                    s.spawn(|| {
                        for i in 0..TOKENS_PER_THREAD as u32 {
                            q.push(i).unwrap();
                        }
                    });
                    s.spawn(|| {
                        while taken.load(Ordering::Relaxed) < goal {
                            if q.try_pop().is_some() {
                                taken.fetch_add(1, Ordering::Relaxed);
                            }
                            std::hint::spin_loop();
                        }
                    });
                }
            });
        });
    }
}

fn main() {
    bench_single_thread();
    bench_contended();
}
