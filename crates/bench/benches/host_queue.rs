//! Criterion benchmarks of the host (real-thread) queue implementations.
//!
//! Mirrors the paper's comparison on CPU hardware: the retry-free,
//! arbitrary-n design against CAS batching, per-token CAS, and a blocking
//! mutex queue, across thread counts and batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_queue::host::{AnQueue, BaseQueue, MutexQueue, RfAnQueue, SlotTicket};
use std::sync::atomic::{AtomicU64, Ordering};

const TOKENS_PER_THREAD: usize = 20_000;

/// Single-threaded batch round-trip: isolates the per-operation atomic
/// cost without contention.
fn bench_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_thread_batch32");
    group.throughput(Throughput::Elements(32));
    group.bench_function("rfan", |b| {
        b.iter_batched(
            || RfAnQueue::new(64),
            |q| {
                q.enqueue_batch(&[7u32; 32]).unwrap();
                let r = q.reserve(32);
                for s in r {
                    q.try_take(SlotTicket(s)).unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("an", |b| {
        b.iter_batched(
            || AnQueue::new(64),
            |q| {
                q.push_batch(&[7u32; 32]).unwrap();
                let mut out = Vec::with_capacity(32);
                q.pop_batch(&mut out, 32);
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("base", |b| {
        b.iter_batched(
            || BaseQueue::new(64),
            |q| {
                for i in 0..32 {
                    q.push(i).unwrap();
                }
                for _ in 0..32 {
                    q.try_pop().unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("mutex", |b| {
        b.iter_batched(
            || MutexQueue::new(64),
            |q| {
                q.push_batch(&[7u32; 32]).unwrap();
                let mut out = Vec::with_capacity(32);
                q.pop_batch(&mut out, 32);
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Multi-threaded producer/consumer pipeline at several thread counts.
fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_pipeline");
    group.sample_size(10);
    for threads in [2usize, 4, 8] {
        let pairs = threads / 2;
        let total = (pairs * TOKENS_PER_THREAD) as u64;
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(BenchmarkId::new("rfan", threads), &pairs, |b, &pairs| {
            b.iter(|| {
                let q = RfAnQueue::new(pairs * TOKENS_PER_THREAD);
                let taken = AtomicU64::new(0);
                let goal = (pairs * (TOKENS_PER_THREAD / 64) * 64) as u64;
                crossbeam::scope(|s| {
                    for _ in 0..pairs {
                        s.spawn(|_| {
                            let batch: Vec<u32> = (0..64).collect();
                            for _ in 0..TOKENS_PER_THREAD / 64 {
                                q.enqueue_batch(&batch).unwrap();
                            }
                        });
                        s.spawn(|_| {
                            let mut pending: Vec<u64> = Vec::new();
                            loop {
                                if pending.is_empty() {
                                    if taken.load(Ordering::Relaxed) >= goal {
                                        break;
                                    }
                                    pending.extend(q.reserve(64));
                                }
                                pending.retain(|&slot| {
                                    if q.try_take(SlotTicket(slot)).is_some() {
                                        taken.fetch_add(1, Ordering::Relaxed);
                                        false
                                    } else {
                                        true
                                    }
                                });
                                if taken.load(Ordering::Relaxed) >= goal {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        });
                    }
                })
                .unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("an", threads), &pairs, |b, &pairs| {
            b.iter(|| {
                let q = AnQueue::new(pairs * TOKENS_PER_THREAD);
                let taken = AtomicU64::new(0);
                // producers push in 64-token chunks: goal must match the
                // actually-published multiple of 64
                let goal = (pairs * (TOKENS_PER_THREAD / 64) * 64) as u64;
                crossbeam::scope(|s| {
                    for _ in 0..pairs {
                        s.spawn(|_| {
                            let batch: Vec<u32> = (0..64).collect();
                            for _ in 0..TOKENS_PER_THREAD / 64 {
                                q.push_batch(&batch).unwrap();
                            }
                        });
                        s.spawn(|_| {
                            let mut out = Vec::new();
                            while taken.load(Ordering::Relaxed) < goal {
                                out.clear();
                                let n = q.pop_batch(&mut out, 64);
                                if n > 0 {
                                    taken.fetch_add(n as u64, Ordering::Relaxed);
                                }
                                std::hint::spin_loop();
                            }
                        });
                    }
                })
                .unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("base", threads), &pairs, |b, &pairs| {
            b.iter(|| {
                let q = BaseQueue::new(pairs * TOKENS_PER_THREAD);
                let taken = AtomicU64::new(0);
                let goal = (pairs * TOKENS_PER_THREAD) as u64;
                crossbeam::scope(|s| {
                    for _ in 0..pairs {
                        s.spawn(|_| {
                            for i in 0..TOKENS_PER_THREAD as u32 {
                                q.push(i).unwrap();
                            }
                        });
                        s.spawn(|_| {
                            while taken.load(Ordering::Relaxed) < goal {
                                if q.try_pop().is_some() {
                                    taken.fetch_add(1, Ordering::Relaxed);
                                }
                                std::hint::spin_loop();
                            }
                        });
                    }
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
