//! Dataset scaling for experiments.

/// Fraction of each dataset's published vertex count to instantiate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale(f64);

impl Scale {
    /// Full published size (`scale = 1.0`) — the sizes of the paper.
    pub const FULL: Scale = Scale(1.0);

    /// Default for the `repro` binary: fast but large enough that every
    /// contention effect is visible.
    pub const DEFAULT: Scale = Scale(0.05);

    /// Miniature scale for CI tests.
    pub const TEST: Scale = Scale(0.004);

    /// Creates a scale, clamped into `(0, 1]`.
    pub fn new(fraction: f64) -> Scale {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "scale must be in (0, 1], got {fraction}"
        );
        Scale(fraction)
    }

    /// The raw fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_accepts_valid_range() {
        assert_eq!(Scale::new(0.5).fraction(), 0.5);
        assert_eq!(Scale::new(1.0).fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero() {
        Scale::new(0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_above_one() {
        Scale::new(1.5);
    }
}
