//! Capped exponential retry backoff with deterministic jitter.
//!
//! A query whose attempt aborts is not retried immediately: the service
//! schedules its re-admission `delay(attempt)` simulated cycles after
//! the failure, where the delay doubles per attempt up to a cap. Real
//! services add *random* jitter so synchronized failures do not retry in
//! lockstep; a deterministic reproduction cannot afford `rand`, so the
//! jitter is drawn from a [`SplitMix64`] stream keyed by `(seed,
//! attempt)` — fully reproducible, yet spread across queries exactly
//! like random jitter would be.
//!
//! The jitter term is strictly less than `base_cycles`, which keeps the
//! schedule monotone: `base << k` grows by at least `base` per step, so
//! no jitter draw can make `delay(k + 1) < delay(k)` before the cap, and
//! after the cap every delay is exactly `cap_cycles`.

use ptq_graph::SplitMix64;

/// Capped exponential backoff: `delay(k) = min(cap, base * 2^k + jitter)`
/// with `jitter = SplitMix64(seed, k) mod base`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// First-retry delay in simulated cycles; also the jitter modulus.
    pub base_cycles: u64,
    /// Ceiling on any single delay.
    pub cap_cycles: u64,
    /// Stream key; the service derives one per query from the trace seed.
    pub seed: u64,
}

impl BackoffSchedule {
    /// A schedule starting at `base_cycles` and never exceeding
    /// `cap_cycles`.
    ///
    /// # Panics
    /// If `base_cycles` is zero (the jitter modulus must be positive).
    pub fn new(base_cycles: u64, cap_cycles: u64, seed: u64) -> Self {
        assert!(base_cycles > 0, "backoff base must be positive");
        BackoffSchedule {
            base_cycles,
            cap_cycles,
            seed,
        }
    }

    /// Delay before retry number `attempt` (0-based: the first retry
    /// waits `delay(0)`), in simulated cycles.
    pub fn delay(&self, attempt: u32) -> u64 {
        let ramp = if attempt >= 63 {
            u64::MAX
        } else {
            self.base_cycles.saturating_mul(1u64 << attempt)
        };
        let mut rng = SplitMix64::seed_from_u64(
            self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let jitter = rng.next_u64() % self.base_cycles;
        ramp.saturating_add(jitter).min(self.cap_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sched;

    #[test]
    fn reproducible_from_seed() {
        let a = BackoffSchedule::new(1_000, 1_000_000, 0xB0FF);
        let b = BackoffSchedule::new(1_000, 1_000_000, 0xB0FF);
        let seq_a: Vec<u64> = (0..16).map(|k| a.delay(k)).collect();
        let seq_b: Vec<u64> = (0..16).map(|k| b.delay(k)).collect();
        assert_eq!(seq_a, seq_b);
        // A different seed moves the jitter but not the envelope.
        let c = BackoffSchedule::new(1_000, 1_000_000, 0xB0FF + 1);
        let seq_c: Vec<u64> = (0..16).map(|k| c.delay(k)).collect();
        assert_ne!(seq_a, seq_c, "jitter must depend on the seed");
        for (k, (&x, &y)) in seq_a.iter().zip(&seq_c).enumerate() {
            let ramp = 1_000u64 << k.min(20);
            assert!(x.min(1_000_000) >= ramp.min(1_000_000));
            assert!(y.min(1_000_000) >= ramp.min(1_000_000));
        }
    }

    #[test]
    fn monotone_up_to_the_cap_then_pinned_there() {
        for seed in 0..64u64 {
            let sched = BackoffSchedule::new(500, 60_000, seed);
            let seq: Vec<u64> = (0..24).map(|k| sched.delay(k)).collect();
            for w in seq.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}: {} > {}", w[0], w[1]);
            }
            assert!(seq.iter().all(|&d| d <= 60_000));
            // The exponential ramp must actually reach the cap.
            assert_eq!(*seq.last().unwrap(), 60_000);
            // Saturating arithmetic: enormous attempt counts stay capped.
            assert_eq!(sched.delay(200), 60_000);
        }
    }

    #[test]
    fn jitter_stays_below_the_doubling_step() {
        // delay(k) - ramp(k) < base for every pre-cap step; this is the
        // invariant that makes the monotonicity proof go through.
        let sched = BackoffSchedule::new(777, u64::MAX, 42);
        for k in 0..32 {
            let ramp = 777u64 << k;
            let d = sched.delay(k);
            assert!(d >= ramp && d - ramp < 777);
        }
    }

    #[test]
    fn identical_across_job_counts() {
        // The schedule is pure, but the service computes delays inside
        // `Sched::par_map` workers; pin that the sequence is independent
        // of the worker count and of evaluation order.
        let attempts: Vec<u32> = (0..64).collect();
        let reference: Vec<u64> = attempts
            .iter()
            .map(|&k| BackoffSchedule::new(1_000, 500_000, 0xD1CE).delay(k))
            .collect();
        for jobs in [1, 2, 4, 8] {
            let sched = Sched::new(jobs);
            let par: Vec<u64> = sched.par_map(&attempts, |_, &k| {
                BackoffSchedule::new(1_000, 500_000, 0xD1CE).delay(k)
            });
            assert_eq!(par, reference, "jobs={jobs}");
        }
    }
}
