//! Bounded admission with typed rejection and weighted-fair dispatch.
//!
//! The ready backlog is a [`SegmentedRfAnQueue`] per (priority class,
//! tenant) lane, holding query ids. Reusing the segmented host family
//! is the point: its non-wrapping reserve/publish protocol makes a
//! slot-level `QueueFull` statically unreachable (PR 8), so the only
//! capacity decision left is *policy*, made here on the host with a
//! backlog bound and reported as a typed [`AdmissionError`] instead of
//! an abort. The error taxonomy mirrors `simt::AbortReason`: callers
//! match on variants, never on strings, and nothing panics.
//!
//! Dispatch order is **deficit round-robin**, not strict priority: each
//! class holds a grant budget refilled to [`Priority::weight`] when the
//! scheduler's cursor enters it, and spends one grant per dispatched
//! query. While every class is backlogged the dispatch stream is the
//! fixed weighted pattern (4 interactive : 2 standard : 1 batch per
//! round); a class with nothing ready forfeits the visit without
//! consuming anyone else's share, so the scheme degrades to FIFO when
//! only one class is busy and can never starve a backlogged class the
//! way the previous strict-priority drain could. Within a class the
//! lanes round-robin across tenants (equal shares, FIFO per lane), so
//! one chatty tenant cannot monopolize its class either. The whole
//! discipline is a pure function of the push/take call sequence —
//! no clocks, no randomness — which keeps the serving replay
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

use gpu_queue::host::{SegmentedRfAnQueue, SlotTicket};

use super::trace::{Priority, QuerySpec, NUM_TENANTS};

/// Why admission refused a query. Every variant is a normal service
/// outcome, logged and counted — not an error to unwind on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The ready backlog is at its configured bound; admitting one more
    /// query would grow the queue past what the service will promise to
    /// serve. Backpressure, not data loss: the client sees the rejection
    /// at submission time.
    QueueFull {
        /// Backlog size the admission would have produced.
        requested: u64,
        /// Configured backlog bound.
        capacity: u64,
    },
    /// Deadline-based load shedding: the projected completion cycle of
    /// the backlog plus this query already exceeds the query's deadline,
    /// so running it would only waste device time.
    Shedding {
        /// Projected completion cycle had the query been admitted.
        projected_cycle: u64,
        /// The query's absolute deadline cycle (arrival + budget).
        deadline_cycle: u64,
    },
    /// A query with this (workload, dataset) signature previously
    /// exhausted its retry budget and was quarantined; resubmissions are
    /// refused until an operator clears the quarantine.
    Quarantined {
        /// Id of the query whose exhaustion quarantined the signature.
        original: u32,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                requested,
                capacity,
            } => write!(
                f,
                "admission backlog full: {requested} queued against a bound of {capacity}"
            ),
            AdmissionError::Shedding {
                projected_cycle,
                deadline_cycle,
            } => write!(
                f,
                "shed: projected completion at cycle {projected_cycle} past deadline {deadline_cycle}"
            ),
            AdmissionError::Quarantined { original } => {
                write!(f, "signature quarantined by query {original}")
            }
        }
    }
}

/// The service's ready backlog plus its admission policy and
/// weighted-fair dispatch state.
pub struct AdmissionQueue {
    /// One segmented FIFO per (class, tenant) lane, indexed by
    /// [`Priority::index`] then tenant.
    lanes: [[SegmentedRfAnQueue; NUM_TENANTS as usize]; 3],
    /// Host-side occupancy per lane (the policy counter; the queues
    /// themselves are unbounded by construction).
    queued: [[u64; NUM_TENANTS as usize]; 3],
    /// Backlog bound across all lanes.
    capacity: u64,
    /// DRR class the cursor currently grants from.
    cursor: usize,
    /// Grants left for the cursor class before it yields.
    grant: u64,
    /// Next tenant lane to serve per class (round-robin).
    tenant_cursor: [usize; 3],
    /// Quarantined signatures → the query that earned the quarantine.
    quarantined: BTreeMap<(&'static str, &'static str), u32>,
    /// Segmented-enqueue failures observed (must stay 0: the segmented
    /// path cannot reject a non-sentinel token — the chaos suite pins
    /// this).
    enqueue_errors: u64,
}

impl AdmissionQueue {
    /// Segment capacity for the backlog rings. Small on purpose: a
    /// serving backlog of a few dozen queries should still exercise the
    /// segment-chaining path, not fit in one segment.
    const SEG_CAP: usize = 8;

    /// An empty backlog with the given bound.
    pub fn new(capacity: u64) -> Self {
        AdmissionQueue {
            lanes: std::array::from_fn(|_| {
                std::array::from_fn(|_| SegmentedRfAnQueue::new(Self::SEG_CAP))
            }),
            queued: [[0; NUM_TENANTS as usize]; 3],
            capacity,
            // The cursor parks on the last class with an empty grant, so
            // the first busy period starts a fresh round at the highest
            // weight.
            cursor: 2,
            grant: 0,
            tenant_cursor: [0; 3],
            quarantined: BTreeMap::new(),
            enqueue_errors: 0,
        }
    }

    /// Admission decision for `query`, given the projected completion
    /// cycle the service computed for it. Checks are ordered cheapest
    /// rejection first: quarantine (the query will never succeed), then
    /// backpressure, then shedding.
    pub fn check(&self, query: &QuerySpec, projected_cycle: u64) -> Result<(), AdmissionError> {
        if let Some(&original) = self.quarantined.get(&query.signature()) {
            return Err(AdmissionError::Quarantined { original });
        }
        let total = self.backlog();
        if total >= self.capacity {
            return Err(AdmissionError::QueueFull {
                requested: total + 1,
                capacity: self.capacity,
            });
        }
        let deadline_cycle = query.arrival_cycle.saturating_add(query.deadline_cycles);
        if projected_cycle > deadline_cycle {
            return Err(AdmissionError::Shedding {
                projected_cycle,
                deadline_cycle,
            });
        }
        Ok(())
    }

    /// Enqueue an admitted (or retry-ready) query id into its
    /// (class, tenant) lane.
    pub fn push(&mut self, priority: Priority, tenant: u32, id: u32) {
        let class = priority.index();
        let lane = (tenant % NUM_TENANTS) as usize;
        match self.lanes[class][lane].try_enqueue_batch(&[id]) {
            Ok(_) => self.queued[class][lane] += 1,
            // Unreachable for real ids (only the sentinel token is
            // refused), but counted rather than unwrapped: a nonzero
            // count is a bug the chaos suite will surface.
            Err(_) => self.enqueue_errors += 1,
        }
    }

    /// Queries waiting in `class`, across its tenant lanes.
    fn class_backlog(&self, class: usize) -> u64 {
        self.queued[class].iter().sum()
    }

    /// Dequeue the next query id under weighted deficit round-robin
    /// (see module docs): the cursor class spends one grant per take
    /// and yields to the next class when its grant budget or backlog is
    /// spent; tenant lanes within the class round-robin. `None` when
    /// the backlog is empty.
    pub fn take_next(&mut self) -> Option<(Priority, u32)> {
        if self.backlog() == 0 {
            // End of a busy period: park the cursor so the next one
            // starts a fresh weighted round at the highest class.
            self.cursor = 2;
            self.grant = 0;
            return None;
        }
        loop {
            if self.grant > 0 && self.class_backlog(self.cursor) > 0 {
                self.grant -= 1;
                return Some(self.take_from_class(self.cursor));
            }
            self.cursor = (self.cursor + 1) % 3;
            self.grant = Priority::ALL[self.cursor].weight();
        }
    }

    /// Dequeue from `class`'s next non-empty tenant lane (round-robin).
    /// The class backlog must be non-zero.
    fn take_from_class(&mut self, class: usize) -> (Priority, u32) {
        let lanes = NUM_TENANTS as usize;
        for offset in 0..lanes {
            let lane = (self.tenant_cursor[class] + offset) % lanes;
            if self.queued[class][lane] == 0 {
                continue;
            }
            self.tenant_cursor[class] = (lane + 1) % lanes;
            // Serial dequeue protocol: every queued id was published
            // before this reserve, so the take cannot miss.
            let slot = self.lanes[class][lane].reserve(1).start;
            match self.lanes[class][lane].try_take(SlotTicket(slot)) {
                Some(id) => {
                    self.queued[class][lane] -= 1;
                    return (Priority::ALL[class], id);
                }
                None => self.enqueue_errors += 1,
            }
        }
        unreachable!("take_from_class called on an empty class");
    }

    /// Total queries waiting across all lanes.
    pub fn backlog(&self) -> u64 {
        self.queued.iter().flatten().sum()
    }

    /// Quarantine a signature on behalf of query `id`.
    pub fn quarantine(&mut self, signature: (&'static str, &'static str), id: u32) {
        self.quarantined.entry(signature).or_insert(id);
    }

    /// Number of quarantined signatures.
    pub fn quarantined_signatures(&self) -> usize {
        self.quarantined.len()
    }

    /// Segmented-enqueue failures observed (0 in any correct run).
    pub fn enqueue_errors(&self) -> u64 {
        self.enqueue_errors
    }

    /// Segments allocated fresh across the (class, tenant) lane rings —
    /// proof in the serve tables that the backlog really is
    /// segment-chained.
    pub fn fresh_segments(&self) -> u64 {
        self.lanes.iter().flatten().map(|q| q.fresh_allocs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::trace::WorkloadKind;
    use ptq_graph::Dataset;

    fn query(id: u32, priority: Priority) -> QuerySpec {
        QuerySpec {
            id,
            kind: WorkloadKind::Bfs,
            dataset: Dataset::RoadNY,
            rel_scale: 0.1,
            source_salt: 0,
            priority,
            tenant: 0,
            arrival_cycle: 100,
            deadline_cycles: 1_000,
            faults: 0,
            watchdog_rounds: 0,
        }
    }

    #[test]
    fn drr_grants_follow_class_weights_while_all_backlogged() {
        // With every class saturated, dispatch must be the fixed
        // weighted round: 4 interactive, 2 standard, 1 batch.
        let mut q = AdmissionQueue::new(64);
        for id in 0..8 {
            q.push(Priority::Interactive, 0, id);
            q.push(Priority::Standard, 0, 100 + id);
            q.push(Priority::Batch, 0, 200 + id);
        }
        let classes: Vec<Priority> = (0..14).map(|_| q.take_next().unwrap().0).collect();
        use Priority::*;
        assert_eq!(
            classes,
            vec![
                Interactive,
                Interactive,
                Interactive,
                Interactive,
                Standard,
                Standard,
                Batch,
                Interactive,
                Interactive,
                Interactive,
                Interactive,
                Standard,
                Standard,
                Batch,
            ]
        );
        assert_eq!(q.enqueue_errors(), 0);
    }

    #[test]
    fn lone_backlogged_class_drains_fifo_without_idle_grants() {
        // Empty classes forfeit their visits: a batch-only backlog
        // drains back-to-back, in FIFO order, with no starvation gaps.
        let mut q = AdmissionQueue::new(64);
        for id in 0..6 {
            q.push(Priority::Batch, 0, id);
        }
        for id in 0..6 {
            assert_eq!(q.take_next(), Some((Priority::Batch, id)));
        }
        assert_eq!(q.take_next(), None);
    }

    #[test]
    fn batch_class_cannot_be_starved_by_interactive_floods() {
        // The strict-priority drain this DRR replaced would never reach
        // the batch query while interactive work kept arriving; the
        // weighted round reaches it within one full cycle (7 grants).
        let mut q = AdmissionQueue::new(u64::MAX);
        q.push(Priority::Batch, 0, 999);
        for id in 0..100 {
            q.push(Priority::Interactive, 0, id);
        }
        let mut took_batch_at = None;
        for k in 0..10 {
            let (class, id) = q.take_next().unwrap();
            if class == Priority::Batch {
                assert_eq!(id, 999);
                took_batch_at = Some(k);
                break;
            }
            // Keep the interactive flood saturated while we wait.
            q.push(Priority::Interactive, 0, 500 + k);
        }
        assert!(
            took_batch_at.is_some(),
            "batch query starved through a full weighted round"
        );
    }

    #[test]
    fn tenant_lanes_round_robin_within_a_class() {
        let mut q = AdmissionQueue::new(64);
        // Tenant 0 is chatty (3 queries); tenants 1 and 2 have one each.
        q.push(Priority::Standard, 0, 10);
        q.push(Priority::Standard, 0, 11);
        q.push(Priority::Standard, 0, 12);
        q.push(Priority::Standard, 1, 20);
        q.push(Priority::Standard, 2, 30);
        let ids: Vec<u32> = (0..5).map(|_| q.take_next().unwrap().1).collect();
        // Round-robin across lanes, FIFO within: the chatty tenant gets
        // exactly its share, not the head of the line.
        assert_eq!(ids, vec![10, 20, 30, 11, 12]);
    }

    #[test]
    fn busy_period_reset_restarts_the_weighted_round() {
        let mut q = AdmissionQueue::new(64);
        q.push(Priority::Batch, 0, 1);
        assert_eq!(q.take_next(), Some((Priority::Batch, 1)));
        assert_eq!(q.take_next(), None);
        // A fresh busy period starts its round at interactive again.
        q.push(Priority::Interactive, 0, 2);
        q.push(Priority::Batch, 0, 3);
        assert_eq!(q.take_next(), Some((Priority::Interactive, 2)));
    }

    #[test]
    fn backlog_bound_is_a_typed_queue_full() {
        let mut q = AdmissionQueue::new(2);
        q.push(Priority::Standard, 0, 0);
        q.push(Priority::Standard, 1, 1);
        let err = q.check(&query(2, Priority::Standard), 0).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::QueueFull {
                requested: 3,
                capacity: 2
            }
        );
        // Draining reopens admission.
        q.take_next();
        assert!(q.check(&query(2, Priority::Standard), 0).is_ok());
    }

    #[test]
    fn projection_past_deadline_sheds() {
        let q = AdmissionQueue::new(8);
        let spec = query(0, Priority::Standard); // deadline cycle 1_100
        assert!(q.check(&spec, 1_100).is_ok());
        assert_eq!(
            q.check(&spec, 1_101).unwrap_err(),
            AdmissionError::Shedding {
                projected_cycle: 1_101,
                deadline_cycle: 1_100
            }
        );
    }

    #[test]
    fn quarantine_rejects_the_signature_not_the_world() {
        let mut q = AdmissionQueue::new(8);
        let poisoned = query(7, Priority::Standard);
        q.quarantine(poisoned.signature(), 7);
        assert_eq!(
            q.check(&poisoned, 0).unwrap_err(),
            AdmissionError::Quarantined { original: 7 }
        );
        // A different signature sails through.
        let mut other = query(8, Priority::Standard);
        other.kind = WorkloadKind::Cc;
        assert!(q.check(&other, 0).is_ok());
        assert_eq!(q.quarantined_signatures(), 1);
    }

    #[test]
    fn deep_backlog_chains_segments_without_errors() {
        let mut q = AdmissionQueue::new(1_000);
        for id in 0..100 {
            q.push(Priority::Batch, 0, id);
        }
        assert!(q.fresh_segments() > 3, "backlog should span segments");
        for id in 0..100 {
            assert_eq!(q.take_next(), Some((Priority::Batch, id)));
        }
        assert_eq!(q.enqueue_errors(), 0);
    }
}
