//! Bounded admission with typed rejection.
//!
//! The ready backlog is three [`SegmentedRfAnQueue`]s — one per
//! [`Priority`] class — holding query ids. Reusing the segmented host
//! family is the point: its non-wrapping reserve/publish protocol makes
//! a slot-level `QueueFull` statically unreachable (PR 8), so the only
//! capacity decision left is *policy*, made here on the host with a
//! backlog bound and reported as a typed [`AdmissionError`] instead of
//! an abort. The error taxonomy mirrors `simt::AbortReason`: callers
//! match on variants, never on strings, and nothing panics.

use std::collections::BTreeMap;
use std::fmt;

use gpu_queue::host::{SegmentedRfAnQueue, SlotTicket};

use super::trace::{Priority, QuerySpec};

/// Why admission refused a query. Every variant is a normal service
/// outcome, logged and counted — not an error to unwind on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The ready backlog is at its configured bound; admitting one more
    /// query would grow the queue past what the service will promise to
    /// serve. Backpressure, not data loss: the client sees the rejection
    /// at submission time.
    QueueFull {
        /// Backlog size the admission would have produced.
        requested: u64,
        /// Configured backlog bound.
        capacity: u64,
    },
    /// Deadline-based load shedding: the projected completion cycle of
    /// the backlog plus this query already exceeds the query's deadline,
    /// so running it would only waste device time.
    Shedding {
        /// Projected completion cycle had the query been admitted.
        projected_cycle: u64,
        /// The query's absolute deadline cycle (arrival + budget).
        deadline_cycle: u64,
    },
    /// A query with this (workload, dataset) signature previously
    /// exhausted its retry budget and was quarantined; resubmissions are
    /// refused until an operator clears the quarantine.
    Quarantined {
        /// Id of the query whose exhaustion quarantined the signature.
        original: u32,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                requested,
                capacity,
            } => write!(
                f,
                "admission backlog full: {requested} queued against a bound of {capacity}"
            ),
            AdmissionError::Shedding {
                projected_cycle,
                deadline_cycle,
            } => write!(
                f,
                "shed: projected completion at cycle {projected_cycle} past deadline {deadline_cycle}"
            ),
            AdmissionError::Quarantined { original } => {
                write!(f, "signature quarantined by query {original}")
            }
        }
    }
}

/// The service's ready backlog plus its admission policy state.
pub struct AdmissionQueue {
    /// One segmented FIFO per priority class, indexed by
    /// [`Priority::index`].
    classes: [SegmentedRfAnQueue; 3],
    /// Host-side occupancy per class (the policy counter; the queues
    /// themselves are unbounded by construction).
    queued: [u64; 3],
    /// Backlog bound across all classes.
    capacity: u64,
    /// Quarantined signatures → the query that earned the quarantine.
    quarantined: BTreeMap<(&'static str, &'static str), u32>,
    /// Segmented-enqueue failures observed (must stay 0: the segmented
    /// path cannot reject a non-sentinel token — the chaos suite pins
    /// this).
    enqueue_errors: u64,
}

impl AdmissionQueue {
    /// Segment capacity for the backlog rings. Small on purpose: a
    /// serving backlog of a few dozen queries should still exercise the
    /// segment-chaining path, not fit in one segment.
    const SEG_CAP: usize = 8;

    /// An empty backlog with the given bound.
    pub fn new(capacity: u64) -> Self {
        AdmissionQueue {
            classes: std::array::from_fn(|_| SegmentedRfAnQueue::new(Self::SEG_CAP)),
            queued: [0; 3],
            capacity,
            quarantined: BTreeMap::new(),
            enqueue_errors: 0,
        }
    }

    /// Admission decision for `query`, given the projected completion
    /// cycle the service computed for it. Checks are ordered cheapest
    /// rejection first: quarantine (the query will never succeed), then
    /// backpressure, then shedding.
    pub fn check(&self, query: &QuerySpec, projected_cycle: u64) -> Result<(), AdmissionError> {
        if let Some(&original) = self.quarantined.get(&query.signature()) {
            return Err(AdmissionError::Quarantined { original });
        }
        let total = self.queued.iter().sum::<u64>();
        if total >= self.capacity {
            return Err(AdmissionError::QueueFull {
                requested: total + 1,
                capacity: self.capacity,
            });
        }
        let deadline_cycle = query.arrival_cycle.saturating_add(query.deadline_cycles);
        if projected_cycle > deadline_cycle {
            return Err(AdmissionError::Shedding {
                projected_cycle,
                deadline_cycle,
            });
        }
        Ok(())
    }

    /// Enqueue an admitted (or retry-ready) query id into its class.
    pub fn push(&mut self, priority: Priority, id: u32) {
        let class = priority.index();
        match self.classes[class].try_enqueue_batch(&[id]) {
            Ok(_) => self.queued[class] += 1,
            // Unreachable for real ids (only the sentinel token is
            // refused), but counted rather than unwrapped: a nonzero
            // count is a bug the chaos suite will surface.
            Err(_) => self.enqueue_errors += 1,
        }
    }

    /// Dequeue the next query id in strict priority order (FIFO within
    /// a class). `None` when the backlog is empty.
    pub fn take_next(&mut self) -> Option<(Priority, u32)> {
        for priority in Priority::ALL {
            let class = priority.index();
            if self.queued[class] == 0 {
                continue;
            }
            // Serial dequeue protocol: every queued id was published
            // before this reserve, so the take cannot miss.
            let slot = self.classes[class].reserve(1).start;
            match self.classes[class].try_take(SlotTicket(slot)) {
                Some(id) => {
                    self.queued[class] -= 1;
                    return Some((priority, id));
                }
                None => self.enqueue_errors += 1,
            }
        }
        None
    }

    /// Total queries waiting across all classes.
    pub fn backlog(&self) -> u64 {
        self.queued.iter().sum()
    }

    /// Quarantine a signature on behalf of query `id`.
    pub fn quarantine(&mut self, signature: (&'static str, &'static str), id: u32) {
        self.quarantined.entry(signature).or_insert(id);
    }

    /// Number of quarantined signatures.
    pub fn quarantined_signatures(&self) -> usize {
        self.quarantined.len()
    }

    /// Segmented-enqueue failures observed (0 in any correct run).
    pub fn enqueue_errors(&self) -> u64 {
        self.enqueue_errors
    }

    /// Segments allocated fresh across the three class rings — proof in
    /// the serve tables that the backlog really is segment-chained.
    pub fn fresh_segments(&self) -> u64 {
        self.classes.iter().map(|q| q.fresh_allocs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::trace::WorkloadKind;
    use ptq_graph::Dataset;

    fn query(id: u32, priority: Priority) -> QuerySpec {
        QuerySpec {
            id,
            kind: WorkloadKind::Bfs,
            dataset: Dataset::RoadNY,
            rel_scale: 0.1,
            source_salt: 0,
            priority,
            arrival_cycle: 100,
            deadline_cycles: 1_000,
            faults: 0,
            watchdog_rounds: 0,
        }
    }

    #[test]
    fn fifo_within_class_priority_across() {
        let mut q = AdmissionQueue::new(64);
        q.push(Priority::Batch, 1);
        q.push(Priority::Standard, 2);
        q.push(Priority::Standard, 3);
        q.push(Priority::Interactive, 4);
        assert_eq!(q.backlog(), 4);
        assert_eq!(q.take_next(), Some((Priority::Interactive, 4)));
        assert_eq!(q.take_next(), Some((Priority::Standard, 2)));
        assert_eq!(q.take_next(), Some((Priority::Standard, 3)));
        assert_eq!(q.take_next(), Some((Priority::Batch, 1)));
        assert_eq!(q.take_next(), None);
        assert_eq!(q.enqueue_errors(), 0);
    }

    #[test]
    fn backlog_bound_is_a_typed_queue_full() {
        let mut q = AdmissionQueue::new(2);
        q.push(Priority::Standard, 0);
        q.push(Priority::Standard, 1);
        let err = q.check(&query(2, Priority::Standard), 0).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::QueueFull {
                requested: 3,
                capacity: 2
            }
        );
        // Draining reopens admission.
        q.take_next();
        assert!(q.check(&query(2, Priority::Standard), 0).is_ok());
    }

    #[test]
    fn projection_past_deadline_sheds() {
        let q = AdmissionQueue::new(8);
        let spec = query(0, Priority::Standard); // deadline cycle 1_100
        assert!(q.check(&spec, 1_100).is_ok());
        assert_eq!(
            q.check(&spec, 1_101).unwrap_err(),
            AdmissionError::Shedding {
                projected_cycle: 1_101,
                deadline_cycle: 1_100
            }
        );
    }

    #[test]
    fn quarantine_rejects_the_signature_not_the_world() {
        let mut q = AdmissionQueue::new(8);
        let poisoned = query(7, Priority::Standard);
        q.quarantine(poisoned.signature(), 7);
        assert_eq!(
            q.check(&poisoned, 0).unwrap_err(),
            AdmissionError::Quarantined { original: 7 }
        );
        // A different signature sails through.
        let mut other = query(8, Priority::Standard);
        other.kind = WorkloadKind::Cc;
        assert!(q.check(&other, 0).is_ok());
        assert_eq!(q.quarantined_signatures(), 1);
    }

    #[test]
    fn deep_backlog_chains_segments_without_errors() {
        let mut q = AdmissionQueue::new(1_000);
        for id in 0..100 {
            q.push(Priority::Batch, id);
        }
        assert!(q.fresh_segments() > 3, "backlog should span segments");
        for id in 0..100 {
            assert_eq!(q.take_next(), Some((Priority::Batch, id)));
        }
        assert_eq!(q.enqueue_errors(), 0);
    }
}
