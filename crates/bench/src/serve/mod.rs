//! `ptq_serve` — the overload-safe multi-query serving core.
//!
//! A resident service that consumes a seeded [`trace::ArrivalTrace`] of
//! queries (workload × dataset × source × priority) against shared
//! immutable CSRs, executing each on the persistent-thread stack with:
//!
//! * a **bounded admission queue with backpressure** built on the
//!   segmented host queue family, rejecting with typed
//!   [`admission::AdmissionError`]s — no panics, no string matching
//!   ([`admission`]);
//! * **per-query deadlines in simulated cycles** with deadline-based
//!   load shedding when the projected backlog completion exceeds the
//!   budget ([`service`]);
//! * **capped exponential retry/backoff with deterministic jitter** for
//!   fault-aborted queries, resuming from the last good checkpoint so a
//!   retry replays fewer rounds than a restart ([`backoff`]);
//! * **poison-query quarantine**: a query that exhausts its retry
//!   budget is isolated with its full recovery log while the service
//!   keeps draining the trace ([`outcome`]).
//!
//! Every outcome lands in a structured [`outcome::OutcomeLog`] that is
//! byte-identical at any `--jobs` and `--engine-workers` count — see
//! the two-phase determinism argument in [`service`] and DESIGN.md §14.

pub mod admission;
pub mod backoff;
pub mod outcome;
pub mod service;
pub mod trace;

pub use admission::{AdmissionError, AdmissionQueue};
pub use backoff::BackoffSchedule;
pub use outcome::{ClassFairness, Disposition, OutcomeLog, QueryOutcome, ServeSummary};
pub use service::{AttemptSim, BatchPolicy, ExecutionProfile, Service, ServiceConfig};
pub use trace::{ArrivalTrace, Priority, QuerySpec, TraceParams, WorkloadKind, NUM_TENANTS};
