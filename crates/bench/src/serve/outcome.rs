//! Structured per-query outcomes and their aggregation.
//!
//! Every query in a trace ends in exactly one [`Disposition`]; the
//! [`OutcomeLog`] is the service's byte-stable artifact (everything in
//! it is simulated — ids, cycles, counts — so it is identical at any
//! `--jobs` and engine-worker count), and [`ServeSummary`] condenses it
//! into the `serve` section of `BENCH_repro.json`.

use pt_bfs::RecoveryLog;
use simt::GpuConfig;

use super::trace::{Priority, NUM_TENANTS};
use crate::report::Table;

/// Terminal state of one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to completion (possibly after retries) and validated against
    /// the workload's sequential oracle.
    Completed,
    /// Dropped by deadline-based load shedding — at admission when the
    /// projected backlog completion already overran the deadline, or at
    /// first dispatch when the wait alone had.
    Shed,
    /// Exhausted its retry budget; isolated with its full recovery log
    /// while the service kept draining the trace.
    Quarantined,
    /// Refused at admission: the ready backlog was at its bound.
    RejectedQueueFull,
    /// Refused at admission: the (workload, dataset) signature was
    /// already quarantined.
    RejectedQuarantined,
}

impl Disposition {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Completed => "completed",
            Disposition::Shed => "shed",
            Disposition::Quarantined => "quarantined",
            Disposition::RejectedQueueFull => "rejected-queue-full",
            Disposition::RejectedQuarantined => "rejected-quarantined",
        }
    }
}

/// One query's full service record.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// Trace id.
    pub id: u32,
    /// Workload label.
    pub workload: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Priority class.
    pub priority: Priority,
    /// Submitting tenant.
    pub tenant: u32,
    /// Terminal state.
    pub disposition: Disposition,
    /// Attempts dispatched to the device (0 for admission rejections).
    pub attempts: u32,
    /// Queries co-resident in the launch that completed this query
    /// (1 for a solo dispatch, >1 when the batched scheduler fused it
    /// with compatible peers; 0 when it never reached the device).
    pub batch_peers: u32,
    /// In-run recovery aborts survived across all attempts (checkpoint
    /// replays inside `resume_workload`, below the service's own
    /// retries).
    pub in_run_aborts: u64,
    /// Admission → terminal-state latency in simulated cycles (0 for
    /// admission-time rejections).
    pub latency_cycles: u64,
    /// Vertices the successful run reached (0 unless completed).
    pub reached: usize,
    /// The final recovery log, kept as quarantine evidence (present only
    /// for quarantined queries).
    pub recovery: Option<RecoveryLog>,
}

/// The service's complete, deterministic account of one trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OutcomeLog {
    /// One record per query, in id order.
    pub outcomes: Vec<QueryOutcome>,
    /// Cycle at which the last terminal state was reached.
    pub makespan_cycles: u64,
    /// Segmented-enqueue failures on the admission path (0 in any
    /// correct run — the segmented family cannot reject real tokens).
    pub admission_errors: u64,
    /// `QueueFull` aborts observed inside query execution (0 when the
    /// service runs on the segmented device variant).
    pub execution_queue_full: u64,
    /// Fresh segment allocations across the admission backlog rings.
    pub admission_segments: u64,
}

impl OutcomeLog {
    /// Queries with the given disposition.
    pub fn count(&self, disposition: Disposition) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == disposition)
            .count() as u64
    }

    /// Completed queries that needed at least one service-level retry.
    pub fn retried(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Completed && o.attempts > 1)
            .count() as u64
    }

    /// Aggregate the log into benchmark-ready rates and percentiles.
    pub fn summary(&self) -> ServeSummary {
        let queries = self.outcomes.len() as u64;
        let completed = self.count(Disposition::Completed);
        let shed = self.count(Disposition::Shed);
        let quarantined = self.count(Disposition::Quarantined);
        let rejected_queue_full = self.count(Disposition::RejectedQueueFull);
        let rejected_quarantined = self.count(Disposition::RejectedQuarantined);
        let mut latencies: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Completed)
            .map(|o| o.latency_cycles)
            .collect();
        latencies.sort_unstable();
        let rate = |n: u64| {
            if queries == 0 {
                0.0
            } else {
                n as f64 / queries as f64
            }
        };
        ServeSummary {
            queries,
            completed,
            retried: self.retried(),
            shed,
            quarantined,
            rejected_queue_full,
            rejected_quarantined,
            batched: self.batched(),
            p50_latency_cycles: percentile(&latencies, 0.50),
            p99_latency_cycles: percentile(&latencies, 0.99),
            makespan_cycles: self.makespan_cycles,
            shed_rate: rate(shed),
            quarantine_rate: rate(quarantined),
        }
    }

    /// Completed queries that were co-scheduled with at least one peer.
    pub fn batched(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Completed && o.batch_peers > 1)
            .count() as u64
    }

    /// Per-priority-class fairness over tenants: for each class with at
    /// least one offered query, the per-tenant completion rates
    /// (completed / offered) and their Jain index. An index of 1.0 is
    /// perfectly even service across the class's active tenants; `1/n`
    /// is one tenant taking everything.
    pub fn fairness(&self) -> Vec<ClassFairness> {
        Priority::ALL
            .iter()
            .filter_map(|&class| {
                let mut offered = [0u64; NUM_TENANTS as usize];
                let mut completed = [0u64; NUM_TENANTS as usize];
                for o in self.outcomes.iter().filter(|o| o.priority == class) {
                    let t = (o.tenant % NUM_TENANTS) as usize;
                    offered[t] += 1;
                    if o.disposition == Disposition::Completed {
                        completed[t] += 1;
                    }
                }
                if offered.iter().all(|&n| n == 0) {
                    return None;
                }
                let rates: Vec<f64> = offered
                    .iter()
                    .zip(&completed)
                    .filter(|(&off, _)| off > 0)
                    .map(|(&off, &done)| done as f64 / off as f64)
                    .collect();
                Some(ClassFairness {
                    class,
                    offered: offered.iter().sum(),
                    completed: completed.iter().sum(),
                    completed_per_tenant: completed,
                    jain_index: jain(&rates),
                })
            })
            .collect()
    }

    /// The per-class fairness table (BENCH artifact; all simulated
    /// quantities).
    pub fn fairness_table(&self, title: &str) -> Table {
        let mut table = Table::new(
            title,
            &[
                "class",
                "offered",
                "completed",
                "t0",
                "t1",
                "t2",
                "t3",
                "jain_index",
            ],
        );
        for f in self.fairness() {
            let mut row = vec![
                f.class.label().to_string(),
                f.offered.to_string(),
                f.completed.to_string(),
            ];
            row.extend(f.completed_per_tenant.iter().map(u64::to_string));
            row.push(format!("{:.4}", f.jain_index));
            table.row(row);
        }
        table
    }

    /// Golden per-query table: one row per query, every cell simulated
    /// and therefore byte-identical across schedulers.
    pub fn table(&self, title: &str) -> Table {
        let mut table = Table::new(
            title,
            &[
                "id",
                "workload",
                "dataset",
                "priority",
                "tenant",
                "disposition",
                "attempts",
                "batch_peers",
                "in_run_aborts",
                "latency_cycles",
                "reached",
            ],
        );
        for o in &self.outcomes {
            table.row(vec![
                o.id.to_string(),
                o.workload.to_string(),
                o.dataset.to_string(),
                o.priority.label().to_string(),
                o.tenant.to_string(),
                o.disposition.label().to_string(),
                o.attempts.to_string(),
                o.batch_peers.to_string(),
                o.in_run_aborts.to_string(),
                o.latency_cycles.to_string(),
                o.reached.to_string(),
            ]);
        }
        table
    }
}

/// Nearest-rank percentile over a sorted slice. `None` for an empty
/// slice — a leg where nothing completed has *no* latency percentile,
/// and fabricating a 0 would read as "instant" in the BENCH tables.
fn percentile(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n·Σx²)`, 1.0 when all equal, `1/n` when one value takes
/// everything. Defined as 1.0 for an empty or all-zero slice (nothing
/// was allocated, so nothing was allocated unevenly).
fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if xs.is_empty() || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// One priority class's tenant-fairness account.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassFairness {
    /// The priority class.
    pub class: Priority,
    /// Queries the trace offered in this class.
    pub offered: u64,
    /// Queries completed in this class.
    pub completed: u64,
    /// Completed count per tenant.
    pub completed_per_tenant: [u64; NUM_TENANTS as usize],
    /// Jain index of the per-tenant completion rates (tenants with no
    /// offered queries in the class excluded).
    pub jain_index: f64,
}

/// The `serve` section of `BENCH_repro.json`, per trace leg. Every
/// field is derived from simulated quantities, so the section is
/// byte-identical across `--jobs` and `--engine-workers`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSummary {
    /// Queries offered by the trace.
    pub queries: u64,
    /// Completed (validated) queries.
    pub completed: u64,
    /// Completed queries that needed at least one retry.
    pub retried: u64,
    /// Deadline-shed queries.
    pub shed: u64,
    /// Quarantined queries.
    pub quarantined: u64,
    /// Admission rejections: backlog at bound.
    pub rejected_queue_full: u64,
    /// Admission rejections: quarantined signature.
    pub rejected_quarantined: u64,
    /// Completed queries co-scheduled with at least one peer.
    pub batched: u64,
    /// Median admission→completion latency, simulated cycles. `None`
    /// when the leg completed nothing (absent, not a fake 0).
    pub p50_latency_cycles: Option<u64>,
    /// 99th-percentile latency, simulated cycles (`None` as above).
    pub p99_latency_cycles: Option<u64>,
    /// Cycle of the last terminal state.
    pub makespan_cycles: u64,
    /// Shed fraction of offered queries.
    pub shed_rate: f64,
    /// Quarantined fraction of offered queries.
    pub quarantine_rate: f64,
}

impl ServeSummary {
    /// Completed queries per simulated second at `gpu`'s clock.
    pub fn throughput_qps(&self, gpu: &GpuConfig) -> f64 {
        let seconds = gpu.cycles_to_seconds(self.makespan_cycles);
        if seconds <= 0.0 {
            0.0
        } else {
            self.completed as f64 / seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u32, disposition: Disposition, attempts: u32, latency: u64) -> QueryOutcome {
        QueryOutcome {
            id,
            workload: "bfs",
            dataset: "RoadNY",
            priority: Priority::Standard,
            tenant: id % NUM_TENANTS,
            disposition,
            attempts,
            batch_peers: u32::from(attempts > 0),
            in_run_aborts: 0,
            latency_cycles: latency,
            reached: 0,
            recovery: None,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), Some(50));
        assert_eq!(percentile(&sorted, 0.99), Some(99));
        assert_eq!(percentile(&sorted, 1.0), Some(100));
        assert_eq!(percentile(&[42], 0.50), Some(42));
    }

    #[test]
    fn empty_leg_has_absent_percentiles_not_fake_zeros() {
        assert_eq!(percentile(&[], 0.50), None);
        assert_eq!(percentile(&[], 0.99), None);
        // A log where nothing completed propagates the absence.
        let log = OutcomeLog {
            outcomes: vec![outcome(0, Disposition::Shed, 0, 0)],
            makespan_cycles: 10,
            ..OutcomeLog::default()
        };
        let s = log.summary();
        assert_eq!(s.p50_latency_cycles, None);
        assert_eq!(s.p99_latency_cycles, None);
        // And the fully empty log too.
        let s = OutcomeLog::default().summary();
        assert_eq!(s.p50_latency_cycles, None);
        assert_eq!(s.p99_latency_cycles, None);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One tenant taking everything over n=4 → 1/4.
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fairness_groups_by_class_and_rates_by_tenant() {
        // Standard class: tenants 0 and 1 each offered one query;
        // tenant 0 completed, tenant 1 was shed → Jain over rates
        // [1.0, 0.0] = 0.5. Tenants 2, 3 offered nothing and are
        // excluded from the index.
        let log = OutcomeLog {
            outcomes: vec![
                outcome(0, Disposition::Completed, 1, 100),
                outcome(1, Disposition::Shed, 0, 0),
            ],
            makespan_cycles: 100,
            ..OutcomeLog::default()
        };
        let fairness = log.fairness();
        assert_eq!(fairness.len(), 1);
        let f = &fairness[0];
        assert_eq!(f.class, Priority::Standard);
        assert_eq!(f.offered, 2);
        assert_eq!(f.completed, 1);
        assert_eq!(f.completed_per_tenant, [1, 0, 0, 0]);
        assert!((f.jain_index - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_counts_and_rates() {
        let log = OutcomeLog {
            outcomes: vec![
                outcome(0, Disposition::Completed, 1, 100),
                outcome(1, Disposition::Completed, 3, 300),
                outcome(2, Disposition::Shed, 0, 0),
                outcome(3, Disposition::Quarantined, 4, 900),
                outcome(4, Disposition::RejectedQueueFull, 0, 0),
            ],
            makespan_cycles: 1_000,
            ..OutcomeLog::default()
        };
        let s = log.summary();
        assert_eq!(s.queries, 5);
        assert_eq!(s.completed, 2);
        assert_eq!(s.retried, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.p50_latency_cycles, Some(100));
        assert_eq!(s.p99_latency_cycles, Some(300));
        assert!((s.shed_rate - 0.2).abs() < 1e-12);
        assert!((s.quarantine_rate - 0.2).abs() < 1e-12);
        let qps = s.throughput_qps(&GpuConfig::test_tiny());
        assert!((qps - 2.0 / GpuConfig::test_tiny().cycles_to_seconds(1_000)).abs() < 1e-9);
    }
}
