//! Seeded arrival traces: the service's deterministic "client".
//!
//! A trace is the serving analogue of a fault plan — every query's
//! workload kind, dataset, source, priority class, arrival cycle,
//! deadline, and fault exposure is drawn up front from one
//! [`SplitMix64`] stream, so the same seed always produces the identical
//! offered load regardless of host, `--jobs` count, or engine worker
//! budget. Experiments and chaos tests then layer hand-placed queries
//! (a poison query, a resubmission of its signature) on top with the
//! builder methods.

use ptq_graph::{Dataset, SplitMix64};

/// Which irregular workload a query runs. Mirrors the private dispatch
/// enum in the workloads experiment, but public: traces are data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// Top-down breadth-first search.
    Bfs,
    /// Label-correcting single-source shortest paths.
    Sssp,
    /// Connected components (min-label propagation).
    Cc,
    /// PageRank-delta (residual push).
    PrDelta,
}

impl WorkloadKind {
    /// All kinds, in trace-draw order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Bfs,
        WorkloadKind::Sssp,
        WorkloadKind::Cc,
        WorkloadKind::PrDelta,
    ];

    /// Display label (tables, outcome logs).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Bfs => "bfs",
            WorkloadKind::Sssp => "sssp",
            WorkloadKind::Cc => "cc",
            WorkloadKind::PrDelta => "pr-delta",
        }
    }

    /// Device buffer name of the workload's value array — the target a
    /// seeded fault plan poisons (must match
    /// `PtWorkload::value_buffer_name`).
    pub fn value_buffer(self) -> &'static str {
        match self {
            WorkloadKind::Bfs => "costs",
            WorkloadKind::Sssp => "dist",
            WorkloadKind::Cc => "labels",
            WorkloadKind::PrDelta => "resid",
        }
    }
}

/// Admission priority class, highest first. Within a class the service
/// is FIFO (the segmented host queue's order); across classes a ready
/// interactive query always dispatches before a ready batch query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive foreground queries.
    Interactive,
    /// Default class.
    Standard,
    /// Throughput background work.
    Batch,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Deficit-round-robin weight: how many dispatch grants the class
    /// receives per scheduler round while backlogged. Interactive gets
    /// 4 of every 7 grants, standard 2, batch 1 — weighted fairness
    /// instead of the starvation a strict-priority drain allows.
    pub fn weight(self) -> u64 {
        match self {
            Priority::Interactive => 4,
            Priority::Standard => 2,
            Priority::Batch => 1,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// Dense index (0 = highest priority).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }
}

/// One query in an arrival trace. Everything the service needs to
/// admit, execute, and judge the query is recorded here — a trace plus
/// a seed fully determines a run.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// Trace-unique id; also the admission-queue token.
    pub id: u32,
    /// Workload to run.
    pub kind: WorkloadKind,
    /// Dataset the query reads (shared immutable CSR).
    pub dataset: Dataset,
    /// Per-dataset scale fraction multiplied into the service scale —
    /// keeps the six datasets comparable in simulated size.
    pub rel_scale: f64,
    /// Source salt; the executor maps it to `salt % num_vertices`.
    pub source_salt: u32,
    /// Admission priority class.
    pub priority: Priority,
    /// Submitting tenant (`0..NUM_TENANTS`). Within a priority class
    /// the admission queue round-robins across tenant lanes, so one
    /// chatty tenant cannot starve the others of the class's dispatch
    /// share.
    pub tenant: u32,
    /// Simulated cycle at which the query arrives.
    pub arrival_cycle: u64,
    /// Deadline budget in simulated cycles from arrival. Admission sheds
    /// the query when the projected backlog completion exceeds it.
    pub deadline_cycles: u64,
    /// Faults of each kind (wave kills / CU stalls / memory poisons)
    /// seeded into this query's [`simt::FaultPlan`]; 0 = clean run.
    pub faults: u32,
    /// Per-query watchdog round budget (0 = service default). A tiny
    /// budget turns the query into a deterministic poison query: every
    /// attempt trips `AbortReason::Watchdog` until its retry budget is
    /// exhausted and the service quarantines it.
    pub watchdog_rounds: u64,
}

impl QuerySpec {
    /// Quarantine signature: queries with the same (kind, dataset) hit
    /// the same code paths on the same immutable CSR, so once one of
    /// them exhausts its retry budget the service refuses the family.
    pub fn signature(&self) -> (&'static str, &'static str) {
        (self.kind.label(), self.dataset.spec().name)
    }
}

/// Knobs for [`ArrivalTrace::seeded`].
#[derive(Clone, Debug)]
pub struct TraceParams {
    /// Number of queries to draw.
    pub queries: usize,
    /// Mean inter-arrival gap in simulated cycles; gaps are drawn
    /// uniformly from `[mean/2, 3*mean/2)`.
    pub mean_gap_cycles: u64,
    /// Deadline budgets are drawn uniformly from `[lo, hi)`.
    pub deadline_range: (u64, u64),
    /// Dataset pool with per-dataset relative scale fractions.
    pub datasets: &'static [(Dataset, f64)],
    /// Every `fault_every`-th query carries a seeded fault plan
    /// (0 disables fault exposure).
    pub fault_every: usize,
    /// Faults of each kind drawn for an exposed query.
    pub faults_per_query: u32,
}

/// Number of tenants a seeded trace draws from. Small on purpose: a
/// handful of tenants keeps every (class, tenant) lane populated at
/// realistic trace sizes, which is what the fairness accounting wants
/// to observe.
pub const NUM_TENANTS: u32 = 4;

/// A seeded multi-query arrival trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalTrace {
    /// Seed the trace was drawn from; also keys per-query fault plans
    /// and backoff jitter streams.
    pub seed: u64,
    /// Queries in arrival order (`arrival_cycle` is nondecreasing).
    pub queries: Vec<QuerySpec>,
}

impl ArrivalTrace {
    /// Draw a trace from `seed`. Identical `(seed, params)` always
    /// produce the identical trace.
    pub fn seeded(seed: u64, params: &TraceParams) -> Self {
        assert!(!params.datasets.is_empty(), "trace needs a dataset pool");
        assert!(
            params.deadline_range.0 < params.deadline_range.1,
            "deadline range must be non-empty"
        );
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut cycle = 0u64;
        let queries = (0..params.queries)
            .map(|i| {
                let gap_lo = params.mean_gap_cycles / 2;
                let gap_hi = (params.mean_gap_cycles.saturating_mul(3) / 2).max(gap_lo + 1);
                cycle = cycle.saturating_add(rng.range_u64(gap_lo, gap_hi));
                let kind =
                    WorkloadKind::ALL[rng.range_u32(0, WorkloadKind::ALL.len() as u32) as usize];
                let (dataset, rel_scale) =
                    params.datasets[rng.range_u32(0, params.datasets.len() as u32) as usize];
                // 30% interactive / 50% standard / 20% batch.
                let priority = match rng.range_u32(0, 10) {
                    0..=2 => Priority::Interactive,
                    3..=7 => Priority::Standard,
                    _ => Priority::Batch,
                };
                let tenant = rng.range_u32(0, NUM_TENANTS);
                let deadline_cycles =
                    rng.range_u64(params.deadline_range.0, params.deadline_range.1);
                let source_salt = rng.next_u32();
                let faults = if params.fault_every > 0 && (i + 1) % params.fault_every == 0 {
                    params.faults_per_query
                } else {
                    0
                };
                QuerySpec {
                    id: i as u32,
                    kind,
                    dataset,
                    rel_scale,
                    source_salt,
                    priority,
                    tenant,
                    arrival_cycle: cycle,
                    deadline_cycles,
                    faults,
                    watchdog_rounds: 0,
                }
            })
            .collect();
        ArrivalTrace { seed, queries }
    }

    /// Next free query id.
    fn next_id(&self) -> u32 {
        self.queries.iter().map(|q| q.id + 1).max().unwrap_or(0)
    }

    /// Cycle of the latest arrival so far.
    fn last_arrival(&self) -> u64 {
        self.queries
            .iter()
            .map(|q| q.arrival_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Append a poison query: a tiny watchdog round budget makes every
    /// attempt abort deterministically, so the query burns its retry
    /// budget and is quarantined with its full recovery log. Returns the
    /// new query's id.
    pub fn push_poison(
        &mut self,
        kind: WorkloadKind,
        dataset: Dataset,
        rel_scale: f64,
        watchdog_rounds: u64,
        gap_cycles: u64,
    ) -> u32 {
        let id = self.next_id();
        self.queries.push(QuerySpec {
            id,
            kind,
            dataset,
            rel_scale,
            source_salt: 0,
            priority: Priority::Standard,
            tenant: 0,
            arrival_cycle: self.last_arrival().saturating_add(gap_cycles),
            // Generous deadline: the point of a poison query is to fail
            // by aborting, not by missing its deadline.
            deadline_cycles: u64::MAX / 4,
            faults: 0,
            watchdog_rounds,
        });
        id
    }

    /// Append a resubmission of query `of`'s signature `gap_cycles`
    /// after the latest arrival. If `of` was quarantined by then, the
    /// resubmission is rejected at admission — the fast-fail path that
    /// keeps a poison family from re-entering the service. Returns the
    /// new query's id.
    ///
    /// # Panics
    /// If `of` does not name a query in the trace.
    pub fn push_resubmission(&mut self, of: u32, gap_cycles: u64) -> u32 {
        let original = self
            .queries
            .iter()
            .find(|q| q.id == of)
            .expect("resubmission of unknown query id")
            .clone();
        let id = self.next_id();
        self.queries.push(QuerySpec {
            id,
            arrival_cycle: self.last_arrival().saturating_add(gap_cycles),
            ..original
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POOL: &[(Dataset, f64)] = &[(Dataset::RoadNY, 0.1), (Dataset::Synthetic, 0.004)];

    fn params() -> TraceParams {
        TraceParams {
            queries: 20,
            mean_gap_cycles: 10_000,
            deadline_range: (1_000_000, 2_000_000),
            datasets: POOL,
            fault_every: 3,
            faults_per_query: 2,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = ArrivalTrace::seeded(7, &params());
        let b = ArrivalTrace::seeded(7, &params());
        assert_eq!(a, b);
        let c = ArrivalTrace::seeded(8, &params());
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_nondecreasing_and_gaps_bounded() {
        let trace = ArrivalTrace::seeded(11, &params());
        assert_eq!(trace.queries.len(), 20);
        let mut prev = 0;
        for q in &trace.queries {
            let gap = q.arrival_cycle - prev;
            assert!((5_000..15_000).contains(&gap), "gap {gap}");
            assert!((1_000_000..2_000_000).contains(&q.deadline_cycles));
            prev = q.arrival_cycle;
        }
    }

    #[test]
    fn fault_exposure_hits_every_third_query() {
        let trace = ArrivalTrace::seeded(11, &params());
        for (i, q) in trace.queries.iter().enumerate() {
            assert_eq!(q.faults, if (i + 1) % 3 == 0 { 2 } else { 0 });
        }
    }

    #[test]
    fn tenants_are_drawn_within_bounds() {
        let trace = ArrivalTrace::seeded(11, &params());
        for q in &trace.queries {
            assert!(q.tenant < NUM_TENANTS, "tenant {} out of range", q.tenant);
        }
        // With 20 draws over 4 tenants, at least two distinct tenants
        // appear (a collapsed draw would break the fairness accounting).
        let distinct: std::collections::BTreeSet<u32> =
            trace.queries.iter().map(|q| q.tenant).collect();
        assert!(distinct.len() >= 2, "tenant draw collapsed: {distinct:?}");
    }

    #[test]
    fn poison_at_the_head_of_an_empty_trace() {
        // Degenerate traces come up when experiments hand-build loads:
        // the poison must become query 0 at exactly `gap_cycles`.
        let mut trace = ArrivalTrace {
            seed: 1,
            queries: vec![],
        };
        let id = trace.push_poison(WorkloadKind::Cc, Dataset::Synthetic, 0.004, 3, 7_000);
        assert_eq!(id, 0);
        assert_eq!(trace.queries.len(), 1);
        assert_eq!(trace.queries[0].arrival_cycle, 7_000);
        assert_eq!(trace.queries[0].watchdog_rounds, 3);
        assert_eq!(
            trace.queries[0].faults, 0,
            "poison fails by watchdog, not faults"
        );
    }

    #[test]
    fn poison_at_the_tail_extends_the_latest_arrival() {
        // `last_arrival` is the max over the trace, not the last pushed
        // element — a poison appended after an out-of-order hand edit
        // still lands past every existing arrival.
        let mut trace = ArrivalTrace::seeded(5, &params());
        trace.queries.swap(0, 19); // tail element now arrives earliest
        let tail = trace.queries.iter().map(|q| q.arrival_cycle).max().unwrap();
        let id = trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.1, 2, 1_000);
        let p = trace.queries.iter().find(|q| q.id == id).unwrap();
        assert_eq!(p.arrival_cycle, tail + 1_000);
    }

    #[test]
    fn duplicate_poison_signatures_get_distinct_ids() {
        let mut trace = ArrivalTrace {
            seed: 9,
            queries: vec![],
        };
        let a = trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.1, 2, 1_000);
        let b = trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.1, 2, 1_000);
        assert_ne!(a, b);
        let qa = trace.queries.iter().find(|q| q.id == a).unwrap();
        let qb = trace.queries.iter().find(|q| q.id == b).unwrap();
        assert_eq!(qa.signature(), qb.signature());
        assert!(qb.arrival_cycle > qa.arrival_cycle);
    }

    #[test]
    fn resubmission_chains_preserve_the_original_spec() {
        // A resubmission of a resubmission still carries the original
        // query's kind, dataset, tenant, and fault exposure — only the
        // id and arrival move.
        let mut trace = ArrivalTrace::seeded(3, &params());
        let first = trace.push_resubmission(4, 5_000);
        let second = trace.push_resubmission(first, 5_000);
        let original = trace.queries.iter().find(|q| q.id == 4).unwrap().clone();
        let r = trace.queries.iter().find(|q| q.id == second).unwrap();
        assert_eq!(r.kind, original.kind);
        assert_eq!(r.dataset, original.dataset);
        assert_eq!(r.tenant, original.tenant);
        assert_eq!(r.faults, original.faults);
        assert_eq!(r.signature(), original.signature());
        assert!(r.arrival_cycle > original.arrival_cycle);
    }

    #[test]
    #[should_panic(expected = "resubmission of unknown query id")]
    fn resubmission_of_unknown_id_panics() {
        let mut trace = ArrivalTrace {
            seed: 2,
            queries: vec![],
        };
        let _ = trace.push_resubmission(99, 1_000);
    }

    #[test]
    fn poison_and_resubmission_share_a_signature() {
        let mut trace = ArrivalTrace::seeded(3, &params());
        let tail = trace.last_arrival();
        let poison = trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.1, 2, 5_000);
        let resub = trace.push_resubmission(poison, 5_000);
        let p = trace.queries.iter().find(|q| q.id == poison).unwrap();
        let r = trace.queries.iter().find(|q| q.id == resub).unwrap();
        assert_eq!(p.signature(), r.signature());
        assert_eq!(p.arrival_cycle, tail + 5_000);
        assert_eq!(r.arrival_cycle, tail + 10_000);
        assert_eq!(p.watchdog_rounds, 2);
    }
}
